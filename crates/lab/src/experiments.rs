//! The sweep registry: the paper's evaluation as `Sweep` implementations.
//!
//! Each sweep wraps one hoisted measurement core from
//! `curtain_bench::exp` (the same functions the `eNN_*` binaries call)
//! and attaches the paper's claims:
//!
//! * **e01** — Theorem 4: the steady-state defect fraction stays under
//!   the analytic fixed point `a₁` of the drift;
//! * **e03** — Lemmas 6 & 7: per-arrival drift under `f(b)`, one-step
//!   defect change under `(d²/k)·A`;
//! * **e04** — Theorem 5: collapse time of the scalar bound chain is
//!   monotone-increasing in `k`;
//! * **e05** — §5: with random-position insertion a coordinated flash
//!   crowd does no more damage than iid random failures;
//! * **e06** — data-plane throughput: the SIMD GF(256) axpy kernels are
//!   no slower than scalar, and the snapshot recode path is no slower
//!   than the pre-refactor deep-copy path (absolute rates are recorded
//!   in `BENCH_e06.json` for the machine at hand);
//! * **e20** — codec tradeoffs: overlapping classes beat disjoint
//!   generations on completion overhead whenever the channel loses
//!   packets, the sliding-window backend's p95 delivery latency stays
//!   flat as the stream grows 8×, and every backend decodes the same
//!   bytes;
//! * **e21** — control plane: group commit admits joins at least 3×
//!   faster than fsync-per-mutation under a slow WAL sync, and the
//!   failover drill (kill the primary mid-transfer) always promotes the
//!   warm standby at the same address, finishes byte-identical, and
//!   never gives up a repair (wall-clock like e06; absolute rates land
//!   in `BENCH_e21.json`);
//! * **e22** — vnet scale: a single-process churn soak of the real
//!   sans-io protocol over the virtual network, at `N` up to 1000.
//!   The steady-state defect probability must stay in one narrow band
//!   across `N` (Theorem 4's N-independence), every defect must heal
//!   with zero repair give-ups, and the same `(params, seed)` cell must
//!   replay with a byte-identical event journal.
//!
//! Profile knobs: `--scale` multiplies sample counts (and is part of the
//! cache key, as it should be — more samples is a different measurement);
//! `--quick` swaps in the small smoke grids CI runs.

use curtain_analysis::drift::DriftParams;
use curtain_bench::exp::{e01, e03, e04, e05, e06, e20, e21, e22};
use curtain_bench::stats;
use curtain_telemetry::SharedRecorder;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cell::Measurement;
use crate::claims::{Claim, MonotoneAlong, Predicate, UpperBound};
use crate::grid::{floats, labels, ParamGrid, Params};
use crate::report::PointSummary;
use crate::{Profile, Sweep};

/// Every sweep, in experiment order.
#[must_use]
pub fn registry() -> Vec<Box<dyn Sweep>> {
    vec![
        Box::new(E01Defect),
        Box::new(E03Drift),
        Box::new(E04Collapse),
        Box::new(E05Adversarial),
        Box::new(E06Dataplane),
        Box::new(E20Generations),
        Box::new(E21ControlPlane),
        Box::new(E22VnetScale),
    ]
}

/// The Theorem-4 ceiling for a point carrying `k`, `d`, `p` — `None`
/// when the drift has no root (no steady state to bound).
fn theorem4_ceiling(params: &Params) -> Option<f64> {
    let (k, d, p) = (params.usize("k"), params.usize("d"), params.float("p"));
    if k <= d * d {
        return None;
    }
    DriftParams::new(p, d, k).theorem4_bound()
}

/// e01 — steady-state defect fraction vs Theorem 4's bound.
struct E01Defect;

impl E01Defect {
    fn point(k: usize, d: usize, p: f64, n: usize, samples: u64, trials: u64) -> Params {
        Params::new()
            .with("k", k)
            .with("d", d)
            .with("p", p)
            .with("n", n)
            .with("samples", samples as usize)
            .with("trials", trials as usize)
    }
}

impl Sweep for E01Defect {
    fn id(&self) -> &'static str {
        "e01"
    }

    fn title(&self) -> &'static str {
        "Theorem 4: steady-state defect fraction stays under the drift fixed point a1"
    }

    fn code_salt(&self) -> &'static str {
        "e01-v1"
    }

    fn grid(&self, profile: Profile) -> ParamGrid {
        let mut points = Vec::new();
        if profile.quick {
            for &p in &[0.01, 0.02] {
                points.push(Self::point(32, 2, p, 200, 120 * profile.scale, 2));
            }
            return ParamGrid::from_points(points);
        }
        // The d × p table at k = 8d² (the binary's table 1)...
        for &d in &[2usize, 3, 4] {
            for &p in &[0.005, 0.01, 0.02, 0.04] {
                points.push(Self::point(8 * d * d, d, p, 600, 300 * profile.scale, 6));
            }
        }
        // ...plus the N sweep at fixed (k, d, p) (table 2).
        for &n in &[150usize, 300, 600, 1200, 2400] {
            points.push(Self::point(32, 2, 0.02, n, 300 * profile.scale, 6));
        }
        ParamGrid::from_points(points)
    }

    fn run(&self, params: &Params, seed: u64) -> Measurement {
        let eparams = e01::Params {
            k: params.usize("k"),
            d: params.usize("d"),
            p: params.float("p"),
            n: params.usize("n"),
            samples: params.usize("samples") as u64,
            trials: params.usize("trials") as u64,
        };
        let mut clock = 0u64;
        let fraction = e01::measure(&eparams, seed, &SharedRecorder::null(), &mut clock);
        Measurement::new()
            .with("defect_fraction", fraction)
            .with("pd", eparams.p * eparams.d as f64)
    }

    fn claims(&self) -> Vec<Box<dyn Claim>> {
        vec![Box::new(UpperBound {
            name: "T4-defect-bound",
            metric: "defect_fraction",
            // Finite networks at finite sample counts hover around the
            // asymptotic fixed point; half the bound again is the margin
            // the e01 binary's tables have historically stayed well under.
            slack: 0.5,
            bound: Box::new(theorem4_ceiling),
        })]
    }
}

/// e03 — one-step drift vs Lemma 6's cap and Lemma 7's `f(b)`.
struct E03Drift;

impl Sweep for E03Drift {
    fn id(&self) -> &'static str {
        "e03"
    }

    fn title(&self) -> &'static str {
        "Lemmas 6-7: per-arrival drift under f(b), one-step change under (d^2/k)*A"
    }

    fn code_salt(&self) -> &'static str {
        "e03-v1"
    }

    fn grid(&self, profile: Profile) -> ParamGrid {
        let arrivals = if profile.quick { 800 } else { 4000 } * profile.scale as usize;
        let ks: &[usize] = if profile.quick { &[12] } else { &[12, 20] };
        ParamGrid::from_points(
            ks.iter()
                .map(|&k| {
                    Params::new()
                        .with("k", k)
                        .with("d", 2usize)
                        .with("p", 0.25)
                        .with("arrivals", arrivals)
                        .with("bins", 10usize)
                })
                .collect(),
        )
    }

    fn run(&self, params: &Params, seed: u64) -> Measurement {
        let eparams = e03::Params {
            k: params.usize("k"),
            d: params.usize("d"),
            p: params.float("p"),
            arrivals: params.usize("arrivals"),
            bins: params.usize("bins"),
        };
        let run = e03::run(&eparams, seed, &SharedRecorder::null());
        let drift = DriftParams::new(eparams.p, eparams.d, eparams.k);

        // A bin "violates" when its measured mean drift exceeds f(b_mid)
        // beyond 3 standard errors — the binary's own acceptance rule.
        let mut violations = 0u64;
        let mut observed = 0u64;
        for (i, bin) in run.deltas.iter().enumerate() {
            if bin.is_empty() {
                continue;
            }
            observed += 1;
            let b_mid = (i as f64 + 0.5) / eparams.bins as f64;
            let sem = stats::std_dev(bin) / (bin.len() as f64).sqrt();
            if stats::mean(bin) > drift.f(b_mid) + 3.0 * sem + 1e-9 {
                violations += 1;
            }
        }
        Measurement::new()
            .with("max_step_fraction", run.max_step / run.tuples)
            .with("drift_violation_bins", violations as f64)
            .with("bins_observed", observed as f64)
    }

    fn claims(&self) -> Vec<Box<dyn Claim>> {
        vec![
            Box::new(UpperBound {
                name: "L6-step-cap",
                metric: "max_step_fraction",
                // The cap is combinatorial, not statistical: no slack.
                slack: 1e-9,
                bound: Box::new(|params: &Params| {
                    if params.usize("k") > params.usize("d") * params.usize("d") {
                        Some(DriftParams::new(
                            params.float("p"),
                            params.usize("d"),
                            params.usize("k"),
                        )
                        .lemma6_max_step())
                    } else {
                        None
                    }
                }),
            }),
            Box::new(Predicate {
                name: "L7-drift-under-f",
                check: Box::new(|points: &[PointSummary]| {
                    let worst = points
                        .iter()
                        .filter_map(|pt| pt.mean("drift_violation_bins").map(|v| (pt, v)))
                        .max_by(|a, b| a.1.total_cmp(&b.1));
                    match worst {
                        None => Ok("no drift points measured".to_owned()),
                        Some((_, v)) if v <= 0.5 => {
                            Ok(format!("worst mean violating-bin count {v:.2} <= 0.5"))
                        }
                        Some((pt, v)) => Err(format!(
                            "mean of {v:.2} bins exceed f(b)+3sem at [{}]",
                            pt.params
                        )),
                    }
                }),
            }),
        ]
    }
}

/// e04 — the scalar bound chain's collapse time, monotone in `k`.
struct E04Collapse;

impl E04Collapse {
    fn chain_params(params: &Params) -> e04::ChainParams {
        e04::ChainParams {
            k: params.usize("k"),
            d: params.usize("d"),
            p: params.float("p"),
            threshold: params.float("threshold"),
            max_steps: params.usize("max_steps") as u64,
        }
    }
}

impl Sweep for E04Collapse {
    fn id(&self) -> &'static str {
        "e04"
    }

    fn title(&self) -> &'static str {
        "Theorem 5: bound-chain collapse time is monotone-increasing in k"
    }

    fn code_salt(&self) -> &'static str {
        "e04-v1"
    }

    fn grid(&self, profile: Profile) -> ParamGrid {
        let ks: &[usize] = if profile.quick { &[6, 12, 24] } else { &[6, 12, 24, 48, 96] };
        let max_steps =
            if profile.quick { 1_000_000usize } else { 10_000_000 } * profile.scale as usize;
        ParamGrid::from_points(
            ks.iter()
                .map(|&k| {
                    Params::new()
                        .with("k", k)
                        .with("d", 2usize)
                        .with("p", 0.15)
                        .with("threshold", 0.7)
                        .with("max_steps", max_steps)
                })
                .collect(),
        )
    }

    fn run(&self, params: &Params, seed: u64) -> Measurement {
        let chain = Self::chain_params(params);
        let mut rng = StdRng::seed_from_u64(seed);
        let steps = e04::chain_collapse_time(&chain, &mut rng);
        Measurement::new()
            // A censored run contributes the cap as a lower bound, which
            // keeps the monotone claim conservative.
            .with("collapse_steps", steps.unwrap_or(chain.max_steps) as f64)
            .with("censored", if steps.is_none() { 1.0 } else { 0.0 })
    }

    fn claims(&self) -> Vec<Box<dyn Claim>> {
        vec![Box::new(MonotoneAlong {
            name: "T5-monotone-k",
            metric: "collapse_steps",
            axis: "k",
            // Collapse times are heavy-tailed; successive k steps grow the
            // mean by far more than this dip allowance.
            tolerance: 0.25,
        })]
    }
}

/// e05 — coordinated strikes vs the iid baseline, per insertion policy.
struct E05Adversarial;

impl E05Adversarial {
    /// The `mean_loss` curve point for `(scenario, rest-of-params)`.
    fn loss_of(points: &[PointSummary], base: &Params, scenario: &str) -> Option<f64> {
        points
            .iter()
            .find(|pt| {
                pt.params.get("scenario").and_then(|v| v.as_str()) == Some(scenario)
                    && pt.params.without("scenario") == *base
            })
            .and_then(|pt| pt.mean("mean_loss"))
    }

    /// Distinct non-scenario parameter groups, in grid order.
    fn groups(points: &[PointSummary]) -> Vec<Params> {
        let mut groups: Vec<Params> = Vec::new();
        for pt in points {
            let base = pt.params.without("scenario");
            if !groups.contains(&base) {
                groups.push(base);
            }
        }
        groups
    }
}

impl Sweep for E05Adversarial {
    fn id(&self) -> &'static str {
        "e05"
    }

    fn title(&self) -> &'static str {
        "Sec. 5: random-position insertion makes flash crowds no worse than iid failures"
    }

    fn code_salt(&self) -> &'static str {
        "e05-v1"
    }

    fn grid(&self, profile: Profile) -> ParamGrid {
        let fracs: &[f64] = if profile.quick { &[0.10] } else { &[0.05, 0.10, 0.20] };
        let n = if profile.quick { 200usize } else { 400 };
        let scenarios: Vec<&str> =
            e05::Scenario::ALL.iter().map(|s| s.label()).collect();
        let mut grid = ParamGrid::cartesian(&[
            ("frac", floats(fracs)),
            ("scenario", labels(&scenarios)),
        ]);
        let mut points = Vec::with_capacity(grid.len());
        for point in grid.points() {
            points.push(point.clone().with("k", 24usize).with("d", 3usize).with("n", n));
        }
        grid = ParamGrid::from_points(points);
        grid
    }

    fn run(&self, params: &Params, seed: u64) -> Measurement {
        let scenario = e05::Scenario::from_label(params.str("scenario"))
            .unwrap_or_else(|| panic!("unknown scenario {:?}", params.str("scenario")));
        let eparams = e05::Params {
            k: params.usize("k"),
            d: params.usize("d"),
            n: params.usize("n"),
            frac: params.float("frac"),
        };
        let report = e05::strike_outcome(scenario, &eparams, seed);
        Measurement::new()
            .with("mean_loss", report.mean_loss)
            .with("affected_fraction", report.affected_fraction)
            .with("disconnected_fraction", report.disconnected_fraction)
    }

    fn claims(&self) -> Vec<Box<dyn Claim>> {
        vec![
            Box::new(Predicate {
                name: "S5-rand-insert-matches-iid",
                check: Box::new(|points: &[PointSummary]| {
                    for base in E05Adversarial::groups(points) {
                        let (Some(rand), Some(iid)) = (
                            E05Adversarial::loss_of(points, &base, "flash_rand_insert"),
                            E05Adversarial::loss_of(points, &base, "iid_random"),
                        ) else {
                            continue;
                        };
                        if rand > iid * 1.5 + 0.1 {
                            return Err(format!(
                                "rand-insert loss {rand:.3} >> iid loss {iid:.3} at [{base}]"
                            ));
                        }
                    }
                    Ok("flash+rand-insert tracks the iid baseline everywhere".to_owned())
                }),
            }),
            Box::new(Predicate {
                name: "S5-append-is-worst",
                check: Box::new(|points: &[PointSummary]| {
                    for base in E05Adversarial::groups(points) {
                        let (Some(append), Some(rand)) = (
                            E05Adversarial::loss_of(points, &base, "flash_append"),
                            E05Adversarial::loss_of(points, &base, "flash_rand_insert"),
                        ) else {
                            continue;
                        };
                        if append < rand * 0.9 {
                            return Err(format!(
                                "append loss {append:.3} below rand-insert {rand:.3} at [{base}]"
                            ));
                        }
                    }
                    Ok("flash+append damage dominates rand-insert everywhere".to_owned())
                }),
            }),
        ]
    }
}

/// e06 — data-plane throughput: SIMD kernels and the snapshot recode path.
///
/// The odd one out in the registry: its metrics are wall-clock rates, so a
/// cell's *values* depend on the machine, not only on `(params, seed)`.
/// The cache still makes re-reports byte-stable on one machine, and the
/// claims gate only machine-independent ratios (`simd_speedup`,
/// `recode_speedup`), never absolute rates. On machines whose best
/// available backend *is* scalar, `simd_speedup` is exactly 1.0 by
/// definition (same kernel), so the gate cannot flake on non-SIMD runners.
struct E06Dataplane;

impl Sweep for E06Dataplane {
    fn id(&self) -> &'static str {
        "e06"
    }

    fn title(&self) -> &'static str {
        "Data plane: SIMD axpy >= scalar, snapshot recode >= deep-copy recode"
    }

    fn code_salt(&self) -> &'static str {
        "e06-v1"
    }

    fn grid(&self, profile: Profile) -> ParamGrid {
        if profile.quick {
            return ParamGrid::from_points(vec![Params::new()
                .with("g", 8usize)
                .with("s", 128usize)
                .with("packets", 64usize)]);
        }
        let packets = 256 * profile.scale as usize;
        let mut points = Vec::new();
        for &g in &[16usize, 64] {
            for &s in &[256usize, 2048] {
                points.push(Params::new().with("g", g).with("s", s).with("packets", packets));
            }
        }
        ParamGrid::from_points(points)
    }

    fn run(&self, params: &Params, seed: u64) -> Measurement {
        let s = params.usize("s");
        // Enough axpy passes for a stable rate, scaled so every symbol
        // length moves a similar number of bytes.
        let kernel = e06::KernelParams { len: s, passes: ((4 << 20) / s).max(64) };
        let scalar = e06::axpy_throughput(curtain_gf::GfBackend::Scalar, &kernel, seed);
        let best = e06::available_backends()[0];
        let (simd, simd_speedup) = if best == curtain_gf::GfBackend::Scalar {
            (scalar, 1.0)
        } else {
            let simd = e06::axpy_throughput(best, &kernel, seed);
            (simd, simd / scalar.max(1e-9))
        };

        let codec = e06::codec_throughput(
            &e06::CodecParams {
                g: params.usize("g"),
                symbol_len: s,
                packets: params.usize("packets"),
            },
            seed,
        );
        Measurement::new()
            .with("axpy_scalar_mib_s", scalar)
            .with("axpy_simd_mib_s", simd)
            .with("simd_speedup", simd_speedup)
            .with("encode_pps", codec.encode_pps)
            .with("decode_pps", codec.decode_pps)
            .with("recode_pps", codec.recode_pps)
            .with("recode_clone_pps", codec.recode_clone_pps)
            .with("recode_speedup", codec.recode_speedup())
    }

    fn claims(&self) -> Vec<Box<dyn Claim>> {
        vec![
            Box::new(Predicate {
                name: "E06-simd-axpy-geq-scalar",
                check: Box::new(|points: &[PointSummary]| {
                    for pt in points {
                        let Some(speedup) = pt.mean("simd_speedup") else { continue };
                        if speedup < 1.0 {
                            return Err(format!(
                                "SIMD axpy slower than scalar ({speedup:.2}x) at [{}]",
                                pt.params
                            ));
                        }
                    }
                    Ok(format!(
                        "best backend '{}' at least matches scalar at every point",
                        curtain_gf::kernels::active().name()
                    ))
                }),
            }),
            Box::new(Predicate {
                name: "E06-snapshot-recode-geq-clone",
                check: Box::new(|points: &[PointSummary]| {
                    for pt in points {
                        let Some(speedup) = pt.mean("recode_speedup") else { continue };
                        if speedup < 1.0 {
                            return Err(format!(
                                "snapshot recode slower than deep-copy path ({speedup:.2}x) at [{}]",
                                pt.params
                            ));
                        }
                    }
                    Ok("snapshot recode path beats the deep-copy path everywhere".to_owned())
                }),
            }),
        ]
    }
}

/// e20 — codec backends: generation size, class overlap, and window
/// tradeoffs (Li, Soljanin & Spasojević, arXiv:1011.3498).
///
/// Two cell shapes share the grid, told apart by the `mode` parameter:
///
/// * `transfer` — a feedback-free loss-channel transfer per backend;
///   gates that overlapping classes finish with less overhead than
///   disjoint generations whenever the channel actually loses packets,
///   and that every backend reproduces the object byte-identically;
/// * `stream` — the sliding-window backend under a paced live release;
///   gates that p95 in-order delivery latency stays flat (within CI95)
///   as the stream grows 8×.
struct E20Generations;

impl E20Generations {
    fn transfer_point(backend: e20::Backend, generations: usize, loss: f64) -> Params {
        // g = 16 with g/4 packets shared between consecutive classes:
        // the region where the coupon-collector win clearly beats the
        // coupling's padding cost. (At g = 8 or few generations the two
        // effects are within noise of each other.)
        let g = 16usize;
        let overlap = if backend == e20::Backend::Overlap { g / 4 } else { 0 };
        Params::new()
            .with("mode", "transfer")
            .with("backend", backend.label())
            .with("generations", generations)
            .with("g", g)
            .with("s", 32usize)
            .with("overlap", overlap)
            .with("loss", loss)
    }

    fn stream_point(packets: usize) -> Params {
        Params::new()
            .with("mode", "stream")
            .with("packets", packets)
            .with("g", 8usize)
            .with("s", 64usize)
            .with("window", 32usize)
            .with("rate", 2usize)
            .with("loss", 0.25)
    }

    /// The `metric` curve value for `(backend, rest-of-group)` among the
    /// transfer points.
    fn transfer_metric(
        points: &[PointSummary],
        base: &Params,
        backend: &str,
        metric: &str,
    ) -> Option<f64> {
        points
            .iter()
            .find(|pt| {
                pt.params.get("backend").and_then(|v| v.as_str()) == Some(backend)
                    && pt.params.without("backend").without("overlap") == *base
            })
            .and_then(|pt| pt.mean(metric))
    }

    /// Distinct transfer groups (backend and overlap aside), grid order.
    fn transfer_groups(points: &[PointSummary]) -> Vec<Params> {
        let mut groups: Vec<Params> = Vec::new();
        for pt in points {
            if pt.params.get("mode").and_then(|v| v.as_str()) != Some("transfer") {
                continue;
            }
            let base = pt.params.without("backend").without("overlap");
            if !groups.contains(&base) {
                groups.push(base);
            }
        }
        groups
    }
}

impl Sweep for E20Generations {
    fn id(&self) -> &'static str {
        "e20"
    }

    fn title(&self) -> &'static str {
        "Codec tradeoffs: overlap beats disjoint generations under loss; window p95 latency flat in stream length"
    }

    fn code_salt(&self) -> &'static str {
        "e20-v1"
    }

    fn grid(&self, profile: Profile) -> ParamGrid {
        let mut points = Vec::new();
        if profile.quick {
            for backend in e20::Backend::ALL {
                points.push(Self::transfer_point(backend, 32, 0.2));
            }
            points.push(Self::stream_point(64));
            points.push(Self::stream_point(512));
            return ParamGrid::from_points(points);
        }
        for &generations in &[16usize, 32] {
            for &loss in &[0.0, 0.1, 0.2] {
                for backend in e20::Backend::ALL {
                    points.push(Self::transfer_point(backend, generations, loss));
                }
            }
        }
        for &packets in &[64usize, 128, 256, 512] {
            points.push(Self::stream_point(packets));
        }
        ParamGrid::from_points(points)
    }

    fn seeds(&self, profile: Profile) -> Vec<u64> {
        // Cells are cheap (hundreds of g²·s eliminations), so buy CI
        // width with extra seeds instead of bigger objects.
        crate::default_seeds(if profile.quick { 4 } else { 10 })
    }

    fn run(&self, params: &Params, seed: u64) -> Measurement {
        match params.str("mode") {
            "transfer" => {
                let eparams = e20::TransferParams {
                    backend: e20::Backend::from_label(params.str("backend"))
                        .unwrap_or_else(|| panic!("unknown backend {:?}", params.str("backend"))),
                    generations: params.usize("generations"),
                    g: params.usize("g"),
                    s: params.usize("s"),
                    overlap: params.usize("overlap"),
                    loss: params.float("loss"),
                };
                let out = e20::transfer(&eparams, seed);
                Measurement::new()
                    .with("overhead", out.overhead)
                    .with("delivered_overhead", out.delivered_overhead)
                    .with("matches", if out.matches { 1.0 } else { 0.0 })
                    .with("digest", f64::from(out.digest))
            }
            "stream" => {
                let eparams = e20::StreamParams {
                    packets: params.usize("packets"),
                    g: params.usize("g"),
                    s: params.usize("s"),
                    window: params.usize("window"),
                    rate: params.usize("rate"),
                    loss: params.float("loss"),
                };
                let out = e20::live_stream(&eparams, seed);
                Measurement::new()
                    .with("p95_latency", out.p95_latency)
                    .with("mean_latency", out.mean_latency)
                    .with("delivered_fraction", out.delivered_fraction)
            }
            other => panic!("unknown e20 mode {other:?}"),
        }
    }

    fn claims(&self) -> Vec<Box<dyn Claim>> {
        vec![
            Box::new(Predicate {
                name: "E20-overlap-beats-disjoint-under-loss",
                check: Box::new(|points: &[PointSummary]| {
                    // At zero loss the coupling's padding cost can eat the
                    // coupon-collector win, so only lossy groups count
                    // (the broadcast regime). Individual groups carry real
                    // seed noise; the gate pools them and BENCH_e20.json
                    // keeps the per-group curves.
                    let mut gaps = Vec::new();
                    for base in E20Generations::transfer_groups(points) {
                        if base.float("loss") <= 0.0 {
                            continue;
                        }
                        let (Some(overlap), Some(rlnc)) = (
                            E20Generations::transfer_metric(points, &base, "overlap", "overhead"),
                            E20Generations::transfer_metric(points, &base, "rlnc", "overhead"),
                        ) else {
                            continue;
                        };
                        gaps.push((base, rlnc - overlap));
                    }
                    if gaps.is_empty() {
                        return Err("no lossy transfer groups to compare".to_owned());
                    }
                    let pooled = gaps.iter().map(|(_, d)| d).sum::<f64>() / gaps.len() as f64;
                    if pooled <= 0.0 {
                        return Err(format!(
                            "overlap overhead not below disjoint: pooled gap {pooled:+.3} over {} lossy groups",
                            gaps.len()
                        ));
                    }
                    let detail: Vec<String> =
                        gaps.iter().map(|(b, d)| format!("[{b}] {d:+.3}")).collect();
                    Ok(format!(
                        "overlap saves {pooled:.3} overhead pooled over {} lossy groups ({})",
                        gaps.len(),
                        detail.join(", ")
                    ))
                }),
            }),
            Box::new(Predicate {
                name: "E20-window-p95-flat-in-length",
                check: Box::new(|points: &[PointSummary]| {
                    let streams: Vec<&PointSummary> = points
                        .iter()
                        .filter(|pt| {
                            pt.params.get("mode").and_then(|v| v.as_str()) == Some("stream")
                        })
                        .collect();
                    let shortest = streams.iter().min_by_key(|pt| pt.params.usize("packets"));
                    let longest = streams.iter().max_by_key(|pt| pt.params.usize("packets"));
                    let (Some(short), Some(long)) = (shortest, longest) else {
                        return Err("no stream points measured".to_owned());
                    };
                    let (Some(s), Some(l)) = (
                        short.metrics.get("p95_latency"),
                        long.metrics.get("p95_latency"),
                    ) else {
                        return Err("stream points lack p95_latency".to_owned());
                    };
                    if !l.mean.is_finite() || !s.mean.is_finite() {
                        return Err("a stream stalled (infinite p95)".to_owned());
                    }
                    // Flat within the combined CI95 (plus a one-tick floor
                    // so a quantized metric cannot fail on a single step).
                    let allowance = s.ci95 + l.ci95 + 1.0;
                    if l.mean > s.mean + allowance {
                        return Err(format!(
                            "p95 grew from {:.2} to {:.2} ticks over {}x stream growth (allowance {:.2})",
                            s.mean,
                            l.mean,
                            long.params.usize("packets") / short.params.usize("packets").max(1),
                            allowance
                        ));
                    }
                    Ok(format!(
                        "p95 {:.2} -> {:.2} ticks across {}x growth, within {:.2}",
                        s.mean,
                        l.mean,
                        long.params.usize("packets") / short.params.usize("packets").max(1),
                        allowance
                    ))
                }),
            }),
            Box::new(Predicate {
                name: "E20-backends-byte-identical",
                check: Box::new(|points: &[PointSummary]| {
                    for base in E20Generations::transfer_groups(points) {
                        let mut digests: Vec<(String, f64)> = Vec::new();
                        for backend in e20::Backend::ALL {
                            let label = backend.label();
                            if let Some(m) =
                                E20Generations::transfer_metric(points, &base, label, "matches")
                            {
                                if m < 1.0 {
                                    return Err(format!(
                                        "{label} corrupted the object at [{base}]"
                                    ));
                                }
                            }
                            if let Some(d) =
                                E20Generations::transfer_metric(points, &base, label, "digest")
                            {
                                digests.push((label.to_owned(), d));
                            }
                        }
                        if digests.windows(2).any(|w| w[0].1 != w[1].1) {
                            return Err(format!("decoded digests diverge at [{base}]: {digests:?}"));
                        }
                    }
                    Ok("all backends decode byte-identical objects everywhere".to_owned())
                }),
            }),
        ]
    }
}

/// e21 — control plane: group-commit join throughput and the failover
/// drill, over real TCP sockets.
///
/// Wall-clock like [`E06Dataplane`]: a cell's values depend on the
/// machine, so the claims gate only the group/per-mutation throughput
/// *ratio* (the artificial 2 ms WAL sync makes it robust to disk and
/// filesystem noise) and the drill's pass/fail flags. Run it with
/// `--jobs 1`: the cells time real sockets and real threads, and
/// co-scheduled cells steal each other's wall clock.
struct E21ControlPlane;

impl E21ControlPlane {
    fn join_point(commit: &str, clients: usize, joins_per_client: usize) -> Params {
        Params::new()
            .with("mode", "join")
            .with("commit", commit)
            .with("clients", clients)
            .with("joins_per_client", joins_per_client)
            .with("sync_delay_us", 2000usize)
    }

    /// Pooled mean `joins_per_s` over the join points in `commit` mode.
    fn pooled_rate(points: &[PointSummary], commit: &str) -> Option<f64> {
        let rates: Vec<f64> = points
            .iter()
            .filter(|pt| {
                pt.params.get("mode").and_then(|v| v.as_str()) == Some("join")
                    && pt.params.get("commit").and_then(|v| v.as_str()) == Some(commit)
            })
            .filter_map(|pt| pt.mean("joins_per_s"))
            .collect();
        if rates.is_empty() {
            return None;
        }
        Some(rates.iter().sum::<f64>() / rates.len() as f64)
    }
}

impl Sweep for E21ControlPlane {
    fn id(&self) -> &'static str {
        "e21"
    }

    fn title(&self) -> &'static str {
        "Control plane: group commit >= 3x per-mutation joins; failover drill heals without loss"
    }

    fn code_salt(&self) -> &'static str {
        "e21-v1"
    }

    fn grid(&self, profile: Profile) -> ParamGrid {
        let mut points = Vec::new();
        if profile.quick {
            for commit in ["group", "per_mutation"] {
                points.push(Self::join_point(commit, 8, 8));
            }
            points.push(
                Params::new()
                    .with("mode", "failover")
                    .with("peers", 2usize)
                    .with("payload", 8 * 1024usize),
            );
            return ParamGrid::from_points(points);
        }
        // 8+ concurrent clients: below that the batches are too small
        // for the amortization to clear the 3x gate with margin (the
        // e21 binary's table shows the full scaling curve from 2 up).
        for &clients in &[8usize, 16] {
            for commit in ["group", "per_mutation"] {
                points.push(Self::join_point(commit, clients, 16));
            }
        }
        for &peers in &[2usize, 4] {
            points.push(
                Params::new()
                    .with("mode", "failover")
                    .with("peers", peers)
                    .with("payload", 16 * 1024usize),
            );
        }
        ParamGrid::from_points(points)
    }

    fn seeds(&self, profile: Profile) -> Vec<u64> {
        // Every cell spins real sockets (the drill runs whole transfers);
        // keep the matrix small and let the artificial sync delay carry
        // the statistical weight.
        crate::default_seeds(if profile.quick { 1 } else { 2 })
    }

    fn run(&self, params: &Params, seed: u64) -> Measurement {
        match params.str("mode") {
            "join" => {
                let out = e21::join_throughput(
                    &e21::JoinParams {
                        group_commit: params.str("commit") == "group",
                        clients: params.usize("clients"),
                        joins_per_client: params.usize("joins_per_client"),
                        sync_delay_us: params.usize("sync_delay_us") as u64,
                    },
                    seed,
                );
                Measurement::new()
                    .with("joins_per_s", out.joins_per_s)
                    .with("joins", out.joins as f64)
                    .with("elapsed_s", out.elapsed_s)
            }
            "failover" => {
                let out = e21::failover_drill(
                    &e21::FailoverParams {
                        peers: params.usize("peers"),
                        payload: params.usize("payload"),
                    },
                    seed,
                );
                Measurement::new()
                    .with("promoted", if out.promoted { 1.0 } else { 0.0 })
                    .with("byte_ok", if out.byte_ok { 1.0 } else { 0.0 })
                    .with("completed", out.completed as f64)
                    .with("give_ups", out.give_ups as f64)
            }
            other => panic!("unknown e21 mode {other:?}"),
        }
    }

    fn claims(&self) -> Vec<Box<dyn Claim>> {
        vec![
            Box::new(Predicate {
                name: "E21-group-commit-geq-3x",
                check: Box::new(|points: &[PointSummary]| {
                    let (Some(group), Some(per)) = (
                        E21ControlPlane::pooled_rate(points, "group"),
                        E21ControlPlane::pooled_rate(points, "per_mutation"),
                    ) else {
                        return Err("join points missing a commit mode".to_owned());
                    };
                    let ratio = group / per.max(1e-9);
                    if ratio < 3.0 {
                        return Err(format!(
                            "group commit only {ratio:.2}x per-mutation ({group:.0}/s vs {per:.0}/s)"
                        ));
                    }
                    Ok(format!(
                        "group commit {ratio:.2}x per-mutation ({group:.0}/s vs {per:.0}/s)"
                    ))
                }),
            }),
            Box::new(Predicate {
                name: "E21-failover-heals-without-loss",
                check: Box::new(|points: &[PointSummary]| {
                    let mut drills = 0usize;
                    for pt in points {
                        if pt.params.get("mode").and_then(|v| v.as_str()) != Some("failover")
                        {
                            continue;
                        }
                        drills += 1;
                        for (metric, want) in
                            [("promoted", 1.0), ("byte_ok", 1.0), ("give_ups", 0.0)]
                        {
                            let Some(v) = pt.mean(metric) else {
                                return Err(format!("[{}] lacks {metric}", pt.params));
                            };
                            if (v - want).abs() > 1e-9 {
                                return Err(format!(
                                    "{metric} = {v} (want {want}) at [{}]",
                                    pt.params
                                ));
                            }
                        }
                    }
                    if drills == 0 {
                        return Err("no failover drill points measured".to_owned());
                    }
                    Ok(format!(
                        "every drill promoted at the old address, byte-identical, zero give-ups ({drills} points)"
                    ))
                }),
            }),
        ]
    }
}

/// e22 — vnet scale: the N-independence of the steady-state defect
/// probability, measured over the in-process virtual network.
///
/// Unlike e06/e21 this sweep is *fully* deterministic: the vnet runs on
/// a virtual clock, so a cell's metrics — including the journal digest —
/// depend only on `(params, seed)`. The `determinism` point makes that
/// a gated claim by replaying its own cell and comparing digests.
struct E22VnetScale;

impl E22VnetScale {
    fn churn_point(n: usize, rounds: usize, frac: f64) -> Params {
        Params::new()
            .with("mode", "churn")
            .with("n", n)
            .with("k", 8usize)
            .with("d", 2usize)
            .with("rounds", rounds)
            .with("frac", frac)
            .with("loss", 0.01)
    }

    fn cell_params(params: &Params) -> e22::ChurnParams {
        e22::ChurnParams {
            peers: params.usize("n"),
            fanout: params.usize("k"),
            reserve: params.usize("d"),
            churn_rounds: params.usize("rounds"),
            churn_frac: params.float("frac"),
            loss: params.float("loss"),
        }
    }

    /// `(n, mean defect_p)` for every churn-mode point, in grid order.
    fn defect_curve(points: &[PointSummary]) -> Vec<(i64, f64)> {
        points
            .iter()
            .filter(|pt| pt.params.get("mode").and_then(|v| v.as_str()) == Some("churn"))
            .filter_map(|pt| {
                let n = pt.params.get("n").and_then(|v| v.as_i64())?;
                Some((n, pt.mean("defect_p")?))
            })
            .collect()
    }
}

impl Sweep for E22VnetScale {
    fn id(&self) -> &'static str {
        "e22"
    }

    fn title(&self) -> &'static str {
        "Vnet scale: defect probability independent of N; churn heals; replays byte-identical"
    }

    fn code_salt(&self) -> &'static str {
        "e22-v1"
    }

    fn grid(&self, profile: Profile) -> ParamGrid {
        if profile.quick {
            // Smaller swarms need heavier churn for a reliable defect
            // signal: at 5% of 60 peers a round kills 3, and two rounds
            // can miss every in-transfer parent.
            return ParamGrid::from_points(vec![
                Self::churn_point(60, 2, 0.1),
                Self::churn_point(150, 2, 0.1),
                Self::churn_point(60, 1, 0.1).with("mode", "determinism"),
            ]);
        }
        ParamGrid::from_points(vec![
            Self::churn_point(100, 4, 0.05),
            Self::churn_point(300, 4, 0.05),
            Self::churn_point(1000, 4, 0.05),
            Self::churn_point(100, 2, 0.05).with("mode", "determinism"),
        ])
    }

    fn run(&self, params: &Params, seed: u64) -> Measurement {
        match params.str("mode") {
            "churn" => {
                let out = e22::churn_soak(&Self::cell_params(params), seed);
                Measurement::new()
                    .with("defect_p", out.defect_p)
                    .with("repairs", out.repairs as f64)
                    .with("resyncs", out.resyncs as f64)
                    .with("gave_up", out.gave_up as f64)
                    .with("frames_lost", out.frames_lost as f64)
                    .with("all_complete", if out.all_complete { 1.0 } else { 0.0 })
                    .with("completed", out.completed as f64)
                    .with("virtual_ms", out.virtual_ms)
            }
            "determinism" => {
                let identical = e22::replay_identical(&Self::cell_params(params), seed);
                Measurement::new().with("replay_identical", if identical { 1.0 } else { 0.0 })
            }
            other => panic!("unknown e22 mode {other:?}"),
        }
    }

    fn claims(&self) -> Vec<Box<dyn Claim>> {
        vec![
            Box::new(Predicate {
                name: "E22-defect-independent-of-n",
                check: Box::new(|points: &[PointSummary]| {
                    let curve = E22VnetScale::defect_curve(points);
                    if curve.len() < 2 {
                        return Err(format!("need >=2 churn points, got {}", curve.len()));
                    }
                    let lo = curve.iter().map(|(_, p)| *p).fold(f64::INFINITY, f64::min);
                    let hi = curve.iter().map(|(_, p)| *p).fold(0.0, f64::max);
                    let shown: Vec<String> =
                        curve.iter().map(|(n, p)| format!("N={n}: {p:.4}")).collect();
                    // The band is absolute-or-relative: small means are
                    // noisy in ratio but trivially close in absolute
                    // terms; large means must track each other.
                    if hi - lo > 0.05 && hi > 4.0 * lo.max(1e-9) {
                        return Err(format!(
                            "defect probability varies with N: {}",
                            shown.join(", ")
                        ));
                    }
                    Ok(format!("defect band across N: {}", shown.join(", ")))
                }),
            }),
            Box::new(UpperBound {
                name: "E22-defect-under-10pct",
                metric: "defect_p",
                slack: 0.0,
                bound: Box::new(|params| {
                    (params.get("mode").and_then(|v| v.as_str()) == Some("churn"))
                        .then_some(0.1)
                }),
            }),
            Box::new(Predicate {
                name: "E22-churn-heals-completely",
                check: Box::new(|points: &[PointSummary]| {
                    let mut churn = 0usize;
                    let mut pooled_defect = 0.0;
                    let mut pooled_repairs = 0.0;
                    for pt in points {
                        if pt.params.get("mode").and_then(|v| v.as_str()) != Some("churn") {
                            continue;
                        }
                        churn += 1;
                        for (metric, want) in [("gave_up", 0.0), ("all_complete", 1.0)] {
                            let Some(v) = pt.mean(metric) else {
                                return Err(format!("[{}] lacks {metric}", pt.params));
                            };
                            if (v - want).abs() > 1e-9 {
                                return Err(format!(
                                    "{metric} = {v} (want {want}) at [{}]",
                                    pt.params
                                ));
                            }
                        }
                        pooled_defect += pt.mean("defect_p").unwrap_or(0.0);
                        pooled_repairs += pt.mean("repairs").unwrap_or(0.0);
                    }
                    if churn == 0 {
                        return Err("no churn points measured".to_owned());
                    }
                    if pooled_defect <= 0.0 || pooled_repairs <= 0.0 {
                        return Err(format!(
                            "churn left no trace: pooled defect {pooled_defect:.5}, repairs {pooled_repairs:.1}"
                        ));
                    }
                    Ok(format!(
                        "{churn} churn points: every defect healed, zero give-ups, all swarms complete"
                    ))
                }),
            }),
            Box::new(Predicate {
                name: "E22-replay-byte-identical",
                check: Box::new(|points: &[PointSummary]| {
                    let mut cells = 0usize;
                    for pt in points {
                        if pt.params.get("mode").and_then(|v| v.as_str())
                            != Some("determinism")
                        {
                            continue;
                        }
                        cells += 1;
                        match pt.mean("replay_identical") {
                            Some(v) if (v - 1.0).abs() <= 1e-9 => {}
                            other => {
                                return Err(format!(
                                    "replay diverged at [{}]: {other:?}",
                                    pt.params
                                ))
                            }
                        }
                    }
                    if cells == 0 {
                        return Err("no determinism points measured".to_owned());
                    }
                    Ok(format!("{cells} determinism points replayed byte-identical"))
                }),
            }),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_salted() {
        let sweeps = registry();
        let ids: Vec<&str> = sweeps.iter().map(|s| s.id()).collect();
        assert_eq!(ids, vec!["e01", "e03", "e04", "e05", "e06", "e20", "e21", "e22"]);
        for sweep in &sweeps {
            assert!(
                sweep.code_salt().starts_with(sweep.id()),
                "{} salt should be namespaced",
                sweep.id()
            );
        }
    }

    #[test]
    fn grids_are_nonempty_and_quick_is_smaller() {
        for sweep in registry() {
            let full = sweep.grid(Profile::default());
            let quick = sweep.grid(Profile { scale: 1, quick: true });
            assert!(!full.is_empty(), "{}", sweep.id());
            assert!(!quick.is_empty(), "{}", sweep.id());
            assert!(quick.len() <= full.len(), "{}", sweep.id());
            assert!(!sweep.seeds(Profile::default()).is_empty());
        }
    }

    #[test]
    fn theorem4_ceiling_follows_the_drift_roots() {
        let p = Params::new().with("k", 32usize).with("d", 2usize).with("p", 0.02);
        let bound = theorem4_ceiling(&p).expect("root exists at mild p");
        assert!(bound > 0.0 && bound < 1.0, "{bound}");
        // Degenerate geometry (k <= d^2) has no bound to check.
        let degenerate = Params::new().with("k", 4usize).with("d", 2usize).with("p", 0.02);
        assert_eq!(theorem4_ceiling(&degenerate), None);
    }

    #[test]
    fn e05_grid_carries_all_scenarios_per_fraction() {
        let grid = E05Adversarial.grid(Profile::default());
        assert_eq!(grid.len(), 9);
        let scenarios: Vec<&str> =
            grid.points().iter().take(3).map(|pt| pt.str("scenario")).collect();
        assert_eq!(scenarios, vec!["flash_append", "flash_rand_insert", "iid_random"]);
    }
}
