//! The `lab` binary: `lab run | check | list | trace` (see `curtain_lab::cli`).

fn main() {
    std::process::exit(curtain_lab::cli::main_entry(std::env::args().skip(1)));
}
