//! Cells — the unit of execution, caching, and resumption.
//!
//! A [`Cell`] is one (experiment, parameter point, seed) triple; a
//! [`Measurement`] is the named scalar metrics its run produced. The
//! cell's identity hash (with the experiment's code-salt mixed in) is the
//! content address of its cache entry.

use std::collections::BTreeMap;

use curtain_telemetry::json::JsonValue;

use crate::grid::Params;

/// One schedulable unit: a parameter point at one seed.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// The experiment id (`"e01"`).
    pub exp: String,
    /// The parameter point.
    pub params: Params,
    /// The cell's RNG seed.
    pub seed: u64,
}

impl Cell {
    /// The content address of this cell's cache entry: an FNV-1a hash of
    /// the experiment id, the canonical parameter rendering, the seed,
    /// and the experiment's code-salt. Any of the four changing moves the
    /// cell to a different address, so stale entries are never *read* —
    /// they are simply orphaned.
    #[must_use]
    pub fn cache_key(&self, code_salt: &str) -> u64 {
        let mut h = Fnv1a::new();
        h.update(self.exp.as_bytes());
        h.update(&[0]);
        h.update(self.params.canonical().as_bytes());
        h.update(&[0]);
        h.update(&self.seed.to_le_bytes());
        h.update(&[0]);
        h.update(code_salt.as_bytes());
        h.finish()
    }

    /// The cache key as a fixed-width hex file stem.
    #[must_use]
    pub fn cache_stem(&self, code_salt: &str) -> String {
        format!("{:016x}", self.cache_key(code_salt))
    }
}

/// 64-bit FNV-1a — tiny, dependency-free, and stable across platforms;
/// collisions are harmless because cache entries embed (and are verified
/// against) the full cell identity on load.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Named scalar metrics produced by one cell run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Measurement {
    values: BTreeMap<String, f64>,
}

impl Measurement {
    /// An empty measurement.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style insertion.
    #[must_use]
    pub fn with(mut self, metric: &str, value: f64) -> Self {
        self.values.insert(metric.to_owned(), value);
        self
    }

    /// Inserts or replaces a metric.
    pub fn set(&mut self, metric: &str, value: f64) {
        self.values.insert(metric.to_owned(), value);
    }

    /// Looks up a metric.
    #[must_use]
    pub fn get(&self, metric: &str) -> Option<f64> {
        self.values.get(metric).copied()
    }

    /// Iterates `(metric, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// The metric names, in order.
    pub fn metrics(&self) -> impl Iterator<Item = &str> {
        self.values.keys().map(String::as_str)
    }

    /// The JSON object form.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(
            self.values.iter().map(|(k, v)| (k.clone(), JsonValue::Float(*v))).collect(),
        )
    }

    /// Parses the JSON object form back (accepting ints as floats).
    #[must_use]
    pub fn from_json(value: &JsonValue) -> Option<Self> {
        let fields = value.as_object()?;
        let mut m = Measurement::new();
        for (name, v) in fields {
            m.values.insert(name.clone(), v.as_f64()?);
        }
        Some(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(seed: u64) -> Cell {
        Cell {
            exp: "e01".into(),
            params: Params::new().with("k", 32i64).with("p", 0.02),
            seed,
        }
    }

    #[test]
    fn cache_key_separates_every_identity_component() {
        let base = cell(1).cache_key("v1");
        assert_eq!(cell(1).cache_key("v1"), base, "stable");
        assert_ne!(cell(2).cache_key("v1"), base, "seed");
        assert_ne!(cell(1).cache_key("v2"), base, "code salt");
        let mut other = cell(1);
        other.exp = "e03".into();
        assert_ne!(other.cache_key("v1"), base, "experiment");
        let mut other = cell(1);
        other.params.set("p", 0.04);
        assert_ne!(other.cache_key("v1"), base, "params");
    }

    #[test]
    fn cache_stem_is_fixed_width_hex() {
        let stem = cell(7).cache_stem("v1");
        assert_eq!(stem.len(), 16);
        assert!(stem.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn measurement_json_round_trip() {
        let m = Measurement::new().with("defect_fraction", 0.041).with("pd", 0.04);
        let back = Measurement::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.get("pd"), Some(0.04));
        assert_eq!(back.get("absent"), None);
        assert_eq!(m.metrics().collect::<Vec<_>>(), vec!["defect_fraction", "pd"]);
    }

    #[test]
    fn measurement_rejects_non_numeric_json() {
        let bad = curtain_telemetry::json::parse_document(r#"{"x":"nope"}"#).unwrap();
        assert_eq!(Measurement::from_json(&bad), None);
    }
}
