//! Content-addressed on-disk result cache.
//!
//! Each cell's measurement lives in its own JSON file at
//! `<root>/<exp>/<hex-cache-key>.json`, where the key hashes the full
//! cell identity plus the experiment's code-salt (see
//! [`Cell::cache_key`]). Interrupted or repeated sweeps therefore resume
//! with hits for every cell already measured, and a code-salt bump
//! orphans stale entries without touching other experiments.
//!
//! Writes go through a temp file + rename so a crash mid-write never
//! leaves a half-entry that a resume would trust.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use curtain_telemetry::json::{parse_document, JsonValue};

use crate::cell::{Cell, Measurement};
use crate::grid::Params;

/// A directory of per-cell measurement files.
#[derive(Debug, Clone)]
pub struct Cache {
    root: PathBuf,
}

impl Cache {
    /// Opens (creating if needed) the cache rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Cache { root })
    }

    /// The cache's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_path(&self, cell: &Cell, code_salt: &str) -> PathBuf {
        self.root.join(&cell.exp).join(format!("{}.json", cell.cache_stem(code_salt)))
    }

    /// Loads the cached measurement for `cell`, if present and valid.
    ///
    /// The stored identity (experiment, seed, params, salt) is verified
    /// against the cell before the entry is trusted, so a hash collision
    /// or a hand-edited file degrades to a miss, never a wrong result.
    #[must_use]
    pub fn load(&self, cell: &Cell, code_salt: &str) -> Option<Measurement> {
        let text = fs::read_to_string(self.entry_path(cell, code_salt)).ok()?;
        let doc = parse_document(&text).ok()?;
        let matches_identity = doc.get("exp").and_then(JsonValue::as_str) == Some(cell.exp.as_str())
            && doc.get("salt").and_then(JsonValue::as_str) == Some(code_salt)
            && doc.get("seed").and_then(JsonValue::as_u64) == Some(cell.seed)
            && doc.get("params").and_then(Params::from_json).as_ref() == Some(&cell.params);
        if !matches_identity {
            return None;
        }
        doc.get("values").and_then(Measurement::from_json)
    }

    /// Stores `measurement` for `cell`, atomically.
    pub fn store(
        &self,
        cell: &Cell,
        code_salt: &str,
        measurement: &Measurement,
        wall_ms: f64,
    ) -> std::io::Result<()> {
        let path = self.entry_path(cell, code_salt);
        let dir = path.parent().expect("entry path has a parent");
        fs::create_dir_all(dir)?;

        let mut entry = std::collections::BTreeMap::new();
        entry.insert("exp".to_owned(), JsonValue::Str(cell.exp.clone()));
        entry.insert("salt".to_owned(), JsonValue::Str(code_salt.to_owned()));
        entry.insert("seed".to_owned(), JsonValue::Int(cell.seed as i64));
        entry.insert("params".to_owned(), cell.params.to_json());
        entry.insert("values".to_owned(), measurement.to_json());
        entry.insert("wall_ms".to_owned(), JsonValue::Float(wall_ms));
        let body = JsonValue::Object(entry).render_pretty();

        // Unique temp name per (key, thread) so concurrent workers — which
        // only ever race on *identical* content — can't corrupt each other.
        let tmp = dir.join(format!(
            ".{}.{:?}.tmp",
            path.file_stem().and_then(|s| s.to_str()).unwrap_or("entry"),
            std::thread::current().id(),
        ));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(body.as_bytes())?;
            f.write_all(b"\n")?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("curtain-lab-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn cell() -> Cell {
        Cell {
            exp: "e01".into(),
            params: Params::new().with("k", 32i64).with("p", 0.02),
            seed: 9,
        }
    }

    #[test]
    fn store_then_load_round_trips() {
        let root = scratch("round-trip");
        let cache = Cache::open(&root).unwrap();
        let m = Measurement::new().with("defect_fraction", 0.031);
        assert_eq!(cache.load(&cell(), "v1"), None, "cold cache misses");
        cache.store(&cell(), "v1", &m, 12.5).unwrap();
        assert_eq!(cache.load(&cell(), "v1"), Some(m));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn salt_bump_and_identity_mismatch_are_misses() {
        let root = scratch("salt");
        let cache = Cache::open(&root).unwrap();
        let m = Measurement::new().with("x", 1.0);
        cache.store(&cell(), "v1", &m, 0.0).unwrap();
        assert_eq!(cache.load(&cell(), "v2"), None, "new salt hashes elsewhere");

        // Forge a collision: copy the v1 entry to where v2 would look.
        let src = cache.entry_path(&cell(), "v1");
        let dst = cache.entry_path(&cell(), "v2");
        fs::copy(&src, &dst).unwrap();
        assert_eq!(cache.load(&cell(), "v2"), None, "stored salt is verified");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_entries_degrade_to_misses() {
        let root = scratch("corrupt");
        let cache = Cache::open(&root).unwrap();
        let path = cache.entry_path(&cell(), "v1");
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, "{not json").unwrap();
        assert_eq!(cache.load(&cell(), "v1"), None);
        let _ = fs::remove_dir_all(&root);
    }
}
