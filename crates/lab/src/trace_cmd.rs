//! `lab trace` — stitch multi-process JSONL traces into one causal report.
//!
//! ```text
//! lab trace <trace.jsonl>... [--out <report.json>] [--stacks <out.folded>]
//! ```
//!
//! Each input file is one process's `--trace` output (coordinator, source,
//! peers). The stitcher merges them by trace id and prints hop-chain
//! completeness per generation, per-edge latency distributions, and
//! repair-episode span trees ([`curtain_telemetry::stitch`]). `--out`
//! additionally writes the full report as JSON; `--stacks` writes
//! collapsed-stack lines (`a;b;c weight`) ready for a flamegraph tool.

use std::path::PathBuf;

use curtain_telemetry::replay::{self, TracedEvent};
use curtain_telemetry::stitch;

/// Usage text for the `trace` subcommand.
#[must_use]
pub fn usage() -> &'static str {
    "usage: lab trace <trace.jsonl>... [--out <report.json>] [--stacks <out.folded>]\n\
     \n\
     Stitches per-process JSONL traces (from --trace flags on\n\
     curtain_coordinator / curtain_source / curtain_peer, or any\n\
     curtain-telemetry JsonlSink) into one cross-process causal report:\n\
     hop-chain completeness per generation, per-edge latency quantiles,\n\
     and repair-episode span trees.\n"
}

/// Parsed `lab trace` arguments.
#[derive(Debug, Default, PartialEq)]
struct TraceArgs {
    inputs: Vec<PathBuf>,
    out: Option<PathBuf>,
    stacks: Option<PathBuf>,
}

fn parse(args: impl IntoIterator<Item = String>) -> Result<TraceArgs, String> {
    let mut parsed = TraceArgs::default();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                let v = args.next().ok_or("--out needs a value")?;
                parsed.out = Some(PathBuf::from(v));
            }
            "--stacks" => {
                let v = args.next().ok_or("--stacks needs a value")?;
                parsed.stacks = Some(PathBuf::from(v));
            }
            "--help" | "-h" => return Err(String::new()),
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag:?}")),
            file => parsed.inputs.push(PathBuf::from(file)),
        }
    }
    if parsed.inputs.is_empty() {
        return Err("no trace files given".to_owned());
    }
    Ok(parsed)
}

/// Runs `lab trace`; returns the process exit code.
pub fn main_entry(args: impl IntoIterator<Item = String>) -> i32 {
    let parsed = match parse(args) {
        Ok(p) => p,
        Err(message) => {
            if message.is_empty() {
                print!("{}", usage());
                return 0;
            }
            eprintln!("lab trace: {message}");
            eprint!("{}", usage());
            return 2;
        }
    };

    let mut events: Vec<TracedEvent> = Vec::new();
    for path in &parsed.inputs {
        let file = match std::fs::File::open(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("lab trace: cannot open {}: {e}", path.display());
                return 1;
            }
        };
        match replay::read_trace(std::io::BufReader::new(file)) {
            Ok(mut trace) => {
                println!("read {:>6} events from {}", trace.len(), path.display());
                events.append(&mut trace);
            }
            Err(e) => {
                eprintln!("lab trace: cannot parse {}: {e}", path.display());
                return 1;
            }
        }
    }

    let report = stitch::stitch(&events);
    print!("{}", report.render_text());

    if let Some(path) = &parsed.out {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("lab trace: cannot write {}: {e}", path.display());
            return 1;
        }
        println!("wrote {}", path.display());
    }
    if let Some(path) = &parsed.stacks {
        if let Err(e) = std::fs::write(path, report.collapsed_stacks()) {
            eprintln!("lab trace: cannot write {}: {e}", path.display());
            return 1;
        }
        println!("wrote {}", path.display());
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(args: &[&str]) -> TraceArgs {
        parse(args.iter().map(|s| (*s).to_owned())).unwrap()
    }

    #[test]
    fn parses_inputs_and_flags() {
        let parsed = parse_ok(&["a.jsonl", "b.jsonl", "--out", "r.json", "--stacks", "s.folded"]);
        assert_eq!(parsed.inputs, vec![PathBuf::from("a.jsonl"), PathBuf::from("b.jsonl")]);
        assert_eq!(parsed.out, Some(PathBuf::from("r.json")));
        assert_eq!(parsed.stacks, Some(PathBuf::from("s.folded")));
    }

    #[test]
    fn rejects_bad_invocations() {
        for case in [&["--out"][..], &["--bogus", "x.jsonl"], &[]] {
            let result = parse(case.iter().map(|s| (*s).to_owned()));
            assert!(result.is_err(), "{case:?}");
            assert!(!result.unwrap_err().is_empty(), "{case:?} should carry a message");
        }
        assert_eq!(parse(["--help".to_owned()].into_iter()).unwrap_err(), "");
    }

    #[test]
    fn stitches_files_end_to_end() {
        use curtain_telemetry::trace::{NO_PARENT, SOURCE_NODE};
        use curtain_telemetry::{Event, JsonlSink, SharedRecorder};

        let dir = std::env::temp_dir().join(format!("lab-trace-cmd-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // Source process: one hop sent.
        let source_sink = JsonlSink::new(Vec::new());
        let r = SharedRecorder::wall_clock(source_sink.clone());
        r.record(&Event::HopSend {
            trace: 9,
            span: 10,
            parent: NO_PARENT,
            node: SOURCE_NODE,
            generation: 0,
            t_us: 1_000,
        });
        let source_path = dir.join("source.jsonl");
        std::fs::write(&source_path, source_sink.bytes()).unwrap();

        // Peer process: the matching receive.
        let peer_sink = JsonlSink::new(Vec::new());
        let r = SharedRecorder::wall_clock(peer_sink.clone());
        r.record(&Event::HopRecv { trace: 9, span: 10, node: 1, generation: 0, t_us: 1_400 });
        let peer_path = dir.join("peer.jsonl");
        std::fs::write(&peer_path, peer_sink.bytes()).unwrap();

        let out = dir.join("report.json");
        let stacks = dir.join("stacks.folded");
        let code = main_entry(
            [
                source_path.display().to_string(),
                peer_path.display().to_string(),
                "--out".to_owned(),
                out.display().to_string(),
                "--stacks".to_owned(),
                stacks.display().to_string(),
            ],
        );
        assert_eq!(code, 0);
        let report = std::fs::read_to_string(&out).unwrap();
        assert!(report.contains("\"complete\""), "{report}");
        let stacks = std::fs::read_to_string(&stacks).unwrap();
        assert!(stacks.contains("path;source;n1"), "{stacks}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_an_error() {
        let code = main_entry(["/definitely/not/here.jsonl".to_owned()]);
        assert_eq!(code, 1);
    }
}
