//! Work-stealing execution of the (point × seed) cell matrix.
//!
//! Cells are pushed into a `crossbeam::deque::Injector`; each worker
//! thread drains its local queue, refills from the injector in batches,
//! and steals from siblings when both run dry. Every cell carries its own
//! seed and writes only its own result slot, so the measurement vector is
//! **identical at any job count** — parallelism changes wall-time, never
//! bytes.
//!
//! Wall-clock observations (per-cell run time, cache hit/miss counts) go
//! into the caller's [`MetricsRegistry`]; they feed the `.timing.json`
//! sidecar and never the deterministic report.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use curtain_telemetry::MetricsRegistry;

use crate::cache::Cache;
use crate::cell::{Cell, Measurement};
use crate::Sweep;

/// Cache traffic of one sweep execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Cells answered from the on-disk cache.
    pub hits: u64,
    /// Cells actually executed.
    pub misses: u64,
}

impl RunStats {
    /// Hit fraction in percent (100.0 for a fully resumed sweep).
    #[must_use]
    pub fn hit_percent(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 { 100.0 } else { 100.0 * self.hits as f64 / total as f64 }
    }
}

/// Executes every cell, returning measurements **in cell order**.
///
/// `jobs` is clamped to `1..=cells.len()`. With `cache` present, cells
/// are answered from disk when possible and stored after execution;
/// `fresh` forces re-execution (results still overwrite the cache).
pub fn run_cells(
    sweep: &dyn Sweep,
    cells: &[Cell],
    jobs: usize,
    cache: Option<&Cache>,
    fresh: bool,
    metrics: &MetricsRegistry,
) -> (Vec<Measurement>, RunStats) {
    let salt = sweep.code_salt();
    let hits = AtomicU64::new(0);
    let misses = AtomicU64::new(0);
    let slots: Vec<Mutex<Option<Measurement>>> =
        cells.iter().map(|_| Mutex::new(None)).collect();

    let jobs = jobs.clamp(1, cells.len().max(1));
    let injector: Injector<usize> = Injector::new();
    for index in 0..cells.len() {
        injector.push(index);
    }
    let workers: Vec<Worker<usize>> = (0..jobs).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<usize>> = workers.iter().map(Worker::stealer).collect();

    std::thread::scope(|scope| {
        for local in workers {
            let (injector, stealers) = (&injector, &stealers[..]);
            let (slots, hits, misses) = (&slots[..], &hits, &misses);
            scope.spawn(move || {
                while let Some(index) = find_task(&local, injector, stealers) {
                    let cell = &cells[index];
                    let measurement = run_one(
                        sweep, cell, salt, cache, fresh, metrics, hits, misses,
                    );
                    *slots[index].lock().unwrap() = Some(measurement);
                }
            });
        }
    });

    let results = slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("every cell ran"))
        .collect();
    let stats = RunStats {
        hits: hits.load(Ordering::Relaxed),
        misses: misses.load(Ordering::Relaxed),
    };
    metrics.counter("cache_hits", stats.hits);
    metrics.counter("cache_misses", stats.misses);
    (results, stats)
}

#[allow(clippy::too_many_arguments)]
fn run_one(
    sweep: &dyn Sweep,
    cell: &Cell,
    salt: &str,
    cache: Option<&Cache>,
    fresh: bool,
    metrics: &MetricsRegistry,
    hits: &AtomicU64,
    misses: &AtomicU64,
) -> Measurement {
    if !fresh {
        if let Some(found) = cache.and_then(|c| c.load(cell, salt)) {
            hits.fetch_add(1, Ordering::Relaxed);
            return found;
        }
    }
    misses.fetch_add(1, Ordering::Relaxed);

    let started = Instant::now();
    let measurement = sweep.run(&cell.params, cell.seed);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    metrics.histogram("cell_wall_ms", wall_ms);

    if let Some(cache) = cache {
        if let Err(err) = cache.store(cell, salt, &measurement, wall_ms) {
            // A dead cache degrades resumption, not correctness.
            eprintln!("lab: cache write failed for {} seed {}: {err}", cell.params, cell.seed);
        }
    }
    measurement
}

/// The standard crossbeam scheduling loop: local queue first, then batch
/// from the injector, then steal from siblings; `None` means the matrix
/// is drained (cells never spawn cells, so empty-everywhere is final).
fn find_task<T>(local: &Worker<T>, global: &Injector<T>, stealers: &[Stealer<T>]) -> Option<T> {
    local.pop().or_else(|| {
        std::iter::repeat_with(|| {
            global
                .steal_batch_and_pop(local)
                .or_else(|| stealers.iter().map(Stealer::steal).collect())
        })
        .find(|s| !s.is_retry())
        .and_then(Steal::success)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{ints, ParamGrid, Params};
    use crate::Profile;

    /// A deterministic toy sweep: value = x * 1000 + seed.
    struct Toy;

    impl Sweep for Toy {
        fn id(&self) -> &'static str {
            "toy"
        }
        fn title(&self) -> &'static str {
            "toy sweep"
        }
        fn code_salt(&self) -> &'static str {
            "toy-v1"
        }
        fn grid(&self, _profile: Profile) -> ParamGrid {
            ParamGrid::cartesian(&[("x", ints(&[1, 2, 3]))])
        }
        fn run(&self, params: &Params, seed: u64) -> Measurement {
            Measurement::new().with("y", (params.int("x") * 1000) as f64 + seed as f64)
        }
    }

    fn matrix() -> Vec<Cell> {
        let mut cells = Vec::new();
        for point in Toy.grid(Profile::default()).points() {
            for seed in [5u64, 6] {
                cells.push(Cell { exp: "toy".into(), params: point.clone(), seed });
            }
        }
        cells
    }

    #[test]
    fn results_are_in_cell_order_at_any_job_count() {
        let cells = matrix();
        let metrics = MetricsRegistry::new();
        let (serial, _) = run_cells(&Toy, &cells, 1, None, false, &metrics);
        for jobs in [2, 4, 19] {
            let (parallel, stats) = run_cells(&Toy, &cells, jobs, None, false, &metrics);
            assert_eq!(parallel, serial, "jobs={jobs}");
            assert_eq!(stats, RunStats { hits: 0, misses: cells.len() as u64 });
        }
        assert_eq!(serial[0].get("y"), Some(1005.0));
        assert_eq!(serial[5].get("y"), Some(3006.0));
    }

    #[test]
    fn cache_turns_the_second_run_into_all_hits() {
        let root = std::env::temp_dir()
            .join(format!("curtain-lab-pool-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let cache = Cache::open(&root).unwrap();
        let cells = matrix();
        let metrics = MetricsRegistry::new();

        let (first, cold) = run_cells(&Toy, &cells, 3, Some(&cache), false, &metrics);
        assert_eq!(cold, RunStats { hits: 0, misses: 6 });
        let (second, warm) = run_cells(&Toy, &cells, 2, Some(&cache), false, &metrics);
        assert_eq!(warm, RunStats { hits: 6, misses: 0 });
        assert_eq!(warm.hit_percent(), 100.0);
        assert_eq!(second, first);

        let (_, forced) = run_cells(&Toy, &cells, 2, Some(&cache), true, &metrics);
        assert_eq!(forced, RunStats { hits: 0, misses: 6 }, "--fresh bypasses reads");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn empty_matrix_is_a_no_op() {
        let metrics = MetricsRegistry::new();
        let (results, stats) = run_cells(&Toy, &[], 4, None, false, &metrics);
        assert!(results.is_empty());
        assert_eq!(stats.hit_percent(), 100.0);
    }
}
