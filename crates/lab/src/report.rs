//! Sweep summaries and the `BENCH_<exp>.json` artifact.
//!
//! A [`SweepReport`] aggregates the cell matrix per parameter point
//! (mean / CI95 / min / max across seeds, per metric) and renders to a
//! **deterministic** JSON document: key-sorted objects, points in grid
//! order, floats through the canonical writer. The same grid and seeds
//! produce the same bytes at any `--jobs` count.
//!
//! Wall-clock data — the per-cell run-time histogram, job count, cache
//! traffic — is written separately by [`write_timing_sidecar`] as
//! `BENCH_<exp>.timing.json`, the one artifact allowed to differ between
//! runs.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use curtain_bench::stats;
use curtain_telemetry::json::JsonValue;
use curtain_telemetry::MetricsSnapshot;

use crate::cell::Measurement;
use crate::claims::ClaimOutcome;
use crate::grid::Params;
use crate::pool::RunStats;

/// Seed-aggregated statistics of one metric at one parameter point.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricStats {
    /// Number of seeds aggregated.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Normal-approximation 95% confidence half-width.
    pub ci95: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl MetricStats {
    /// Aggregates one metric's per-seed values.
    #[must_use]
    pub fn from_values(values: &[f64]) -> Self {
        let n = values.len();
        let mean = stats::mean(values);
        let std_dev = stats::std_dev(values);
        let ci95 = if n > 1 { 1.96 * std_dev / (n as f64).sqrt() } else { 0.0 };
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in values {
            min = min.min(v);
            max = max.max(v);
        }
        if n == 0 {
            min = 0.0;
            max = 0.0;
        }
        MetricStats { n, mean, std_dev, ci95, min, max }
    }

    fn to_json(&self) -> JsonValue {
        let mut fields = BTreeMap::new();
        fields.insert("ci95".to_owned(), JsonValue::Float(self.ci95));
        fields.insert("max".to_owned(), JsonValue::Float(self.max));
        fields.insert("mean".to_owned(), JsonValue::Float(self.mean));
        fields.insert("min".to_owned(), JsonValue::Float(self.min));
        fields.insert("n".to_owned(), JsonValue::Int(self.n as i64));
        fields.insert("std_dev".to_owned(), JsonValue::Float(self.std_dev));
        JsonValue::Object(fields)
    }
}

/// One parameter point with its aggregated metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSummary {
    /// The parameter point.
    pub params: Params,
    /// Per-metric statistics, metric-name-ordered.
    pub metrics: BTreeMap<String, MetricStats>,
}

impl PointSummary {
    /// The mean of `metric` at this point, if measured.
    #[must_use]
    pub fn mean(&self, metric: &str) -> Option<f64> {
        self.metrics.get(metric).map(|s| s.mean)
    }

    fn to_json(&self) -> JsonValue {
        let mut fields = BTreeMap::new();
        fields.insert("params".to_owned(), self.params.to_json());
        fields.insert(
            "metrics".to_owned(),
            JsonValue::Object(
                self.metrics.iter().map(|(k, v)| (k.clone(), v.to_json())).collect(),
            ),
        );
        JsonValue::Object(fields)
    }
}

/// The deterministic summary of one sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// The experiment id (`"e01"`).
    pub exp: String,
    /// The experiment title.
    pub title: String,
    /// The code-salt the cells were measured under.
    pub code_salt: String,
    /// The seeds every point was measured at.
    pub seeds: Vec<u64>,
    /// Per-point summaries, in grid order.
    pub points: Vec<PointSummary>,
    /// Claim outcomes, in registry order (empty until checked).
    pub claims: Vec<ClaimOutcome>,
}

impl SweepReport {
    /// Aggregates the cell matrix: `measurements` must be in cell order,
    /// seeds varying fastest within each point (the layout
    /// [`crate::cli`] builds and [`crate::pool::run_cells`] preserves).
    #[must_use]
    pub fn aggregate(
        exp: &str,
        title: &str,
        code_salt: &str,
        grid_points: &[Params],
        seeds: &[u64],
        measurements: &[Measurement],
    ) -> Self {
        assert_eq!(
            measurements.len(),
            grid_points.len() * seeds.len(),
            "cell matrix shape mismatch"
        );
        let points = grid_points
            .iter()
            .enumerate()
            .map(|(i, params)| {
                let rows = &measurements[i * seeds.len()..(i + 1) * seeds.len()];
                let mut names: Vec<&str> = Vec::new();
                for row in rows {
                    for name in row.metrics() {
                        if !names.contains(&name) {
                            names.push(name);
                        }
                    }
                }
                let metrics = names
                    .into_iter()
                    .map(|name| {
                        let values: Vec<f64> =
                            rows.iter().filter_map(|r| r.get(name)).collect();
                        (name.to_owned(), MetricStats::from_values(&values))
                    })
                    .collect();
                PointSummary { params: params.clone(), metrics }
            })
            .collect();
        SweepReport {
            exp: exp.to_owned(),
            title: title.to_owned(),
            code_salt: code_salt.to_owned(),
            seeds: seeds.to_vec(),
            points,
            claims: Vec::new(),
        }
    }

    /// The full JSON document (schema 1).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let mut fields = BTreeMap::new();
        fields.insert("schema".to_owned(), JsonValue::Int(1));
        fields.insert("exp".to_owned(), JsonValue::Str(self.exp.clone()));
        fields.insert("title".to_owned(), JsonValue::Str(self.title.clone()));
        fields.insert("code_salt".to_owned(), JsonValue::Str(self.code_salt.clone()));
        fields.insert(
            "seeds".to_owned(),
            JsonValue::Array(self.seeds.iter().map(|&s| JsonValue::Int(s as i64)).collect()),
        );
        fields.insert(
            "points".to_owned(),
            JsonValue::Array(self.points.iter().map(PointSummary::to_json).collect()),
        );
        fields.insert(
            "claims".to_owned(),
            JsonValue::Array(self.claims.iter().map(ClaimOutcome::to_json).collect()),
        );
        JsonValue::Object(fields)
    }

    /// The deterministic byte rendering written to disk.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = self.to_json().render_pretty();
        out.push('\n');
        out
    }

    /// The report's file name (`BENCH_e01.json`).
    #[must_use]
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.exp)
    }

    /// Writes `BENCH_<exp>.json` under `out_dir`, returning its path.
    pub fn write(&self, out_dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(out_dir)?;
        let path = out_dir.join(self.file_name());
        std::fs::write(&path, self.render())?;
        Ok(path)
    }
}

/// Writes the `BENCH_<exp>.timing.json` sidecar: jobs, cache traffic and
/// the wall-clock metrics snapshot. Deliberately separate — this is the
/// only artifact allowed to differ run-to-run.
pub fn write_timing_sidecar(
    out_dir: &Path,
    exp: &str,
    jobs: usize,
    stats: RunStats,
    wall_s: f64,
    metrics: &MetricsSnapshot,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join(format!("BENCH_{exp}.timing.json"));
    let mut out = String::from("{\"jobs\":");
    out.push_str(&jobs.to_string());
    out.push_str(",\"cache_hits\":");
    out.push_str(&stats.hits.to_string());
    out.push_str(",\"cache_misses\":");
    out.push_str(&stats.misses.to_string());
    out.push_str(",\"wall_s\":");
    curtain_telemetry::json::write_f64(wall_s, &mut out);
    out.push_str(",\"metrics\":");
    out.push_str(&metrics.to_json());
    out.push_str("}\n");
    std::fs::write(&path, out)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> SweepReport {
        let points = vec![
            Params::new().with("k", 6i64),
            Params::new().with("k", 12i64),
        ];
        let seeds = [1u64, 2];
        let cells = vec![
            Measurement::new().with("y", 10.0),
            Measurement::new().with("y", 14.0),
            Measurement::new().with("y", 30.0),
            Measurement::new().with("y", 30.0),
        ];
        SweepReport::aggregate("toy", "toy sweep", "v1", &points, &seeds, &cells)
    }

    #[test]
    fn aggregate_groups_by_point_and_computes_stats() {
        let report = sample_report();
        assert_eq!(report.points.len(), 2);
        let first = &report.points[0].metrics["y"];
        assert_eq!(first.n, 2);
        assert!((first.mean - 12.0).abs() < 1e-12);
        assert!((first.min - 10.0).abs() < 1e-12);
        assert!((first.max - 14.0).abs() < 1e-12);
        assert!(first.ci95 > 0.0);
        let second = &report.points[1].metrics["y"];
        assert_eq!(second.std_dev, 0.0);
        assert_eq!(second.ci95, 0.0);
        assert_eq!(report.points[1].mean("y"), Some(30.0));
        assert_eq!(report.points[1].mean("absent"), None);
    }

    #[test]
    fn render_is_deterministic_and_parseable() {
        let a = sample_report().render();
        let b = sample_report().render();
        assert_eq!(a, b);
        let doc = curtain_telemetry::json::parse_document(&a).unwrap();
        assert_eq!(doc.get("schema").and_then(JsonValue::as_i64), Some(1));
        assert_eq!(doc.get("exp").and_then(JsonValue::as_str), Some("toy"));
        assert_eq!(doc.get("points").and_then(JsonValue::as_array).map(|a| a.len()), Some(2));
    }

    #[test]
    fn write_emits_named_files() {
        let dir = std::env::temp_dir()
            .join(format!("curtain-lab-report-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let report = sample_report();
        let path = report.write(&dir).unwrap();
        assert!(path.ends_with("BENCH_toy.json"));
        assert_eq!(std::fs::read_to_string(&path).unwrap(), report.render());

        let metrics = curtain_telemetry::MetricsRegistry::new();
        metrics.histogram("cell_wall_ms", 2.0);
        let sidecar = write_timing_sidecar(
            &dir,
            "toy",
            4,
            RunStats { hits: 1, misses: 3 },
            0.25,
            &metrics.snapshot(),
        )
        .unwrap();
        let text = std::fs::read_to_string(&sidecar).unwrap();
        assert!(text.contains("\"jobs\":4"), "{text}");
        assert!(text.contains("\"cache_hits\":1"), "{text}");
        assert!(text.contains("cell_wall_ms"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn aggregate_rejects_ragged_matrices() {
        let _ = SweepReport::aggregate("toy", "t", "v", &[Params::new()], &[1, 2], &[]);
    }
}
