//! Experiment orchestration and claim regression for the curtain
//! evaluation.
//!
//! The paper's evaluation *is* its theorem suite: Theorem 4's steady-state
//! defect bound, Theorem 5's collapse-time scaling, Lemmas 6/7's drift —
//! each reproduced by one `curtain-bench` experiment. This crate turns
//! those experiments from serial table-printers into **sweeps**: typed
//! parameter grids executed cell-by-cell on a work-stealing pool, cached
//! on disk, summarized as machine-readable `BENCH_<exp>.json` reports,
//! and *gated* — `lab check` exits non-zero when a measured curve stops
//! satisfying the paper's bounds.
//!
//! The moving parts:
//!
//! * [`Sweep`] — an experiment: a [`grid::ParamGrid`] of typed parameter
//!   points, a deterministic `run(params, seed) → Measurement` cell
//!   function, and zero or more [`claims::Claim`] checks over the
//!   aggregated curves;
//! * [`pool`] — executes the (point × seed) cell matrix on a crossbeam
//!   work-stealing pool. Cells carry their own seeds and share nothing,
//!   so results are **byte-identical at any `--jobs` count**;
//! * [`cache`] — a content-addressed on-disk JSON store keyed by
//!   (experiment, params, seed, code-salt): interrupted or repeated
//!   sweeps resume as cache hits;
//! * [`report`] — per-point mean/CI95 summaries written as
//!   `BENCH_<exp>.json` (deterministic bytes) plus a `.timing.json`
//!   sidecar with the wall-clock histogram (via `curtain-telemetry`);
//! * [`claims`] — bound/monotonicity/predicate checks over the summary,
//!   the regression gate of `lab check`;
//! * [`cli`] — the `lab run` / `lab check` / `lab list` command line,
//!   plus [`trace_cmd`]: `lab trace`, the cross-process trace stitcher;
//! * [`experiments`] — the registry wiring e01/e03/e04/e05's hoisted
//!   measurement cores (`curtain_bench::exp`) into sweeps.
//!
//! # Determinism contract
//!
//! A cell's measurement must depend only on `(params, seed)`. Everything
//! downstream preserves that: results are collected by cell index (not
//! completion order), aggregation maps are `BTreeMap`s, and floats are
//! rendered by `curtain-telemetry`'s canonical writer — so the same grid
//! and seeds produce the same `BENCH_<exp>.json` bytes no matter how many
//! workers ran the sweep or how the cells interleaved. Wall-clock data is
//! quarantined in the `.timing.json` sidecar, which is the *only*
//! nondeterministic artifact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cell;
pub mod claims;
pub mod cli;
pub mod experiments;
pub mod grid;
pub mod pool;
pub mod report;
pub mod trace_cmd;

use cell::Measurement;
use claims::Claim;
use grid::{ParamGrid, Params};

/// How large a sweep to run: the CLI's `--scale` / `--quick` knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Profile {
    /// Sample-count multiplier (≥ 1), the lab-side `CURTAIN_SCALE`.
    pub scale: u64,
    /// True for the scaled-down smoke grid (CI's `lab-smoke` job).
    pub quick: bool,
}

impl Default for Profile {
    fn default() -> Self {
        Profile { scale: 1, quick: false }
    }
}

/// The default seed set: `count` consecutive seeds from a fixed base, so
/// a re-run (or a `--seeds` override with the same count) hits the cache.
#[must_use]
pub fn default_seeds(count: u64) -> Vec<u64> {
    (0..count).map(|i| 0x5EED_0000 + i).collect()
}

/// One experiment, seen as a sweep.
///
/// Implementations must keep `run` deterministic in `(params, seed)` —
/// no global state, no wall clock, no thread identity — and bump
/// [`Sweep::code_salt`] whenever the measurement's meaning changes, which
/// invalidates cached cells without wiping unrelated experiments.
pub trait Sweep: Send + Sync {
    /// Short stable identifier (`"e01"`), used in file names and the CLI.
    fn id(&self) -> &'static str;

    /// One-line description of the claim under test.
    fn title(&self) -> &'static str;

    /// Cache-invalidation token: part of every cell's cache key. Bump it
    /// when the measurement code changes meaning.
    fn code_salt(&self) -> &'static str;

    /// The parameter points of this sweep under `profile`.
    fn grid(&self, profile: Profile) -> ParamGrid;

    /// The seeds every point is measured at (cells = points × seeds).
    fn seeds(&self, profile: Profile) -> Vec<u64> {
        default_seeds(if profile.quick { 2 } else { 3 })
    }

    /// Measures one cell. Must be deterministic in `(params, seed)`.
    fn run(&self, params: &Params, seed: u64) -> Measurement;

    /// The regression gate: claims checked against the aggregated sweep.
    fn claims(&self) -> Vec<Box<dyn Claim>> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_seeds_are_stable_and_consecutive() {
        assert_eq!(default_seeds(3), vec![0x5EED_0000, 0x5EED_0001, 0x5EED_0002]);
        assert!(default_seeds(0).is_empty());
    }

    #[test]
    fn default_profile_is_full_scale_one() {
        assert_eq!(Profile::default(), Profile { scale: 1, quick: false });
    }
}
