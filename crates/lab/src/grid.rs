//! Typed parameter points and grids.
//!
//! A [`Params`] is a named, ordered map of scalar values — the identity
//! of one measurement cell (together with its seed). Its canonical JSON
//! rendering is the cache key's content and the report's grouping key, so
//! everything here is `BTreeMap`-ordered and renders deterministically.

use std::collections::BTreeMap;
use std::fmt;

use curtain_telemetry::json::JsonValue;

/// One scalar parameter value.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// An integer parameter (sizes, counts, degrees).
    Int(i64),
    /// A real parameter (probabilities, fractions).
    Float(f64),
    /// A categorical parameter (scenario or model labels).
    Str(String),
}

impl ParamValue {
    /// The integer value, if this is an `Int`.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            ParamValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The numeric value (`Int` widened), if numeric.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ParamValue::Float(f) => Some(*f),
            ParamValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The label, if this is a `Str`.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ParamValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The JSON form (used in cache entries and reports).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        match self {
            ParamValue::Int(i) => JsonValue::Int(*i),
            ParamValue::Float(f) => JsonValue::Float(*f),
            ParamValue::Str(s) => JsonValue::Str(s.clone()),
        }
    }

    /// Parses the JSON form back.
    #[must_use]
    pub fn from_json(value: &JsonValue) -> Option<Self> {
        match value {
            JsonValue::Int(i) => Some(ParamValue::Int(*i)),
            JsonValue::Float(f) => Some(ParamValue::Float(*f)),
            JsonValue::Str(s) => Some(ParamValue::Str(s.clone())),
            _ => None,
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Int(i) => write!(f, "{i}"),
            ParamValue::Float(v) => write!(f, "{v}"),
            ParamValue::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for ParamValue {
    fn from(v: i64) -> Self {
        ParamValue::Int(v)
    }
}

impl From<usize> for ParamValue {
    fn from(v: usize) -> Self {
        ParamValue::Int(v as i64)
    }
}

impl From<f64> for ParamValue {
    fn from(v: f64) -> Self {
        ParamValue::Float(v)
    }
}

impl From<&str> for ParamValue {
    fn from(v: &str) -> Self {
        ParamValue::Str(v.to_owned())
    }
}

/// One parameter point: named scalar values, key-ordered.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Params {
    fields: BTreeMap<String, ParamValue>,
}

impl Params {
    /// An empty point.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style insertion.
    #[must_use]
    pub fn with(mut self, name: &str, value: impl Into<ParamValue>) -> Self {
        self.fields.insert(name.to_owned(), value.into());
        self
    }

    /// Inserts or replaces a value.
    pub fn set(&mut self, name: &str, value: impl Into<ParamValue>) {
        self.fields.insert(name.to_owned(), value.into());
    }

    /// Looks up a value.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&ParamValue> {
        self.fields.get(name)
    }

    /// The integer parameter `name`.
    ///
    /// # Panics
    ///
    /// Panics when absent or non-integer — a sweep wiring bug: the grid
    /// and the cell function disagree about the parameter schema.
    #[must_use]
    pub fn int(&self, name: &str) -> i64 {
        self.get(name)
            .and_then(ParamValue::as_i64)
            .unwrap_or_else(|| panic!("missing integer param {name:?} in {self}"))
    }

    /// The integer parameter `name` as a `usize`.
    ///
    /// # Panics
    ///
    /// Panics when absent, non-integer, or negative (see [`Params::int`]).
    #[must_use]
    pub fn usize(&self, name: &str) -> usize {
        usize::try_from(self.int(name))
            .unwrap_or_else(|_| panic!("param {name:?} is negative in {self}"))
    }

    /// The numeric parameter `name`.
    ///
    /// # Panics
    ///
    /// Panics when absent or non-numeric (see [`Params::int`]).
    #[must_use]
    pub fn float(&self, name: &str) -> f64 {
        self.get(name)
            .and_then(ParamValue::as_f64)
            .unwrap_or_else(|| panic!("missing numeric param {name:?} in {self}"))
    }

    /// The categorical parameter `name`.
    ///
    /// # Panics
    ///
    /// Panics when absent or non-string (see [`Params::int`]).
    #[must_use]
    pub fn str(&self, name: &str) -> &str {
        self.get(name)
            .and_then(ParamValue::as_str)
            .unwrap_or_else(|| panic!("missing string param {name:?} in {self}"))
    }

    /// Iterates `(name, value)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ParamValue)> {
        self.fields.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The JSON object form.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(self.fields.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }

    /// Parses the JSON object form back.
    #[must_use]
    pub fn from_json(value: &JsonValue) -> Option<Self> {
        let fields = value.as_object()?;
        let mut params = Params::new();
        for (name, v) in fields {
            params.fields.insert(name.clone(), ParamValue::from_json(v)?);
        }
        Some(params)
    }

    /// The canonical single-line rendering — the content half of a cell's
    /// cache key, and the grouping key claims use. Same point ⇒ same
    /// string, always.
    #[must_use]
    pub fn canonical(&self) -> String {
        self.to_json().render()
    }

    /// The point with `name` removed — the grouping key "all parameters
    /// but this axis" used by monotonicity claims.
    #[must_use]
    pub fn without(&self, name: &str) -> Params {
        let mut out = self.clone();
        out.fields.remove(name);
        out
    }
}

impl fmt::Display for Params {
    /// Human form: `d=2 k=32 p=0.02`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (name, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{name}={value}")?;
        }
        Ok(())
    }
}

/// An ordered list of parameter points.
///
/// Usually built as a cartesian product of axes, but arbitrary point
/// lists compose via [`ParamGrid::from_points`] and [`ParamGrid::merge`]
/// (e.g. e01's d×p table plus its N sweep). Point order is meaningful
/// and preserved into reports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParamGrid {
    points: Vec<Params>,
}

impl ParamGrid {
    /// The cartesian product of `axes`, later axes varying fastest.
    #[must_use]
    pub fn cartesian(axes: &[(&str, Vec<ParamValue>)]) -> Self {
        let mut points = vec![Params::new()];
        for (name, values) in axes {
            let mut next = Vec::with_capacity(points.len() * values.len());
            for point in &points {
                for value in values {
                    next.push(point.clone().with(name, value.clone()));
                }
            }
            points = next;
        }
        ParamGrid { points }
    }

    /// A grid from explicit points.
    #[must_use]
    pub fn from_points(points: Vec<Params>) -> Self {
        ParamGrid { points }
    }

    /// Appends another grid's points after this one's.
    #[must_use]
    pub fn merge(mut self, other: ParamGrid) -> Self {
        self.points.extend(other.points);
        self
    }

    /// The points, in sweep order.
    #[must_use]
    pub fn points(&self) -> &[Params] {
        &self.points
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the grid has no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Shorthand for an integer axis.
#[must_use]
pub fn ints(values: &[i64]) -> Vec<ParamValue> {
    values.iter().map(|&v| ParamValue::Int(v)).collect()
}

/// Shorthand for a float axis.
#[must_use]
pub fn floats(values: &[f64]) -> Vec<ParamValue> {
    values.iter().map(|&v| ParamValue::Float(v)).collect()
}

/// Shorthand for a categorical axis.
#[must_use]
pub fn labels(values: &[&str]) -> Vec<ParamValue> {
    values.iter().map(|&v| ParamValue::Str(v.to_owned())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cartesian_orders_later_axes_fastest() {
        let grid = ParamGrid::cartesian(&[("d", ints(&[2, 3])), ("p", floats(&[0.1, 0.2]))]);
        assert_eq!(grid.len(), 4);
        let canon: Vec<String> = grid.points().iter().map(Params::canonical).collect();
        assert_eq!(canon[0], r#"{"d":2,"p":0.1}"#);
        assert_eq!(canon[1], r#"{"d":2,"p":0.2}"#);
        assert_eq!(canon[2], r#"{"d":3,"p":0.1}"#);
        assert_eq!(canon[3], r#"{"d":3,"p":0.2}"#);
    }

    #[test]
    fn canonical_is_key_sorted_and_stable() {
        let a = Params::new().with("z", 1i64).with("a", 0.5).with("m", "x");
        let b = Params::new().with("a", 0.5).with("m", "x").with("z", 1i64);
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(a.canonical(), r#"{"a":0.5,"m":"x","z":1}"#);
        assert_eq!(a.to_string(), "a=0.5 m=x z=1");
    }

    #[test]
    fn params_json_round_trip() {
        let p = Params::new().with("k", 32usize).with("p", 0.02).with("model", "chain");
        let back = Params::from_json(&p.to_json()).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.usize("k"), 32);
        assert_eq!(back.float("p"), 0.02);
        assert_eq!(back.str("model"), "chain");
        // Ints widen to floats on demand.
        assert_eq!(back.float("k"), 32.0);
    }

    #[test]
    fn merge_preserves_order_and_without_drops_axis() {
        let g = ParamGrid::cartesian(&[("k", ints(&[6, 12]))])
            .merge(ParamGrid::from_points(vec![Params::new().with("k", 24i64)]));
        assert_eq!(g.len(), 3);
        assert_eq!(g.points()[2].int("k"), 24);
        let p = Params::new().with("k", 6i64).with("d", 2i64);
        assert_eq!(p.without("k").canonical(), r#"{"d":2}"#);
    }

    #[test]
    #[should_panic(expected = "missing integer param")]
    fn typed_access_panics_on_schema_mismatch() {
        let _ = Params::new().with("p", 0.5).int("k");
    }
}
