//! Simulated time: integer ticks.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in ticks since the simulation epoch.
///
/// One tick is the unit-bandwidth quantum: a unit-bandwidth thread carries
/// (at most) one packet per tick. All scheduling is integer, so runs are
/// exactly reproducible.
///
/// # Example
///
/// ```
/// use curtain_simnet::SimTime;
///
/// let t = SimTime::ZERO + 5;
/// assert_eq!(t.ticks(), 5);
/// assert_eq!(t - SimTime::ZERO, 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from raw ticks.
    #[must_use]
    pub const fn from_ticks(t: u64) -> Self {
        SimTime(t)
    }

    /// Ticks since the epoch.
    #[must_use]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// The immediately following tick.
    #[must_use]
    pub const fn next(self) -> Self {
        SimTime(self.0 + 1)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for SimTime {
    type Output = u64;

    fn sub(self, rhs: SimTime) -> u64 {
        self.0
            .checked_sub(rhs.0)
            .expect("SimTime subtraction underflow")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ticks(10);
        assert_eq!(t + 5, SimTime::from_ticks(15));
        assert_eq!(t.next(), SimTime::from_ticks(11));
        assert_eq!(SimTime::from_ticks(15) - t, 5);
        let mut u = t;
        u += 3;
        assert_eq!(u.ticks(), 13);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = SimTime::ZERO - SimTime::from_ticks(1);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::ZERO < SimTime::from_ticks(1));
        assert_eq!(SimTime::from_ticks(7).to_string(), "t7");
    }
}
