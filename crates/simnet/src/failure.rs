//! Ergodic failure models: iid and bursty packet loss.
//!
//! §2 distinguishes *ergodic* failures — "a temporary, unannounced outage
//! such as packet loss, network congestion, or other processes using the
//! communication link" — from non-ergodic crashes. Links already support
//! iid loss; this module adds the classic two-state **Gilbert–Elliott**
//! bursty-loss channel and a plain Bernoulli process for host-level events,
//! so experiments can model congestion episodes rather than memoryless
//! drops.

use rand::{Rng, RngExt as _};

/// A memoryless per-event coin with probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates the process.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        Bernoulli { p }
    }

    /// The event probability.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Samples one event.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.p > 0.0 && rng.random_bool(self.p)
    }
}

/// The two-state Gilbert–Elliott loss channel.
///
/// In the *good* state packets are lost with probability `loss_good`; in
/// the *bad* state (a congestion episode) with `loss_bad`. Transitions
/// happen per packet with probabilities `p_good_to_bad` / `p_bad_to_good`.
///
/// # Example
///
/// ```
/// use curtain_simnet::failure::GilbertElliott;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut ch = GilbertElliott::new(0.01, 0.5, 0.02, 0.2);
/// let losses = (0..1000).filter(|_| ch.sample_loss(&mut rng)).count();
/// assert!(losses > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    loss_good: f64,
    loss_bad: f64,
    p_good_to_bad: f64,
    p_bad_to_good: f64,
    in_bad: bool,
}

impl GilbertElliott {
    /// Creates the channel, starting in the good state.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    #[must_use]
    pub fn new(loss_good: f64, loss_bad: f64, p_good_to_bad: f64, p_bad_to_good: f64) -> Self {
        for (name, p) in [
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} out of range");
        }
        GilbertElliott { loss_good, loss_bad, p_good_to_bad, p_bad_to_good, in_bad: false }
    }

    /// True iff currently in the bad (bursty) state.
    #[must_use]
    pub fn in_bad_state(&self) -> bool {
        self.in_bad
    }

    /// Steps the channel for one packet: transitions state, then samples
    /// whether the packet is lost.
    pub fn sample_loss<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        let flip = if self.in_bad { self.p_bad_to_good } else { self.p_good_to_bad };
        if flip > 0.0 && rng.random_bool(flip) {
            self.in_bad = !self.in_bad;
        }
        let p = if self.in_bad { self.loss_bad } else { self.loss_good };
        p > 0.0 && rng.random_bool(p)
    }

    /// Long-run stationary loss probability.
    #[must_use]
    pub fn stationary_loss(&self) -> f64 {
        let denom = self.p_good_to_bad + self.p_bad_to_good;
        if denom == 0.0 {
            return self.loss_good; // never leaves the initial state
        }
        let pi_bad = self.p_good_to_bad / denom;
        (1.0 - pi_bad) * self.loss_good + pi_bad * self.loss_bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bernoulli_rates() {
        let mut rng = StdRng::seed_from_u64(1);
        let b = Bernoulli::new(0.25);
        let hits = (0..20_000).filter(|_| b.sample(&mut rng)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        assert!(!Bernoulli::new(0.0).sample(&mut rng));
        assert!(Bernoulli::new(1.0).sample(&mut rng));
    }

    #[test]
    fn gilbert_elliott_matches_stationary_loss() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ch = GilbertElliott::new(0.01, 0.5, 0.05, 0.2);
        let n = 200_000;
        let losses = (0..n).filter(|_| ch.sample_loss(&mut rng)).count();
        let rate = losses as f64 / n as f64;
        let expect = ch.stationary_loss();
        assert!(
            (rate - expect).abs() < 0.02,
            "observed {rate:.4}, stationary {expect:.4}"
        );
    }

    #[test]
    fn gilbert_elliott_bursts_are_correlated() {
        // Consecutive-loss probability should exceed the square of the
        // marginal rate (positive correlation), unlike iid loss.
        let mut rng = StdRng::seed_from_u64(3);
        let mut ch = GilbertElliott::new(0.0, 0.9, 0.02, 0.1);
        let n = 200_000;
        let samples: Vec<bool> = (0..n).map(|_| ch.sample_loss(&mut rng)).collect();
        let marginal = samples.iter().filter(|&&l| l).count() as f64 / n as f64;
        let pairs = samples.windows(2).filter(|w| w[0] && w[1]).count() as f64 / (n - 1) as f64;
        assert!(
            pairs > 1.5 * marginal * marginal,
            "no burstiness: pairs {pairs:.5} vs iid {:.5}",
            marginal * marginal
        );
    }

    #[test]
    fn stationary_loss_degenerate_chain() {
        let ch = GilbertElliott::new(0.1, 0.9, 0.0, 0.0);
        assert!((ch.stationary_loss() - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn bernoulli_rejects_bad_p() {
        let _ = Bernoulli::new(1.5);
    }

    #[test]
    #[should_panic(expected = "loss_bad out of range")]
    fn gilbert_rejects_bad_p() {
        let _ = GilbertElliott::new(0.0, 1.5, 0.0, 0.0);
    }
}
