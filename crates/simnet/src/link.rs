//! Unidirectional links: bandwidth, latency, loss.

use rand::{Rng, RngExt as _};

use crate::time::SimTime;

/// Identifies a link within a [`crate::World`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

/// Static link parameters.
///
/// A unit-bandwidth overlay thread maps to `capacity_per_tick = 1`; the
/// paper's ergodic failures (packet loss, congestion) map to `loss > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Delivery delay in ticks (≥ 1 to keep causality strict).
    pub latency: u64,
    /// Packets accepted per tick; further sends in the same tick are
    /// dropped (tail-drop, counted separately from loss).
    pub capacity_per_tick: u32,
    /// Probability that an accepted packet is lost in flight.
    pub loss: f64,
    /// Maximum extra delivery delay; each packet gets a uniform extra
    /// `0..=jitter` ticks (queueing-delay variation).
    pub jitter: u64,
}

impl LinkConfig {
    /// A loss-free link with unit capacity and the given latency.
    ///
    /// # Panics
    ///
    /// Panics if `latency == 0`.
    #[must_use]
    pub fn reliable(latency: u64) -> Self {
        assert!(latency > 0, "latency must be at least one tick");
        LinkConfig { latency, capacity_per_tick: 1, loss: 0.0, jitter: 0 }
    }

    /// Sets the maximum jitter (uniform extra delay in `0..=jitter`).
    #[must_use]
    pub fn with_jitter(mut self, jitter: u64) -> Self {
        self.jitter = jitter;
        self
    }

    /// Sets the loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is outside `[0, 1)`.
    #[must_use]
    pub fn with_loss(mut self, loss: f64) -> Self {
        assert!((0.0..1.0).contains(&loss), "loss must be in [0, 1)");
        self.loss = loss;
        self
    }

    /// Sets the per-tick capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn with_capacity(mut self, capacity: u32) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        self.capacity_per_tick = capacity;
        self
    }
}

/// What happened to an offered packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Accepted; will arrive at the given time.
    Scheduled(SimTime),
    /// Accepted by the link but lost in flight.
    Lost,
    /// Rejected: the link already carried `capacity_per_tick` packets this
    /// tick.
    CapacityExceeded,
}

/// Runtime state of a link.
#[derive(Debug, Clone)]
pub struct Link {
    config: LinkConfig,
    from: u32,
    to: u32,
    /// Tick of the last accepted send and how many were accepted in it.
    window: (SimTime, u32),
}

impl Link {
    pub(crate) fn new(from: u32, to: u32, config: LinkConfig) -> Self {
        Link { config, from, to, window: (SimTime::ZERO, 0) }
    }

    /// Sending endpoint (host index).
    #[must_use]
    pub fn from(&self) -> u32 {
        self.from
    }

    /// Receiving endpoint (host index).
    #[must_use]
    pub fn to(&self) -> u32 {
        self.to
    }

    /// The static configuration.
    #[must_use]
    pub fn config(&self) -> LinkConfig {
        self.config
    }

    /// Offers a packet at time `now`; consumes capacity and samples loss.
    pub fn offer<R: Rng + ?Sized>(&mut self, now: SimTime, rng: &mut R) -> SendOutcome {
        if self.window.0 == now {
            if self.window.1 >= self.config.capacity_per_tick {
                return SendOutcome::CapacityExceeded;
            }
            self.window.1 += 1;
        } else {
            self.window = (now, 1);
        }
        if self.config.loss > 0.0 && rng.random_bool(self.config.loss) {
            return SendOutcome::Lost;
        }
        let extra = if self.config.jitter > 0 {
            rng.random_range(0..=self.config.jitter)
        } else {
            0
        };
        SendOutcome::Scheduled(now + self.config.latency + extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn capacity_enforced_per_tick() {
        let mut link = Link::new(0, 1, LinkConfig::reliable(2).with_capacity(2));
        let mut rng = StdRng::seed_from_u64(1);
        let now = SimTime::from_ticks(10);
        assert_eq!(link.offer(now, &mut rng), SendOutcome::Scheduled(now + 2));
        assert_eq!(link.offer(now, &mut rng), SendOutcome::Scheduled(now + 2));
        assert_eq!(link.offer(now, &mut rng), SendOutcome::CapacityExceeded);
        // Capacity refreshes next tick.
        let later = now.next();
        assert_eq!(link.offer(later, &mut rng), SendOutcome::Scheduled(later + 2));
    }

    #[test]
    fn loss_rate_is_sampled() {
        let mut link = Link::new(0, 1, LinkConfig::reliable(1).with_loss(0.3).with_capacity(u32::MAX));
        let mut rng = StdRng::seed_from_u64(2);
        let mut lost = 0;
        let trials = 10_000;
        for i in 0..trials {
            match link.offer(SimTime::from_ticks(i), &mut rng) {
                SendOutcome::Lost => lost += 1,
                SendOutcome::Scheduled(_) => {}
                SendOutcome::CapacityExceeded => panic!("capacity unlimited"),
            }
        }
        let rate = lost as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.03, "observed loss {rate}");
    }

    #[test]
    fn reliable_link_never_loses() {
        let mut link = Link::new(0, 1, LinkConfig::reliable(3));
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..100 {
            let t = SimTime::from_ticks(i * 2);
            assert_eq!(link.offer(t, &mut rng), SendOutcome::Scheduled(t + 3));
        }
    }

    #[test]
    fn jitter_spreads_delivery_times() {
        let mut link = Link::new(0, 1, LinkConfig::reliable(2).with_jitter(4).with_capacity(u32::MAX));
        let mut rng = StdRng::seed_from_u64(9);
        let now = SimTime::from_ticks(100);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            match link.offer(now, &mut rng) {
                SendOutcome::Scheduled(at) => {
                    let delay = at - now;
                    assert!((2..=6).contains(&delay), "delay {delay} out of range");
                    seen.insert(delay);
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert_eq!(seen.len(), 5, "all jitter values should occur");
    }

    #[test]
    #[should_panic(expected = "latency must be at least one tick")]
    fn zero_latency_rejected() {
        let _ = LinkConfig::reliable(0);
    }

    #[test]
    #[should_panic(expected = "loss must be in [0, 1)")]
    fn invalid_loss_rejected() {
        let _ = LinkConfig::reliable(1).with_loss(1.0);
    }
}
