//! The simulation driver: hosts, links, and the tick loop.

use curtain_telemetry::{DropReason, Event, SharedRecorder};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::event::EventQueue;
use crate::link::{Link, LinkConfig, LinkId, SendOutcome};
use crate::time::SimTime;

/// Identifies a host within a [`World`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub u32);

/// Traffic counters for a single link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Sending host index.
    pub from: u32,
    /// Receiving host index.
    pub to: u32,
    /// Packets offered on this link.
    pub offered: u64,
    /// Packets delivered over this link.
    pub delivered: u64,
    /// Packets lost in flight on this link.
    pub lost: u64,
    /// Packets tail-dropped at this link's capacity limit.
    pub capacity_drops: u64,
    /// Bytes offered on this link (0 unless a message sizer is installed
    /// via [`World::set_message_sizer`]).
    pub bytes_offered: u64,
    /// Bytes actually delivered over this link.
    pub bytes_delivered: u64,
}

impl LinkStats {
    /// Packets dropped on this link for any reason (loss + capacity).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.lost + self.capacity_drops
    }
}

/// Aggregate traffic counters, plus a per-link breakdown.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Packets offered to links.
    pub offered: u64,
    /// Packets delivered to their destination actor.
    pub delivered: u64,
    /// Packets lost in flight (ergodic loss).
    pub lost: u64,
    /// Packets rejected because the link was at capacity this tick.
    pub capacity_drops: u64,
    /// Bytes offered to links (0 unless a message sizer is installed via
    /// [`World::set_message_sizer`]).
    pub bytes_offered: u64,
    /// Bytes delivered to destination actors.
    pub bytes_delivered: u64,
    /// Per-link counters, indexed by [`LinkId`] in creation order.
    pub per_link: Vec<LinkStats>,
}

impl NetStats {
    /// Packets dropped for any reason (in-flight loss + capacity tail-drop).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.lost + self.capacity_drops
    }
}

/// Per-host behaviour. The world calls [`Actor::on_tick`] once per tick and
/// [`Actor::on_message`] for each delivered packet.
pub trait Actor<M> {
    /// A packet arrived.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: HostId, msg: M);
    /// One tick of local time elapsed (send window: a unit-bandwidth stream
    /// sends one packet per tick here).
    fn on_tick(&mut self, ctx: &mut Context<'_, M>);
}

/// What an actor may do while being driven: inspect time and send packets.
pub struct Context<'a, M> {
    now: SimTime,
    self_id: HostId,
    links: &'a mut [Link],
    queue: &'a mut EventQueue<Delivery<M>>,
    rng: &'a mut StdRng,
    stats: &'a mut NetStats,
    recorder: &'a SharedRecorder,
    sizer: Option<fn(&M) -> usize>,
}

impl<M> Context<'_, M> {
    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the actor being driven.
    #[must_use]
    pub fn self_id(&self) -> HostId {
        self.self_id
    }

    /// Offers `msg` on `link`. Returns `true` iff the packet was accepted
    /// (it may still be lost in flight).
    ///
    /// # Panics
    ///
    /// Panics if the link does not originate at the calling actor — actors
    /// can only transmit on their own uplinks.
    pub fn send(&mut self, link: LinkId, msg: M) -> bool {
        let l = &mut self.links[link.0 as usize];
        assert_eq!(
            l.from(),
            self.self_id.0,
            "actor {} cannot send on link {:?} owned by host {}",
            self.self_id.0,
            link,
            l.from()
        );
        let size = self.sizer.map_or(0, |f| f(&msg) as u64);
        self.stats.offered += 1;
        self.stats.bytes_offered += size;
        let per_link = &mut self.stats.per_link[link.0 as usize];
        per_link.offered += 1;
        per_link.bytes_offered += size;
        match l.offer(self.now, self.rng) {
            SendOutcome::Scheduled(at) => {
                let delivery =
                    Delivery { to: HostId(l.to()), from: self.self_id, link: Some(link), size, msg };
                self.queue.push(at, delivery);
                true
            }
            SendOutcome::Lost => {
                self.stats.lost += 1;
                per_link.lost += 1;
                self.recorder.record(&Event::LinkDrop {
                    link: link.0,
                    from: l.from(),
                    to: l.to(),
                    reason: DropReason::Loss,
                });
                true
            }
            SendOutcome::CapacityExceeded => {
                self.stats.capacity_drops += 1;
                per_link.capacity_drops += 1;
                self.recorder.record(&Event::LinkDrop {
                    link: link.0,
                    from: l.from(),
                    to: l.to(),
                    reason: DropReason::Capacity,
                });
                false
            }
        }
    }

    /// The telemetry handle (null unless installed on the world); actors
    /// can record their own protocol events through it.
    #[must_use]
    pub fn recorder(&self) -> &SharedRecorder {
        self.recorder
    }

    /// The world's RNG (for randomized actor decisions; deterministic under
    /// a fixed world seed).
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }
}

struct Delivery<M> {
    to: HostId,
    from: HostId,
    /// Link the packet travelled on (`None` for [`World::inject`]).
    link: Option<LinkId>,
    /// Byte size under the world's sizer at send time.
    size: u64,
    msg: M,
}

/// A network of actors connected by links, driven tick by tick.
///
/// Within one tick the order is: (1) deliver every packet due at this time,
/// in schedule order; (2) give each actor its `on_tick`, in host order.
/// Both orders are deterministic.
pub struct World<A, M> {
    time: SimTime,
    actors: Vec<Option<A>>,
    links: Vec<Link>,
    queue: EventQueue<Delivery<M>>,
    rng: StdRng,
    stats: NetStats,
    recorder: SharedRecorder,
    sizer: Option<fn(&M) -> usize>,
}

impl<A: Actor<M>, M> World<A, M> {
    /// Creates an empty world with a deterministic RNG seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        World {
            time: SimTime::ZERO,
            actors: Vec::new(),
            links: Vec::new(),
            queue: EventQueue::new(),
            rng: StdRng::seed_from_u64(seed),
            stats: NetStats::default(),
            recorder: SharedRecorder::null(),
            sizer: None,
        }
    }

    /// Installs a telemetry recorder. [`World::tick`] drives the recorder's
    /// manual clock with the simulated time, so every event recorded through
    /// it — by the world (link drops) or by actors via
    /// [`Context::recorder`] — is stamped in sim-ticks.
    pub fn set_recorder(&mut self, recorder: SharedRecorder) {
        recorder.set_time(self.time.ticks());
        self.recorder = recorder;
    }

    /// The world's telemetry handle (null unless installed).
    #[must_use]
    pub fn recorder(&self) -> &SharedRecorder {
        &self.recorder
    }

    /// Installs a message sizer used to maintain the byte counters in
    /// [`NetStats`]. Without one, byte counters stay 0 (the message type
    /// `M` is opaque to the world).
    pub fn set_message_sizer(&mut self, sizer: fn(&M) -> usize) {
        self.sizer = Some(sizer);
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Traffic counters so far (aggregate + per-link breakdown).
    #[must_use]
    pub fn stats(&self) -> NetStats {
        self.stats.clone()
    }

    /// Number of hosts.
    #[must_use]
    pub fn host_count(&self) -> usize {
        self.actors.len()
    }

    /// Adds a host.
    pub fn add_actor(&mut self, actor: A) -> HostId {
        self.actors.push(Some(actor));
        HostId(self.actors.len() as u32 - 1)
    }

    /// Adds a unidirectional link.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint does not exist.
    pub fn add_link(&mut self, from: HostId, to: HostId, config: LinkConfig) -> LinkId {
        assert!((from.0 as usize) < self.actors.len(), "unknown sender");
        assert!((to.0 as usize) < self.actors.len(), "unknown receiver");
        self.links.push(Link::new(from.0, to.0, config));
        self.stats.per_link.push(LinkStats { from: from.0, to: to.0, ..LinkStats::default() });
        LinkId(self.links.len() as u32 - 1)
    }

    /// Read access to a link.
    ///
    /// # Panics
    ///
    /// Panics if the link does not exist.
    #[must_use]
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// Read access to an actor.
    ///
    /// # Panics
    ///
    /// Panics if the host does not exist (or is mid-dispatch).
    #[must_use]
    pub fn actor(&self, id: HostId) -> &A {
        self.actors[id.0 as usize].as_ref().expect("actor present")
    }

    /// Mutable access to an actor (for test setup and instrumentation).
    ///
    /// # Panics
    ///
    /// Panics if the host does not exist (or is mid-dispatch).
    pub fn actor_mut(&mut self, id: HostId) -> &mut A {
        self.actors[id.0 as usize].as_mut().expect("actor present")
    }

    /// Injects a message directly into a host's mailbox at the current time
    /// (bypassing links) — bootstrap and fault-injection hook.
    pub fn inject(&mut self, to: HostId, from: HostId, msg: M) {
        self.queue.push(self.time, Delivery { to, from, link: None, size: 0, msg });
    }

    /// Runs one tick: deliveries due now, then `on_tick` for every host.
    pub fn tick(&mut self) {
        // Keep trace timestamps in lockstep with the simulation.
        self.recorder.set_time(self.time.ticks());
        // Phase 1: deliver everything due at or before now.
        while let Some((_, d)) = self.queue.pop_due(self.time) {
            let idx = d.to.0 as usize;
            let Some(mut actor) = self.actors[idx].take() else {
                continue; // host removed mid-flight; drop silently
            };
            self.stats.delivered += 1;
            self.stats.bytes_delivered += d.size;
            if let Some(link) = d.link {
                let per_link = &mut self.stats.per_link[link.0 as usize];
                per_link.delivered += 1;
                per_link.bytes_delivered += d.size;
            }
            let mut ctx = Context {
                now: self.time,
                self_id: d.to,
                links: &mut self.links,
                queue: &mut self.queue,
                rng: &mut self.rng,
                stats: &mut self.stats,
                recorder: &self.recorder,
                sizer: self.sizer,
            };
            actor.on_message(&mut ctx, d.from, d.msg);
            self.actors[idx] = Some(actor);
        }
        // Phase 2: tick every host in deterministic order.
        for idx in 0..self.actors.len() {
            let Some(mut actor) = self.actors[idx].take() else {
                continue;
            };
            let mut ctx = Context {
                now: self.time,
                self_id: HostId(idx as u32),
                links: &mut self.links,
                queue: &mut self.queue,
                rng: &mut self.rng,
                stats: &mut self.stats,
                recorder: &self.recorder,
                sizer: self.sizer,
            };
            actor.on_tick(&mut ctx);
            self.actors[idx] = Some(actor);
        }
        self.time += 1;
    }

    /// Runs `n` ticks.
    pub fn run_ticks(&mut self, n: u64) {
        for _ in 0..n {
            self.tick();
        }
    }

    /// Runs until `pred` holds (checked after each tick) or `max_ticks`
    /// elapse. Returns `true` iff the predicate was met.
    pub fn run_until<F: FnMut(&World<A, M>) -> bool>(
        &mut self,
        max_ticks: u64,
        mut pred: F,
    ) -> bool {
        for _ in 0..max_ticks {
            self.tick();
            if pred(self) {
                return true;
            }
        }
        false
    }
}

impl<A, M> std::fmt::Debug for World<A, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("time", &self.time)
            .field("hosts", &self.actors.len())
            .field("links", &self.links.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes every received number incremented, on all out links.
    struct Echo {
        out: Vec<LinkId>,
        received: Vec<(u64, u64)>, // (time, value)
        tick_count: u64,
    }

    impl Echo {
        fn new() -> Self {
            Echo { out: Vec::new(), received: Vec::new(), tick_count: 0 }
        }
    }

    impl Actor<u64> for Echo {
        fn on_message(&mut self, ctx: &mut Context<'_, u64>, _from: HostId, msg: u64) {
            self.received.push((ctx.now().ticks(), msg));
            for &l in &self.out.clone() {
                ctx.send(l, msg + 1);
            }
        }
        fn on_tick(&mut self, _ctx: &mut Context<'_, u64>) {
            self.tick_count += 1;
        }
    }

    #[test]
    fn delivery_respects_latency() {
        let mut w: World<Echo, u64> = World::new(1);
        let a = w.add_actor(Echo::new());
        let b = w.add_actor(Echo::new());
        let ab = w.add_link(a, b, LinkConfig::reliable(3));
        w.actor_mut(a).out.push(ab);
        w.inject(a, a, 100);
        w.run_ticks(10);
        // a receives at t0 and forwards; b receives at t0+3.
        assert_eq!(w.actor(a).received, vec![(0, 100)]);
        assert_eq!(w.actor(b).received, vec![(3, 101)]);
    }

    #[test]
    fn chain_propagation_accumulates_latency() {
        let mut w: World<Echo, u64> = World::new(2);
        let hosts: Vec<HostId> = (0..5).map(|_| w.add_actor(Echo::new())).collect();
        for i in 0..4 {
            let l = w.add_link(hosts[i], hosts[i + 1], LinkConfig::reliable(2));
            w.actor_mut(hosts[i]).out.push(l);
        }
        w.inject(hosts[0], hosts[0], 0);
        w.run_ticks(20);
        assert_eq!(w.actor(hosts[4]).received, vec![(8, 4)]);
    }

    #[test]
    fn capacity_drops_are_counted() {
        struct Spammer {
            link: Option<LinkId>,
        }
        impl Actor<u64> for Spammer {
            fn on_message(&mut self, _: &mut Context<'_, u64>, _: HostId, _: u64) {}
            fn on_tick(&mut self, ctx: &mut Context<'_, u64>) {
                if let Some(l) = self.link {
                    // Three sends on a capacity-1 link: two drops per tick.
                    let ok1 = ctx.send(l, 1);
                    let ok2 = ctx.send(l, 2);
                    let ok3 = ctx.send(l, 3);
                    assert!(ok1);
                    assert!(!ok2);
                    assert!(!ok3);
                }
            }
        }
        let mut w: World<Spammer, u64> = World::new(3);
        let a = w.add_actor(Spammer { link: None });
        let b = w.add_actor(Spammer { link: None });
        let l = w.add_link(a, b, LinkConfig::reliable(1));
        w.actor_mut(a).link = Some(l);
        w.run_ticks(4);
        assert_eq!(w.stats().capacity_drops, 8);
        assert_eq!(w.stats().delivered, 3); // t1..t3 arrivals (t4 pending)
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run(seed: u64) -> (Vec<(u64, u64)>, NetStats) {
            let mut w: World<Echo, u64> = World::new(seed);
            let a = w.add_actor(Echo::new());
            let b = w.add_actor(Echo::new());
            let ab = w.add_link(a, b, LinkConfig::reliable(1).with_loss(0.5).with_capacity(64));
            w.actor_mut(a).out.push(ab);
            for i in 0..50 {
                w.inject(a, a, i);
            }
            w.run_ticks(20);
            (w.actor(b).received.clone(), w.stats())
        }
        let (r1, s1) = run(7);
        let (r2, s2) = run(7);
        assert_eq!(r1, r2);
        assert_eq!(s1, s2);
        let (r3, _) = run(8);
        assert_ne!(r1, r3, "different seeds should differ");
    }

    #[test]
    fn on_tick_runs_every_tick_for_every_actor() {
        let mut w: World<Echo, u64> = World::new(4);
        let a = w.add_actor(Echo::new());
        let b = w.add_actor(Echo::new());
        w.run_ticks(13);
        assert_eq!(w.actor(a).tick_count, 13);
        assert_eq!(w.actor(b).tick_count, 13);
    }

    #[test]
    fn run_until_stops_early() {
        let mut w: World<Echo, u64> = World::new(5);
        let a = w.add_actor(Echo::new());
        let _ = a;
        let met = w.run_until(100, |w| w.now().ticks() >= 5);
        assert!(met);
        assert_eq!(w.now().ticks(), 5);
    }

    #[test]
    fn per_link_and_byte_counters_track_traffic() {
        let mut w: World<Echo, u64> = World::new(11);
        let a = w.add_actor(Echo::new());
        let b = w.add_actor(Echo::new());
        let c = w.add_actor(Echo::new());
        let ab = w.add_link(a, b, LinkConfig::reliable(1));
        let ac = w.add_link(a, c, LinkConfig::reliable(2));
        w.set_message_sizer(|_| 8);
        w.actor_mut(a).out.push(ab);
        w.actor_mut(a).out.push(ac);
        w.inject(a, a, 0);
        w.run_ticks(5);
        let stats = w.stats();
        assert_eq!(stats.offered, 2);
        assert_eq!(stats.delivered, 3); // inject + two forwards
        assert_eq!(stats.bytes_offered, 16);
        assert_eq!(stats.bytes_delivered, 16); // inject carries no bytes
        assert_eq!(stats.per_link.len(), 2);
        assert_eq!(stats.per_link[ab.0 as usize].delivered, 1);
        assert_eq!(stats.per_link[ab.0 as usize].bytes_delivered, 8);
        assert_eq!(stats.per_link[ac.0 as usize].from, a.0);
        assert_eq!(stats.per_link[ac.0 as usize].to, c.0);
        assert_eq!(stats.dropped(), 0);
    }

    #[test]
    fn recorder_sees_link_drops_with_sim_timestamps() {
        use curtain_telemetry::{DropReason, Event, MemorySink, SharedRecorder};

        struct Spammer {
            link: Option<LinkId>,
        }
        impl Actor<u64> for Spammer {
            fn on_message(&mut self, _: &mut Context<'_, u64>, _: HostId, _: u64) {}
            fn on_tick(&mut self, ctx: &mut Context<'_, u64>) {
                if let Some(l) = self.link {
                    ctx.send(l, 1);
                    ctx.send(l, 2); // over capacity 1 → drop
                }
            }
        }
        let mut w: World<Spammer, u64> = World::new(12);
        let a = w.add_actor(Spammer { link: None });
        let b = w.add_actor(Spammer { link: None });
        let l = w.add_link(a, b, LinkConfig::reliable(1));
        w.actor_mut(a).link = Some(l);
        let sink = MemorySink::new();
        w.set_recorder(SharedRecorder::new(sink.clone()));
        w.run_ticks(3);
        let events = sink.events();
        assert_eq!(events.len(), 3, "one capacity drop per tick");
        for (tick, (at, event)) in events.into_iter().enumerate() {
            assert_eq!(at, tick as u64);
            assert_eq!(event, Event::LinkDrop {
                link: l.0,
                from: a.0,
                to: b.0,
                reason: DropReason::Capacity,
            });
        }
        assert_eq!(w.stats().per_link[l.0 as usize].capacity_drops, 3);
    }

    #[test]
    #[should_panic(expected = "cannot send on link")]
    fn sending_on_foreign_link_panics() {
        struct Thief {
            foreign: Option<LinkId>,
        }
        impl Actor<u64> for Thief {
            fn on_message(&mut self, _: &mut Context<'_, u64>, _: HostId, _: u64) {}
            fn on_tick(&mut self, ctx: &mut Context<'_, u64>) {
                if let Some(l) = self.foreign {
                    ctx.send(l, 0);
                }
            }
        }
        let mut w: World<Thief, u64> = World::new(6);
        let a = w.add_actor(Thief { foreign: None });
        let b = w.add_actor(Thief { foreign: None });
        let ab = w.add_link(a, b, LinkConfig::reliable(1));
        w.actor_mut(b).foreign = Some(ab); // b tries to use a's uplink
        w.run_ticks(1);
    }
}
