//! A deterministic time-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An entry in the queue: payload + time + insertion sequence number.
struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first, breaking ties
        // by insertion order so runs are reproducible.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A min-queue of timed events with FIFO tie-breaking.
///
/// # Example
///
/// ```
/// use curtain_simnet::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ticks(5), "late");
/// q.push(SimTime::from_ticks(1), "early");
/// q.push(SimTime::from_ticks(1), "early2");
/// assert_eq!(q.pop().unwrap(), (SimTime::from_ticks(1), "early"));
/// assert_eq!(q.pop().unwrap(), (SimTime::from_ticks(1), "early2"));
/// assert_eq!(q.pop().unwrap(), (SimTime::from_ticks(5), "late"));
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True iff no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at `time`.
    pub fn push(&mut self, time: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// The time of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Pops the earliest event only if it is due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, T)> {
        if self.peek_time()? <= now {
            self.pop()
        } else {
            None
        }
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ticks(2), 'b');
        q.push(SimTime::from_ticks(1), 'a');
        q.push(SimTime::from_ticks(2), 'c');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ticks(5), ());
        assert!(q.pop_due(SimTime::from_ticks(4)).is_none());
        assert!(q.pop_due(SimTime::from_ticks(5)).is_some());
        assert!(q.is_empty());
    }

    #[test]
    fn debug_is_nonempty() {
        let q: EventQueue<u8> = EventQueue::new();
        assert!(format!("{q:?}").contains("EventQueue"));
    }

    proptest! {
        #[test]
        fn pops_in_nondecreasing_time_order(times in proptest::collection::vec(0u64..100, 1..50)) {
            let mut q = EventQueue::new();
            for &t in &times {
                q.push(SimTime::from_ticks(t), t);
            }
            let mut last = 0;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t.ticks() >= last);
                last = t.ticks();
            }
        }

        #[test]
        fn same_time_events_are_fifo(count in 1usize..30) {
            let mut q = EventQueue::new();
            for i in 0..count {
                q.push(SimTime::from_ticks(7), i);
            }
            let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
            prop_assert_eq!(order, (0..count).collect::<Vec<_>>());
        }
    }
}
