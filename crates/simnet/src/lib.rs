//! A deterministic discrete-event network simulator.
//!
//! The paper analyzes a hypothetical wide-area deployment of residential
//! end-hosts; this crate is the substitute substrate: a simulation precise
//! about exactly the properties the paper's model cares about —
//!
//! * **unit-bandwidth links**: each overlay thread carries a bounded number
//!   of packets per tick ([`LinkConfig::capacity_per_tick`]);
//! * **latency**: per-link fixed delivery delay;
//! * **ergodic failures**: iid packet loss ([`LinkConfig::loss`]) and bursty
//!   Gilbert–Elliott loss ([`failure::GilbertElliott`]) — "temporary,
//!   unannounced outage such as packet loss [or] network congestion" (§2);
//! * **determinism**: one seeded RNG drives everything; identical seeds
//!   produce identical runs, event ties broken by sequence number.
//!
//! The simulation core is a generic actor model: implement [`Actor`] for
//! your per-host state, add hosts and unidirectional [`Link`]s to a
//! [`World`], and call [`World::run_ticks`]. The broadcast layer
//! (`curtain-broadcast`) builds its peers on exactly this API.
//!
//! # Example
//!
//! ```
//! use curtain_simnet::{Actor, Context, HostId, LinkConfig, SimTime, World};
//!
//! // A relay that counts and forwards numbers downstream.
//! struct Relay {
//!     received: u64,
//!     out: Vec<curtain_simnet::LinkId>,
//! }
//!
//! impl Actor<u64> for Relay {
//!     fn on_message(&mut self, ctx: &mut Context<'_, u64>, _from: HostId, msg: u64) {
//!         self.received += 1;
//!         for &l in &self.out {
//!             ctx.send(l, msg + 1);
//!         }
//!     }
//!     fn on_tick(&mut self, _ctx: &mut Context<'_, u64>) {}
//! }
//!
//! let mut world: World<Relay, u64> = World::new(7);
//! let a = world.add_actor(Relay { received: 0, out: vec![] });
//! let b = world.add_actor(Relay { received: 0, out: vec![] });
//! let ab = world.add_link(a, b, LinkConfig::reliable(1));
//! world.actor_mut(a).out.push(ab);
//! world.inject(a, a, 0); // kick host a with a message from itself
//! world.run_ticks(5);
//! assert_eq!(world.actor(b).received, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod failure;
mod link;
mod time;
mod world;

pub use event::EventQueue;
pub use link::{Link, LinkConfig, LinkId};
pub use time::SimTime;
pub use world::{Actor, Context, HostId, LinkStats, NetStats, World};
