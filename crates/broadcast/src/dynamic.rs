//! Broadcast under live churn: the topology changes *during* the transfer.
//!
//! The static [`crate::Session`] snapshots an overlay; this module keeps
//! the overlay alive. Joins, graceful leaves, failures and repairs are
//! applied to the [`CurtainNetwork`] mid-broadcast and mirrored into the
//! running simulation: new hosts and links appear, splice plans rewire
//! parents to children, failed hosts fall silent until repaired out.
//!
//! This exercises the property the whole design rests on ([CWJ03] via §1):
//! *because every packet carries its own coefficients, decodability
//! survives arbitrary topology changes* — no routing tables, no tree
//! recomputation, the repair is purely local.
//!
//! RLNC is the only strategy offered here: that is the paper's point — the
//! baselines need global recomputation under churn, RLNC does not.

use std::collections::HashMap;

use curtain_overlay::{CurtainNetwork, Holder, NodeId, RepairPlan};
use curtain_rlnc::{Encoder, Recoder};
use curtain_simnet::{HostId, LinkConfig, World};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

use crate::attacks::AttackMode;
use crate::peer::{ClientRole, Msg, OutLink, Peer, Role, ServerRole};

/// Parameters of a dynamic broadcast.
#[derive(Debug, Clone)]
pub struct DynamicConfig {
    /// Content packets (one generation).
    pub total_chunks: usize,
    /// Bytes per packet.
    pub packet_len: usize,
    /// Link latency in ticks.
    pub latency: u64,
    /// Per-packet loss probability.
    pub loss: f64,
    /// Probability of a join per tick.
    pub join_rate: f64,
    /// Probability of a graceful leave (random member) per tick.
    pub leave_rate: f64,
    /// Probability of a failure (random member) per tick.
    pub fail_rate: f64,
    /// Ticks between a failure and its repair — the §2 repair interval.
    pub repair_delay: u64,
}

impl DynamicConfig {
    /// Reasonable defaults for a `total_chunks`-packet broadcast.
    ///
    /// # Panics
    ///
    /// Panics if `total_chunks == 0` or `packet_len == 0`.
    #[must_use]
    pub fn new(total_chunks: usize, packet_len: usize) -> Self {
        assert!(total_chunks > 0, "need at least one chunk");
        assert!(packet_len > 0, "packets need at least one byte");
        DynamicConfig {
            total_chunks,
            packet_len,
            latency: 1,
            loss: 0.0,
            join_rate: 0.0,
            leave_rate: 0.0,
            fail_rate: 0.0,
            repair_delay: 10,
        }
    }

    /// Sets the churn rates.
    #[must_use]
    pub fn with_churn(mut self, join: f64, leave: f64, fail: f64, repair_delay: u64) -> Self {
        self.join_rate = join;
        self.leave_rate = leave;
        self.fail_rate = fail;
        self.repair_delay = repair_delay;
        self
    }

    /// Sets the loss probability.
    #[must_use]
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }
}

/// Outcome of a dynamic run.
#[derive(Debug, Clone)]
pub struct DynamicReport {
    /// Members present at the end that had decoded everything.
    pub completed_members: usize,
    /// Members present at the end (working, honest).
    pub final_members: usize,
    /// Joins / leaves / failures / repairs applied during the run.
    pub churn_counts: (u64, u64, u64, u64),
    /// Ticks simulated.
    pub ticks: u64,
    /// Mean rank progress of end members (fraction of content).
    pub mean_progress: f64,
}

impl DynamicReport {
    /// Fraction of end members fully decoded.
    #[must_use]
    pub fn completion_fraction(&self) -> f64 {
        if self.final_members == 0 {
            return 0.0;
        }
        self.completed_members as f64 / self.final_members as f64
    }
}

/// A broadcast session over a *live* curtain network.
pub struct DynamicSession {
    net: CurtainNetwork,
    world: World<Peer, Msg>,
    host_of: HashMap<NodeId, HostId>,
    cfg: DynamicConfig,
    rng: StdRng,
    pending_repairs: Vec<(NodeId, u64)>,
    churn_counts: (u64, u64, u64, u64),
    link_cfg: LinkConfig,
}

impl DynamicSession {
    /// Starts a session over an existing network. The server (host 0)
    /// carries the whole generation; every current member starts empty.
    ///
    /// # Panics
    ///
    /// Panics if the network contains failed members (repair first) or the
    /// config is inconsistent.
    #[must_use]
    pub fn new(net: CurtainNetwork, cfg: DynamicConfig, seed: u64) -> Self {
        assert!(
            net.failed_nodes().is_empty(),
            "start from a repaired network; inject failures through the session"
        );
        let mut content_rng = StdRng::seed_from_u64(seed ^ 0xd1a_c0de);
        let content: Vec<Vec<u8>> = (0..cfg.total_chunks)
            .map(|_| {
                let mut c = vec![0u8; cfg.packet_len];
                content_rng.fill(&mut c[..]);
                c
            })
            .collect();
        let mut world: World<Peer, Msg> = World::new(seed);
        world.add_actor(Peer {
            alive: true,
            attack: AttackMode::Honest,
            outs: Vec::new(),
            role: Role::Server(ServerRole::Rlnc {
                encoder: Encoder::new(0, content).expect("non-empty content"),
            }),
            completed_at: Some(0),
            cursors: Vec::new(),
            gen_size: cfg.total_chunks,
            packet_len: cfg.packet_len,
            received_packets: 0,
            sent_packets: 0,
        });
        let link_cfg = LinkConfig::reliable(cfg.latency).with_loss(cfg.loss);
        let mut session = DynamicSession {
            net,
            world,
            host_of: HashMap::new(),
            rng: StdRng::seed_from_u64(seed ^ 0xc4u64),
            pending_repairs: Vec::new(),
            churn_counts: (0, 0, 0, 0),
            link_cfg,
            cfg,
        };
        // Mirror the existing members and edges.
        for row in session.net.matrix().rows().to_vec() {
            session.add_host(row.node());
        }
        let matrix = session.net.matrix().clone();
        for pos in 0..matrix.len() {
            let child = matrix.row(pos).node();
            for (thread, parent) in matrix.parents_of_position(pos) {
                session.add_stream(parent, child, thread);
            }
        }
        session
    }

    /// The live overlay.
    #[must_use]
    pub fn network(&self) -> &CurtainNetwork {
        &self.net
    }

    fn add_host(&mut self, node: NodeId) -> HostId {
        let host = self.world.add_actor(Peer {
            alive: true,
            attack: AttackMode::Honest,
            outs: Vec::new(),
            role: Role::Client(ClientRole::Rlnc {
                recoder: Recoder::new(0, self.cfg.total_chunks, self.cfg.packet_len),
                pinned: None,
            }),
            completed_at: None,
            cursors: Vec::new(),
            gen_size: self.cfg.total_chunks,
            packet_len: self.cfg.packet_len,
            received_packets: 0,
            sent_packets: 0,
        });
        self.host_of.insert(node, host);
        host
    }

    fn host(&self, holder: Holder) -> HostId {
        match holder {
            Holder::Server => HostId(0),
            Holder::Node(n) => self.host_of[&n],
        }
    }

    /// Connects `parent --thread--> child` with a fresh link.
    fn add_stream(&mut self, parent: Holder, child: NodeId, thread: u16) {
        let from = self.host(parent);
        let to = self.host_of[&child];
        let link = self.world.add_link(from, to, self.link_cfg);
        let sender = self.world.actor_mut(from);
        sender.outs.push(OutLink { link, thread: Some(thread) });
        sender.cursors.push(0);
    }

    /// Removes the out-link `parent --thread--> child` if present.
    fn remove_stream(&mut self, parent: Holder, child: NodeId, thread: u16) {
        let to = self.host_of[&child];
        let from = self.host(parent);
        let world = &mut self.world;
        let sender_outs: Vec<(usize, OutLink)> = world
            .actor(from)
            .outs
            .iter()
            .copied()
            .enumerate()
            .collect();
        for (i, out) in sender_outs {
            if out.thread == Some(thread) && world.link(out.link).to() == to.0 {
                let sender = world.actor_mut(from);
                sender.outs.remove(i);
                sender.cursors.remove(i);
                return;
            }
        }
    }

    /// Applies a join: the overlay admits the node, streams start flowing.
    pub fn apply_join(&mut self) -> NodeId {
        let grant = self.net.server_mut().hello(&mut self.rng);
        self.add_host(grant.node);
        for (thread, parent) in grant.parents {
            self.add_stream(parent, grant.node, thread);
        }
        self.churn_counts.0 += 1;
        grant.node
    }

    /// Applies a splice plan: each redirect rewires one thread.
    fn apply_plan(&mut self, plan: &RepairPlan) {
        let leaver = plan.node;
        for r in &plan.redirects {
            // The leaver's uplink to its child dies with the leaver's host;
            // mark the host dead below. New stream: parent -> child.
            if let Some(child) = r.child {
                self.remove_stream(Holder::Node(leaver), child, r.thread);
                self.add_stream(r.new_parent, child, r.thread);
            }
            // The parent's stream to the leaver stops.
            self.remove_stream(r.new_parent, leaver, r.thread);
        }
        let host = self.host_of[&leaver];
        self.world.actor_mut(host).alive = false;
    }

    /// Applies a graceful leave of `node`.
    ///
    /// # Errors
    ///
    /// Propagates overlay protocol errors.
    pub fn apply_leave(&mut self, node: NodeId) -> Result<(), curtain_overlay::OverlayError> {
        let plan = self.net.server_mut().goodbye(node)?;
        self.apply_plan(&plan);
        self.churn_counts.1 += 1;
        Ok(())
    }

    /// Applies a failure of `node` (silent host; repair follows after the
    /// configured delay).
    ///
    /// # Errors
    ///
    /// Propagates overlay protocol errors.
    pub fn apply_failure(&mut self, node: NodeId) -> Result<(), curtain_overlay::OverlayError> {
        self.net.fail(node)?;
        let host = self.host_of[&node];
        self.world.actor_mut(host).alive = false;
        self.pending_repairs
            .push((node, self.world.now().ticks() + self.cfg.repair_delay));
        self.churn_counts.2 += 1;
        Ok(())
    }

    /// Repairs a failed node now (normally driven by the tick loop).
    ///
    /// # Errors
    ///
    /// Propagates overlay protocol errors.
    pub fn apply_repair(&mut self, node: NodeId) -> Result<(), curtain_overlay::OverlayError> {
        let plan = self.net.server_mut().repair(node)?;
        self.apply_plan(&plan);
        self.churn_counts.3 += 1;
        Ok(())
    }

    /// One tick: due repairs, random churn events, then the network tick.
    pub fn tick(&mut self) {
        let now = self.world.now().ticks();
        // Due repairs.
        let due: Vec<NodeId> = self
            .pending_repairs
            .iter()
            .filter(|(_, at)| *at <= now)
            .map(|(n, _)| *n)
            .collect();
        self.pending_repairs.retain(|(_, at)| *at > now);
        for node in due {
            let _ = self.apply_repair(node);
        }
        // Random churn.
        if self.cfg.join_rate > 0.0 && self.rng.random_bool(self.cfg.join_rate) {
            self.apply_join();
        }
        if self.cfg.leave_rate > 0.0 && self.rng.random_bool(self.cfg.leave_rate) {
            if let Some(node) = self.pick_working() {
                let _ = self.apply_leave(node);
            }
        }
        if self.cfg.fail_rate > 0.0 && self.rng.random_bool(self.cfg.fail_rate) {
            if let Some(node) = self.pick_working() {
                let _ = self.apply_failure(node);
            }
        }
        self.world.tick();
    }

    fn pick_working(&mut self) -> Option<NodeId> {
        let working: Vec<NodeId> = self
            .net
            .matrix()
            .rows()
            .iter()
            .filter(|r| r.status() == curtain_overlay::NodeStatus::Working)
            .map(|r| r.node())
            .collect();
        if working.is_empty() {
            None
        } else {
            Some(working[self.rng.random_range(0..working.len())])
        }
    }

    /// Runs `ticks` ticks and reports the end state.
    pub fn run(&mut self, ticks: u64) -> DynamicReport {
        for _ in 0..ticks {
            self.tick();
        }
        self.report()
    }

    /// Builds a report for the current state.
    #[must_use]
    pub fn report(&self) -> DynamicReport {
        let mut completed = 0;
        let mut members = 0;
        let mut progress_acc = 0.0;
        for row in self.net.matrix().rows() {
            if row.status() != curtain_overlay::NodeStatus::Working {
                continue;
            }
            let host = self.host_of[&row.node()];
            let peer = self.world.actor(host);
            members += 1;
            progress_acc += peer.progress();
            if peer.completed_at.is_some() {
                completed += 1;
            }
        }
        DynamicReport {
            completed_members: completed,
            final_members: members,
            churn_counts: self.churn_counts,
            ticks: self.world.now().ticks(),
            mean_progress: progress_acc / f64::from(members.max(1) as u32),
        }
    }

    /// Rank progress of one member (for tests).
    #[must_use]
    pub fn progress_of(&self, node: NodeId) -> Option<f64> {
        let host = self.host_of.get(&node)?;
        Some(self.world.actor(*host).progress())
    }
}

impl std::fmt::Debug for DynamicSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynamicSession")
            .field("members", &self.net.len())
            .field("now", &self.world.now())
            .field("churn", &self.churn_counts)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use curtain_overlay::OverlayConfig;

    fn network(k: usize, d: usize, n: usize, seed: u64) -> CurtainNetwork {
        let mut net = CurtainNetwork::new(OverlayConfig::new(k, d)).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..n {
            net.join(&mut rng);
        }
        net
    }

    #[test]
    fn no_churn_matches_static_expectations() {
        let net = network(8, 2, 20, 1);
        let mut s = DynamicSession::new(net, DynamicConfig::new(16, 32), 2);
        let report = s.run(200);
        assert_eq!(report.completion_fraction(), 1.0);
        assert_eq!(report.churn_counts, (0, 0, 0, 0));
    }

    #[test]
    fn joins_mid_broadcast_catch_up() {
        let net = network(8, 2, 10, 3);
        let mut s = DynamicSession::new(net, DynamicConfig::new(12, 32), 4);
        // Let the broadcast run a while, then a latecomer joins.
        for _ in 0..30 {
            s.tick();
        }
        let late = s.apply_join();
        assert_eq!(s.progress_of(late), Some(0.0));
        for _ in 0..100 {
            s.tick();
        }
        assert_eq!(s.progress_of(late), Some(1.0), "latecomer must fully decode");
    }

    #[test]
    fn graceful_leave_mid_broadcast_does_not_strand_children() {
        let net = network(6, 2, 25, 5);
        let mut s = DynamicSession::new(net, DynamicConfig::new(16, 32), 6);
        for _ in 0..10 {
            s.tick();
        }
        // An early (upstream) member leaves mid-transfer.
        let victim = s.network().node_ids()[1];
        s.apply_leave(victim).unwrap();
        let report = s.run(300);
        assert_eq!(report.completion_fraction(), 1.0);
    }

    #[test]
    fn failure_then_repair_lets_descendants_finish() {
        let net = network(6, 2, 25, 7);
        let cfg = DynamicConfig { repair_delay: 20, ..DynamicConfig::new(24, 32) };
        let mut s = DynamicSession::new(net, cfg, 8);
        for _ in 0..5 {
            s.tick();
        }
        let victim = s.network().node_ids()[0];
        s.apply_failure(victim).unwrap();
        let report = s.run(500);
        // The victim is repaired (spliced out); everyone remaining decodes.
        assert_eq!(report.churn_counts.3, 1, "repair must have run");
        assert_eq!(report.completion_fraction(), 1.0);
        assert!(s.network().matrix().position_of(victim).is_none());
    }

    #[test]
    fn sustained_churn_still_completes_for_members() {
        let net = network(16, 3, 40, 9);
        let cfg = DynamicConfig::new(20, 32)
            .with_churn(0.10, 0.05, 0.02, 15)
            .with_loss(0.02);
        let mut s = DynamicSession::new(net, cfg, 10);
        let report = s.run(800);
        let (joins, leaves, fails, repairs) = report.churn_counts;
        assert!(joins > 20, "expected churn, got {joins} joins");
        assert!(leaves > 5);
        assert!(fails > 2);
        assert!(repairs > 0);
        // Overwhelming majority of the survivors hold the full content
        // (recent joiners may still be catching up).
        assert!(
            report.completion_fraction() > 0.85,
            "completion {:.2} too low under churn",
            report.completion_fraction()
        );
        s.network().matrix().assert_invariants();
    }

    #[test]
    #[should_panic(expected = "repaired network")]
    fn rejects_networks_with_standing_failures() {
        let mut net = network(8, 2, 5, 11);
        let id = net.node_ids()[0];
        net.fail(id).unwrap();
        let _ = DynamicSession::new(net, DynamicConfig::new(8, 16), 12);
    }
}
