//! §5 heterogeneity: mixed node degrees and priority-encoded layers.
//!
//! *"The proofs assume equal bandwidth for all the nodes. However, the
//! design of the system does not use this fact anywhere. … The ability to
//! handle heterogeneous users allows priority encoding transmission [2] or
//! other means for users with higher bandwidth connections to get higher
//! resolution broadcasts."*
//!
//! A node of bandwidth class `d_i` clips `d_i` threads; its broadcast rate
//! is its min-cut (≈ `d_i`). With priority encoding (PET), the content is
//! layered so that *any* `r` received units decode the first `layers(r)`
//! layers — here modelled by rank thresholds over the RLNC generation.

use curtain_overlay::{CurtainNetwork, NodeId, OverlayConfig, OverlayError};
use rand::Rng;

/// A priority-encoding profile: layer `ℓ` is decodable once the received
/// rank reaches `thresholds[ℓ]`.
///
/// # Example
///
/// ```
/// use curtain_broadcast::heterogeneous::PetProfile;
///
/// // Base layer at rank 8, enhancement at 12, full quality at 16.
/// let pet = PetProfile::new(vec![8, 12, 16]);
/// assert_eq!(pet.layers_decodable(7), 0);
/// assert_eq!(pet.layers_decodable(12), 2);
/// assert_eq!(pet.layers_decodable(16), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PetProfile {
    thresholds: Vec<usize>,
}

impl PetProfile {
    /// Creates a profile from strictly increasing rank thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `thresholds` is empty or not strictly increasing.
    #[must_use]
    pub fn new(thresholds: Vec<usize>) -> Self {
        assert!(!thresholds.is_empty(), "need at least one layer");
        assert!(
            thresholds.windows(2).all(|w| w[0] < w[1]),
            "thresholds must be strictly increasing"
        );
        PetProfile { thresholds }
    }

    /// Number of layers.
    #[must_use]
    pub fn layer_count(&self) -> usize {
        self.thresholds.len()
    }

    /// How many layers a node with the given received rank can decode.
    #[must_use]
    pub fn layers_decodable(&self, rank: usize) -> usize {
        self.thresholds.iter().take_while(|&&t| t <= rank).count()
    }

    /// The rank needed for full quality.
    #[must_use]
    pub fn full_rank(&self) -> usize {
        *self.thresholds.last().expect("non-empty")
    }
}

/// A bandwidth class: how many threads its members clip, and how many
/// members to admit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandwidthClass {
    /// Human-readable label ("DSL", "T1", …).
    pub name: &'static str,
    /// Degree `d_i` for this class.
    pub degree: usize,
    /// Members to admit.
    pub count: usize,
}

/// Builds a curtain with interleaved members of several bandwidth classes.
/// Returns the network and, per admitted node, its class index.
///
/// Members are admitted round-robin across classes so arrival order does
/// not correlate with class.
///
/// # Errors
///
/// Propagates configuration errors.
///
/// # Panics
///
/// Panics if a class degree exceeds `k` or `classes` is empty.
pub fn build_heterogeneous_curtain<R: Rng + ?Sized>(
    k: usize,
    classes: &[BandwidthClass],
    rng: &mut R,
) -> Result<(CurtainNetwork, Vec<(NodeId, usize)>), OverlayError> {
    assert!(!classes.is_empty(), "need at least one class");
    let max_d = classes.iter().map(|c| c.degree).max().expect("non-empty");
    assert!(max_d <= k, "class degree exceeds k");
    // The config's d is only the default; per-admit degrees override it.
    let mut net = CurtainNetwork::new(OverlayConfig::new(k, max_d))?;
    let mut members = Vec::new();
    let mut remaining: Vec<usize> = classes.iter().map(|c| c.count).collect();
    loop {
        let mut any = false;
        for (ci, class) in classes.iter().enumerate() {
            if remaining[ci] == 0 {
                continue;
            }
            remaining[ci] -= 1;
            any = true;
            let grant = net.server_mut().hello_with_degree(class.degree, rng);
            members.push((grant.node, ci));
        }
        if !any {
            break;
        }
    }
    Ok((net, members))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pet_layer_boundaries() {
        let pet = PetProfile::new(vec![4, 8, 16]);
        assert_eq!(pet.layer_count(), 3);
        assert_eq!(pet.layers_decodable(0), 0);
        assert_eq!(pet.layers_decodable(3), 0);
        assert_eq!(pet.layers_decodable(4), 1);
        assert_eq!(pet.layers_decodable(15), 2);
        assert_eq!(pet.layers_decodable(100), 3);
        assert_eq!(pet.full_rank(), 16);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn pet_rejects_non_increasing() {
        let _ = PetProfile::new(vec![4, 4]);
    }

    #[test]
    fn heterogeneous_curtain_has_mixed_degrees() {
        let mut rng = StdRng::seed_from_u64(1);
        let classes = [
            BandwidthClass { name: "DSL", degree: 2, count: 20 },
            BandwidthClass { name: "T1", degree: 5, count: 10 },
        ];
        let (net, members) = build_heterogeneous_curtain(16, &classes, &mut rng).unwrap();
        assert_eq!(net.len(), 30);
        assert_eq!(members.len(), 30);
        for (node, ci) in &members {
            let pos = net.matrix().position_of(*node).unwrap();
            assert_eq!(net.matrix().row(pos).threads().len(), classes[*ci].degree);
        }
        net.matrix().assert_invariants();
    }

    #[test]
    fn higher_degree_classes_get_higher_connectivity() {
        let mut rng = StdRng::seed_from_u64(2);
        let classes = [
            BandwidthClass { name: "DSL", degree: 2, count: 25 },
            BandwidthClass { name: "T1", degree: 6, count: 25 },
        ];
        let (net, members) = build_heterogeneous_curtain(24, &classes, &mut rng).unwrap();
        let mean_conn = |ci: usize| {
            let conns: Vec<usize> = members
                .iter()
                .filter(|(_, c)| *c == ci)
                .map(|(n, _)| net.connectivity_of(*n).unwrap())
                .collect();
            conns.iter().sum::<usize>() as f64 / conns.len() as f64
        };
        let dsl = mean_conn(0);
        let t1 = mean_conn(1);
        assert!(
            t1 > dsl + 2.0,
            "T1 class (mean {t1:.2}) should far exceed DSL (mean {dsl:.2})"
        );
    }

    #[test]
    fn pet_gives_more_layers_to_faster_nodes() {
        let mut rng = StdRng::seed_from_u64(3);
        let classes = [
            BandwidthClass { name: "slow", degree: 2, count: 15 },
            BandwidthClass { name: "fast", degree: 4, count: 15 },
        ];
        let (net, members) = build_heterogeneous_curtain(16, &classes, &mut rng).unwrap();
        let pet = PetProfile::new(vec![1, 3, 4]);
        // Use connectivity as the sustained per-tick rank rate: a node with
        // min-cut c sustains c units per tick, so after one "deadline" its
        // rank is proportional to c.
        let layers = |ci: usize| -> f64 {
            let ls: Vec<usize> = members
                .iter()
                .filter(|(_, c)| *c == ci)
                .map(|(n, _)| pet.layers_decodable(net.connectivity_of(*n).unwrap()))
                .collect();
            ls.iter().sum::<usize>() as f64 / ls.len() as f64
        };
        assert!(layers(1) > layers(0));
    }
}
