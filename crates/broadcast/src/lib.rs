//! End-to-end broadcast sessions over the curtain overlay.
//!
//! This crate wires the three lower layers together: an overlay topology
//! (`curtain-overlay`), the deterministic network simulator
//! (`curtain-simnet`), and the RLNC codec (`curtain-rlnc`) — and adds the
//! *baseline* distribution strategies the paper's introduction compares
//! against:
//!
//! | [`Strategy`] | Who codes? | Failure behaviour |
//! |--------------|-----------|-------------------|
//! | [`Strategy::Rlnc`] | every node recodes | rate = min-cut (network-coding theorem) |
//! | [`Strategy::SourceErasure`] | server only (Reed–Solomon across threads) | a dead column kills its share: no rerouting |
//! | [`Strategy::Routing`] | nobody (uncoded chunk gossip) | coupon-collector tail, duplicate deliveries |
//!
//! A [`Session`] takes a [`TopologySpec`] (snapshot of a
//! [`curtain_overlay::CurtainNetwork`] or of the §6 random-graph variant),
//! runs the chosen strategy for a bounded number of ticks, and reports
//! per-node completion times, progress, and traffic counters.
//!
//! The §5/§7 attack models (entropy destruction and jamming) are selected
//! per node via [`attacks::AttackMode`]; §5 heterogeneity (mixed node
//! degrees, priority-encoded layers) lives in [`heterogeneous`].
//!
//! The RLNC data plane is pluggable: [`SessionConfig::with_codec`] and
//! [`StreamConfig::with_codec`] swap in any `curtain-codec` backend
//! ([`CodecKind::Rlnc`], [`CodecKind::Overlap`], [`CodecKind::Window`])
//! behind the same session and stream reports.
//!
//! # Example
//!
//! ```
//! use curtain_broadcast::{Session, SessionConfig, Strategy, TopologySpec};
//! use curtain_overlay::{CurtainNetwork, OverlayConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(3);
//! let mut net = CurtainNetwork::new(OverlayConfig::new(8, 2)).expect("valid config");
//! for _ in 0..20 {
//!     net.join(&mut rng);
//! }
//! let topo = TopologySpec::from_curtain(&net);
//! let cfg = SessionConfig::new(Strategy::Rlnc, 16, 64).with_max_ticks(2000);
//! let report = Session::run(&topo, &cfg, 7);
//! assert_eq!(report.completion_fraction(), 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
pub mod dynamic;
pub mod heterogeneous;
mod metrics;
mod peer;
mod session;
pub mod stream;
mod topology;

pub use curtain_codec::{BroadcastCodec, CodecConfig, CodecKind, CodecProgress};
pub use dynamic::{DynamicConfig, DynamicReport, DynamicSession};
pub use metrics::SessionReport;
pub use session::{Session, SessionConfig, Strategy};
pub use stream::{StreamConfig, StreamReport, StreamSession, ViewerReport};
pub use topology::{Endpoint, OverlayEdge, TopologySpec};
