//! Session outcome reporting.

use curtain_simnet::NetStats;

/// Per-node and aggregate outcome of one broadcast session.
///
/// "Victims" are the honest, initially-live clients; dead nodes and
/// adversaries are flagged in [`SessionReport::excluded`] and ignored by
/// the aggregate statistics.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Tick at which each client completed the content; `None` = never.
    pub completed_at: Vec<Option<u64>>,
    /// Fraction of the content each client held at the end.
    pub progress: Vec<f64>,
    /// True for clients that "completed" but whose recovered content does
    /// not match the original (jamming pollution).
    pub corrupted: Vec<bool>,
    /// True for dead or adversarial clients (excluded from aggregates).
    pub excluded: Vec<bool>,
    /// Link-level traffic counters: aggregate offered/delivered/dropped
    /// packets and bytes, plus a per-link breakdown
    /// ([`curtain_simnet::LinkStats`], indexed by link creation order —
    /// the same order as the topology's edge list). Byte counters are
    /// maintained by the session's message sizer, so `net.bytes_offered /
    /// net.bytes_delivered` measures real wire overhead, and
    /// `net.per_link` localizes hot or lossy threads.
    pub net: NetStats,
    /// Ticks actually simulated.
    pub ticks_run: u64,
    /// Packets each client accepted (fairness accounting).
    pub received_packets: Vec<u64>,
    /// Packets each client offered upstream of the link layer.
    pub sent_packets: Vec<u64>,
}

impl SessionReport {
    fn victims(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.completed_at.len()).filter(|&i| !self.excluded[i])
    }

    /// Number of honest live clients.
    #[must_use]
    pub fn victim_count(&self) -> usize {
        self.victims().count()
    }

    /// Fraction of victims that completed *with correct content*.
    #[must_use]
    pub fn completion_fraction(&self) -> f64 {
        let total = self.victim_count();
        if total == 0 {
            return 0.0;
        }
        let done = self
            .victims()
            .filter(|&i| self.completed_at[i].is_some() && !self.corrupted[i])
            .count();
        done as f64 / total as f64
    }

    /// Fraction of victims whose recovered content was corrupt.
    #[must_use]
    pub fn corruption_fraction(&self) -> f64 {
        let total = self.victim_count();
        if total == 0 {
            return 0.0;
        }
        self.victims().filter(|&i| self.corrupted[i]).count() as f64 / total as f64
    }

    /// Mean completion tick over victims that completed correctly.
    #[must_use]
    pub fn mean_completion_tick(&self) -> Option<f64> {
        let done: Vec<u64> = self
            .victims()
            .filter(|&i| !self.corrupted[i])
            .filter_map(|i| self.completed_at[i])
            .collect();
        if done.is_empty() {
            return None;
        }
        Some(done.iter().sum::<u64>() as f64 / done.len() as f64)
    }

    /// A completion-tick percentile (0–100) over correctly completed
    /// victims.
    ///
    /// # Panics
    ///
    /// Panics if `pct` is outside `[0, 100]`.
    #[must_use]
    pub fn completion_percentile(&self, pct: f64) -> Option<u64> {
        assert!((0.0..=100.0).contains(&pct), "percentile out of range");
        let mut done: Vec<u64> = self
            .victims()
            .filter(|&i| !self.corrupted[i])
            .filter_map(|i| self.completed_at[i])
            .collect();
        if done.is_empty() {
            return None;
        }
        done.sort_unstable();
        let rank = ((pct / 100.0) * (done.len() - 1) as f64).round() as usize;
        Some(done[rank])
    }

    /// Mean end-of-run progress over victims (1.0 = everyone has all the
    /// content, complete or not).
    #[must_use]
    pub fn mean_progress(&self) -> f64 {
        let total = self.victim_count();
        if total == 0 {
            return 0.0;
        }
        self.victims().map(|i| self.progress[i]).sum::<f64>() / total as f64
    }

    /// *Goodput proxy*: mean victim progress divided by ticks run — content
    /// fraction delivered per tick.
    #[must_use]
    pub fn goodput(&self) -> f64 {
        if self.ticks_run == 0 {
            return 0.0;
        }
        self.mean_progress() / self.ticks_run as f64
    }

    /// Per-victim upload/download ratios — §7's incentive measure: "each
    /// node is required to reliably transmit as many bytes as it consumes".
    /// A ratio ≥ 1 means the node repaid its download.
    ///
    /// A victim that downloaded nothing has no meaningful ratio: it gets
    /// [`f64::INFINITY`] if it nevertheless uploaded (pure contributor)
    /// and `0.0` if it moved no traffic at all. Aggregations should filter
    /// on `is_finite()` (see `fair_fraction`, which treats `∞ ≥ bar` as
    /// fair but callers computing means must drop it).
    #[must_use]
    pub fn upload_ratios(&self) -> Vec<f64> {
        self.victims()
            .map(|i| {
                let down = self.received_packets[i];
                let up = self.sent_packets[i];
                if down == 0 {
                    if up == 0 { 0.0 } else { f64::INFINITY }
                } else {
                    up as f64 / down as f64
                }
            })
            .collect()
    }

    /// Fraction of victims whose upload/download ratio is at least `bar`.
    #[must_use]
    pub fn fair_fraction(&self, bar: f64) -> f64 {
        let ratios = self.upload_ratios();
        if ratios.is_empty() {
            return 0.0;
        }
        ratios.iter().filter(|&&r| r >= bar).count() as f64 / ratios.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SessionReport {
        SessionReport {
            completed_at: vec![Some(10), Some(20), None, Some(30), Some(5)],
            progress: vec![1.0, 1.0, 0.5, 1.0, 1.0],
            corrupted: vec![false, false, false, true, false],
            excluded: vec![false, false, false, false, true],
            net: NetStats::default(),
            ticks_run: 100,
            received_packets: vec![100, 100, 50, 100, 100],
            sent_packets: vec![100, 90, 10, 100, 0],
        }
    }

    #[test]
    fn victim_accounting() {
        let r = report();
        assert_eq!(r.victim_count(), 4);
        // Victims: 0 (done), 1 (done), 2 (incomplete), 3 (corrupt).
        assert!((r.completion_fraction() - 0.5).abs() < 1e-12);
        assert!((r.corruption_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn completion_stats() {
        let r = report();
        assert_eq!(r.mean_completion_tick(), Some(15.0));
        assert_eq!(r.completion_percentile(0.0), Some(10));
        assert_eq!(r.completion_percentile(100.0), Some(20));
    }

    #[test]
    fn progress_and_goodput() {
        let r = report();
        assert!((r.mean_progress() - 3.5 / 4.0).abs() < 1e-12);
        assert!((r.goodput() - 3.5 / 4.0 / 100.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = SessionReport {
            completed_at: vec![],
            progress: vec![],
            corrupted: vec![],
            excluded: vec![],
            net: NetStats::default(),
            ticks_run: 0,
            received_packets: vec![],
            sent_packets: vec![],
        };
        assert_eq!(r.completion_fraction(), 0.0);
        assert_eq!(r.mean_completion_tick(), None);
        assert_eq!(r.goodput(), 0.0);
    }

    #[test]
    fn fairness_accounting() {
        let r = report();
        // Victims are indices 0..=3; ratios = 1.0, 0.9, 0.2, 1.0.
        let ratios = r.upload_ratios();
        assert_eq!(ratios.len(), 4);
        assert!((ratios[0] - 1.0).abs() < 1e-12);
        assert!((r.fair_fraction(0.9) - 0.75).abs() < 1e-12);
        assert!((r.fair_fraction(1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_download_victims_do_not_fake_fairness() {
        let mut r = report();
        // Victim 2: uploaded 10 packets but downloaded none — previously
        // reported as sent/1 = 10.0; now explicitly infinite.
        r.received_packets[2] = 0;
        let ratios = r.upload_ratios();
        assert!(ratios[2].is_infinite() && ratios[2] > 0.0);
        // Victim 1: moved no traffic at all — ratio 0, not fair.
        r.received_packets[1] = 0;
        r.sent_packets[1] = 0;
        let ratios = r.upload_ratios();
        assert_eq!(ratios[1], 0.0);
        // fair_fraction: victims 0 (1.0), 2 (∞), and 3 (1.0) clear the
        // bar of 1.0; only victim 1 (0.0) misses it.
        assert!((r.fair_fraction(1.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_validated() {
        let _ = report().completion_percentile(150.0);
    }
}
