//! Session driver: topology × strategy × simulated network → report.

use bytes::Bytes;
use curtain_codec::{CodecConfig, CodecKind};
use curtain_gf::ReedSolomon;
use curtain_rlnc::{BufPool, Encoder, Recoder};
use curtain_simnet::{HostId, LinkConfig, World};
use curtain_telemetry::SharedRecorder;
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

use crate::attacks::AttackMode;
use crate::metrics::SessionReport;
use crate::peer::{ClientRole, CodecBox, Msg, OutLink, Peer, Role, ServerRole};
use crate::topology::{Endpoint, TopologySpec};

/// Content distribution strategy (see crate docs for the comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Random linear network coding with recoding at every peer.
    Rlnc,
    /// Uncoded random chunk gossip (no recoding, no source coding).
    Routing,
    /// Reed–Solomon at the source, column-pure forwarding at peers.
    SourceErasure,
}

/// Parameters of a broadcast session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// The strategy under test.
    pub strategy: Strategy,
    /// Total content packets. For [`Strategy::SourceErasure`] this must be
    /// divisible by the stripe size (the common in-degree `d`).
    pub total_chunks: usize,
    /// Bytes per packet.
    pub packet_len: usize,
    /// Link latency in ticks.
    pub latency: u64,
    /// Ergodic per-packet loss probability on every link.
    pub loss: f64,
    /// Simulation budget.
    pub max_ticks: u64,
    /// Per-client attack modes (client index, mode).
    pub attacks: Vec<(usize, AttackMode)>,
    /// Stripe size for erasure (defaults to the topology's common
    /// in-degree).
    pub erasure_stripe: Option<usize>,
    /// Maximum per-packet jitter (uniform extra delay in ticks).
    pub jitter: u64,
    /// If set, the server stops transmitting at this tick — the §6/§7
    /// "self-sustaining" scenario where the source disconnects after
    /// seeding and the swarm must finish from its collective buffers.
    pub server_departs_at: Option<u64>,
    /// If set, the [`Strategy::Rlnc`] data plane is replaced by this
    /// `curtain-codec` backend (overlapping classes, sliding window, or
    /// the whole-object pipeline behind the trait). The codec's
    /// `packet_len` must match the session's.
    pub codec: Option<CodecConfig>,
}

impl SessionConfig {
    /// Creates a config with reliable unit-latency links and a generous
    /// tick budget.
    ///
    /// # Panics
    ///
    /// Panics if `total_chunks == 0` or `packet_len == 0`.
    #[must_use]
    pub fn new(strategy: Strategy, total_chunks: usize, packet_len: usize) -> Self {
        assert!(total_chunks > 0, "need at least one chunk");
        assert!(packet_len > 0, "packets need at least one byte");
        SessionConfig {
            strategy,
            total_chunks,
            packet_len,
            latency: 1,
            loss: 0.0,
            max_ticks: 10_000,
            attacks: Vec::new(),
            erasure_stripe: None,
            jitter: 0,
            server_departs_at: None,
            codec: None,
        }
    }

    /// Swaps the RLNC data plane for a pluggable `curtain-codec` backend.
    ///
    /// Only meaningful with [`Strategy::Rlnc`]; the session asserts this
    /// at run time. Window-kind codecs are clamped to cover the whole
    /// object (the session network has no feedback channel to clock the
    /// window forward).
    #[must_use]
    pub fn with_codec(mut self, codec: CodecConfig) -> Self {
        self.codec = Some(codec);
        self
    }

    /// Sets the maximum per-packet jitter.
    #[must_use]
    pub fn with_jitter(mut self, jitter: u64) -> Self {
        self.jitter = jitter;
        self
    }

    /// Makes the server leave (stop transmitting) at the given tick.
    #[must_use]
    pub fn with_server_departure(mut self, tick: u64) -> Self {
        self.server_departs_at = Some(tick);
        self
    }

    /// Sets link latency (ticks).
    ///
    /// # Panics
    ///
    /// Panics if `latency == 0`.
    #[must_use]
    pub fn with_latency(mut self, latency: u64) -> Self {
        assert!(latency > 0, "latency must be positive");
        self.latency = latency;
        self
    }

    /// Sets iid per-packet loss.
    #[must_use]
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    /// Sets the simulation budget.
    #[must_use]
    pub fn with_max_ticks(mut self, max_ticks: u64) -> Self {
        self.max_ticks = max_ticks;
        self
    }

    /// Assigns an attack mode to a client.
    #[must_use]
    pub fn with_attack(mut self, client: usize, mode: AttackMode) -> Self {
        self.attacks.push((client, mode));
        self
    }

    /// Assigns an attack mode to many clients.
    #[must_use]
    pub fn with_attacks(mut self, clients: &[usize], mode: AttackMode) -> Self {
        self.attacks.extend(clients.iter().map(|&c| (c, mode)));
        self
    }

    /// Overrides the erasure stripe size.
    #[must_use]
    pub fn with_erasure_stripe(mut self, stripe: usize) -> Self {
        self.erasure_stripe = Some(stripe);
        self
    }
}

/// A runnable broadcast session.
#[derive(Debug)]
pub struct Session;

impl Session {
    /// Runs the session and returns the report.
    ///
    /// Deterministic: identical `(topo, cfg, seed)` triples produce
    /// identical reports.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent configuration (e.g. erasure on a topology
    /// without thread labels, or stripe size not dividing `total_chunks`).
    #[must_use]
    pub fn run(topo: &TopologySpec, cfg: &SessionConfig, seed: u64) -> SessionReport {
        Self::run_traced(topo, cfg, seed, SharedRecorder::null())
    }

    /// Like [`Session::run`], with a telemetry recorder: the world stamps
    /// it with sim-ticks and emits link drops; RLNC clients emit
    /// per-packet innovative/redundant events labelled by host index
    /// (server = 0, client `i` = `i + 1`).
    ///
    /// Tracing does not perturb the run: identical `(topo, cfg, seed)`
    /// produce identical reports with or without a live recorder.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Session::run`].
    #[must_use]
    pub fn run_traced(
        topo: &TopologySpec,
        cfg: &SessionConfig,
        seed: u64,
        recorder: SharedRecorder,
    ) -> SessionReport {
        topo.assert_invariants();
        // Resolve the pluggable codec up front: it replaces the RLNC data
        // plane and needs no feedback channel, so window-kind backends are
        // widened to span the whole object.
        let codec_cfg = cfg.codec.map(|mut c| {
            assert_eq!(
                cfg.strategy,
                Strategy::Rlnc,
                "a codec backend replaces the RLNC data plane only"
            );
            assert_eq!(c.packet_len, cfg.packet_len, "codec packet_len must match session");
            if c.kind == CodecKind::Window && c.window < cfg.total_chunks {
                c = c.with_window(cfg.total_chunks);
            }
            c
        });
        // Deterministic content, distinct from the world RNG stream.
        let mut content_rng = StdRng::seed_from_u64(seed ^ 0x5eed_c0de_u64);
        let content: Vec<Vec<u8>> = (0..cfg.total_chunks)
            .map(|_| {
                let mut c = vec![0u8; cfg.packet_len];
                content_rng.fill(&mut c[..]);
                c
            })
            .collect();

        // Erasure precomputation.
        let (stripe_size, rs, stripes_shares) = if cfg.strategy == Strategy::SourceErasure {
            let stripe = cfg.erasure_stripe.unwrap_or_else(|| common_in_degree(topo));
            assert!(stripe > 0, "erasure stripe must be positive");
            assert_eq!(
                cfg.total_chunks % stripe,
                0,
                "total_chunks must be divisible by the stripe size"
            );
            let rs = ReedSolomon::new(stripe, topo.k);
            let n_stripes = cfg.total_chunks / stripe;
            let shares: Vec<Vec<Bytes>> = (0..n_stripes)
                .map(|m| {
                    rs.encode(&content[m * stripe..(m + 1) * stripe])
                        .into_iter()
                        .map(Bytes::from)
                        .collect()
                })
                .collect();
            (stripe, Some(rs), shares)
        } else {
            (0, None, Vec::new())
        };

        let mut attack_of = vec![AttackMode::Honest; topo.nodes];
        for &(client, mode) in &cfg.attacks {
            assert!(client < topo.nodes, "attack target out of range");
            attack_of[client] = mode;
        }

        // Build the world: host 0 = server, host i+1 = client i.
        let mut world: World<Peer, Msg> = World::new(seed);
        world.set_recorder(recorder.clone());
        world.set_message_sizer(Msg::wire_size);
        let server_role = match cfg.strategy {
            Strategy::Rlnc => match &codec_cfg {
                Some(ccfg) => Role::Server(ServerRole::Codec {
                    codec: CodecBox(ccfg.source(&content.concat())),
                }),
                None => Role::Server(ServerRole::Rlnc {
                    encoder: Encoder::new(0, content.clone()).expect("non-empty content"),
                }),
            },
            Strategy::Routing => Role::Server(ServerRole::Routing {
                chunks: content.iter().cloned().map(Bytes::from).collect(),
            }),
            Strategy::SourceErasure => {
                Role::Server(ServerRole::Erasure { shares: stripes_shares.clone() })
            }
        };
        world.add_actor(Peer {
            alive: true,
            attack: AttackMode::Honest,
            outs: Vec::new(),
            role: server_role,
            completed_at: Some(0),
            cursors: Vec::new(),
            gen_size: cfg.total_chunks,
            packet_len: cfg.packet_len,
            received_packets: 0,
            sent_packets: 0,
        });
        let in_degrees = topo.in_degrees();
        for i in 0..topo.nodes {
            let role = match cfg.strategy {
                Strategy::Rlnc => match &codec_cfg {
                    Some(ccfg) => {
                        let mut codec = ccfg.sink(cfg.total_chunks * cfg.packet_len);
                        if recorder.is_enabled() {
                            codec.set_telemetry(recorder.clone(), i as u64 + 1);
                        }
                        Role::Client(ClientRole::Codec { codec: CodecBox(codec) })
                    }
                    None => {
                        // Per-client pool: recoder row traffic recycles
                        // instead of allocating per packet.
                        let mut recoder = Recoder::with_pool(
                            0,
                            cfg.total_chunks,
                            cfg.packet_len,
                            BufPool::default(),
                        );
                        if recorder.is_enabled() {
                            recoder.set_telemetry(recorder.clone(), i as u64 + 1);
                        }
                        Role::Client(ClientRole::Rlnc { recoder, pinned: None })
                    }
                },
                Strategy::Routing => Role::Client(ClientRole::Routing {
                    chunks: vec![None; cfg.total_chunks],
                    have: 0,
                }),
                Strategy::SourceErasure => {
                    // A node can only ever see as many shares per stripe as
                    // it has in-streams; the stripe size must not exceed it.
                    assert!(
                        attack_of[i] != AttackMode::Honest
                            || topo.dead[i]
                            || in_degrees[i] >= stripe_size,
                        "client {i} has in-degree {} < stripe size {stripe_size}",
                        in_degrees[i]
                    );
                    Role::Client(ClientRole::Erasure {
                        shares: vec![vec![None; topo.k]; cfg.total_chunks / stripe_size],
                        needed: stripe_size,
                        stripes_done: 0,
                    })
                }
            };
            world.add_actor(Peer {
                alive: !topo.dead[i] && attack_of[i] != AttackMode::Fail,
                attack: attack_of[i],
                outs: Vec::new(),
                role,
                completed_at: None,
                cursors: Vec::new(),
                gen_size: cfg.total_chunks,
                packet_len: cfg.packet_len,
                received_packets: 0,
                sent_packets: 0,
            });
        }
        // Links.
        let link_cfg = LinkConfig::reliable(cfg.latency)
            .with_loss(cfg.loss)
            .with_jitter(cfg.jitter);
        for e in &topo.edges {
            let from = match e.from {
                Endpoint::Server => HostId(0),
                Endpoint::Node(u) => HostId(u as u32 + 1),
            };
            let to = HostId(e.to as u32 + 1);
            let link = world.add_link(from, to, link_cfg);
            let sender = world.actor_mut(from);
            sender.outs.push(OutLink { link, thread: e.thread });
            sender.cursors.push(0);
        }

        // Run until every live honest client is done or the budget runs out.
        let victims: Vec<HostId> = (0..topo.nodes)
            .filter(|&i| !topo.dead[i] && attack_of[i] == AttackMode::Honest)
            .map(|i| HostId(i as u32 + 1))
            .collect();
        let mut departed = false;
        for _ in 0..cfg.max_ticks {
            if let Some(at) = cfg.server_departs_at {
                if !departed && world.now().ticks() >= at {
                    world.actor_mut(HostId(0)).alive = false;
                    departed = true;
                }
            }
            world.tick();
            if victims.iter().all(|&h| world.actor(h).completed_at.is_some()) {
                break;
            }
        }

        // Harvest.
        let mut completed_at = Vec::with_capacity(topo.nodes);
        let mut progress = Vec::with_capacity(topo.nodes);
        let mut corrupted = vec![false; topo.nodes];
        let mut excluded = Vec::with_capacity(topo.nodes);
        let mut received_packets = Vec::with_capacity(topo.nodes);
        let mut sent_packets = Vec::with_capacity(topo.nodes);
        for i in 0..topo.nodes {
            let peer = world.actor(HostId(i as u32 + 1));
            completed_at.push(peer.completed_at);
            progress.push(peer.progress());
            excluded.push(topo.dead[i] || attack_of[i].is_adversarial());
            received_packets.push(peer.received_packets);
            sent_packets.push(peer.sent_packets);
            if peer.completed_at.is_some() {
                corrupted[i] = !content_matches(peer, &content, rs.as_ref(), stripe_size);
            }
        }
        SessionReport {
            completed_at,
            progress,
            corrupted,
            excluded,
            net: world.stats(),
            ticks_run: world.now().ticks(),
            received_packets,
            sent_packets,
        }
    }
}

/// The (asserted-common) in-degree of live honest nodes.
fn common_in_degree(topo: &TopologySpec) -> usize {
    let degrees = topo.in_degrees();
    let live: Vec<usize> = (0..topo.nodes)
        .filter(|&i| !topo.dead[i])
        .map(|i| degrees[i])
        .collect();
    let d = live.first().copied().unwrap_or(0);
    assert!(
        live.iter().all(|&x| x == d),
        "erasure requires a uniform in-degree; found {live:?}"
    );
    d
}

/// Verifies a completed peer actually recovered the original content.
fn content_matches(
    peer: &Peer,
    content: &[Vec<u8>],
    rs: Option<&ReedSolomon>,
    stripe_size: usize,
) -> bool {
    match &peer.role {
        Role::Server(_) => true,
        Role::Client(ClientRole::Rlnc { recoder, .. }) => match recoder.recover() {
            Some(got) => got == content,
            None => false,
        },
        Role::Client(ClientRole::Codec { codec }) => {
            codec.0.decoded().is_some_and(|got| got == content.concat())
        }
        Role::Client(ClientRole::Routing { chunks, .. }) => chunks
            .iter()
            .zip(content)
            .all(|(got, want)| got.as_deref() == Some(want.as_slice())),
        Role::Client(ClientRole::Erasure { shares, needed, .. }) => {
            let rs = rs.expect("erasure session has an RS code");
            for (m, stripe_shares) in shares.iter().enumerate() {
                let got: Vec<(usize, Vec<u8>)> = stripe_shares
                    .iter()
                    .enumerate()
                    .filter_map(|(c, s)| s.as_ref().map(|b| (c, b.to_vec())))
                    .take(*needed)
                    .collect();
                if got.len() < *needed {
                    return false;
                }
                match rs.decode(&got) {
                    Ok(decoded) => {
                        if decoded != content[m * stripe_size..(m + 1) * stripe_size] {
                            return false;
                        }
                    }
                    Err(_) => return false,
                }
            }
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use curtain_overlay::{CurtainNetwork, OverlayConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn curtain(k: usize, d: usize, n: usize, seed: u64) -> TopologySpec {
        let mut net = CurtainNetwork::new(OverlayConfig::new(k, d)).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..n {
            net.join(&mut rng);
        }
        TopologySpec::from_curtain(&net)
    }

    #[test]
    fn rlnc_completes_everyone() {
        let topo = curtain(8, 2, 25, 1);
        let cfg = SessionConfig::new(Strategy::Rlnc, 16, 32).with_max_ticks(2000);
        let report = Session::run(&topo, &cfg, 42);
        assert_eq!(report.completion_fraction(), 1.0);
        assert_eq!(report.corruption_fraction(), 0.0);
        assert!(report.mean_completion_tick().unwrap() >= 16.0 / 2.0);
    }

    #[test]
    fn codec_backends_complete_sessions_uncorrupted() {
        let topo = curtain(8, 2, 25, 1);
        for kind in [CodecKind::Rlnc, CodecKind::Overlap, CodecKind::Window] {
            let cfg = SessionConfig::new(Strategy::Rlnc, 16, 32)
                .with_codec(CodecConfig::new(kind, 8, 32))
                .with_max_ticks(3000);
            let report = Session::run(&topo, &cfg, 42);
            assert_eq!(report.completion_fraction(), 1.0, "{kind} should finish");
            assert_eq!(report.corruption_fraction(), 0.0, "{kind} should decode cleanly");
        }
    }

    #[test]
    fn codec_backends_survive_loss() {
        let topo = curtain(8, 3, 15, 8);
        for kind in [CodecKind::Rlnc, CodecKind::Overlap, CodecKind::Window] {
            let cfg = SessionConfig::new(Strategy::Rlnc, 12, 16)
                .with_codec(CodecConfig::new(kind, 6, 16))
                .with_loss(0.2)
                .with_max_ticks(6000);
            let report = Session::run(&topo, &cfg, 9);
            assert_eq!(report.completion_fraction(), 1.0, "{kind} under loss");
            assert_eq!(report.corruption_fraction(), 0.0);
        }
    }

    #[test]
    fn routing_completes_but_slower_than_rlnc() {
        let topo = curtain(8, 2, 25, 2);
        let rlnc = Session::run(
            &topo,
            &SessionConfig::new(Strategy::Rlnc, 16, 32).with_max_ticks(4000),
            3,
        );
        let routing = Session::run(
            &topo,
            &SessionConfig::new(Strategy::Routing, 16, 32).with_max_ticks(4000),
            3,
        );
        assert_eq!(rlnc.completion_fraction(), 1.0);
        // Coupon-collector: routing needs strictly more time on average.
        let t_rlnc = rlnc.mean_completion_tick().unwrap();
        // `None` (routing never finished) also counts as "slower".
        if let Some(t_routing) = routing.mean_completion_tick() {
            assert!(
                t_routing > t_rlnc,
                "routing {t_routing} should be slower than rlnc {t_rlnc}"
            );
        }
    }

    #[test]
    fn erasure_completes_on_healthy_network() {
        let topo = curtain(8, 2, 20, 4);
        let cfg = SessionConfig::new(Strategy::SourceErasure, 16, 32).with_max_ticks(4000);
        let report = Session::run(&topo, &cfg, 5);
        assert_eq!(report.completion_fraction(), 1.0);
        assert_eq!(report.corruption_fraction(), 0.0);
    }

    #[test]
    fn erasure_cannot_reroute_around_failures_but_rlnc_can() {
        // Kill a very early node: its whole column subtree loses that share.
        let mut topo = curtain(6, 2, 40, 6);
        topo.kill(&[0, 1]);
        let erasure = Session::run(
            &topo,
            &SessionConfig::new(Strategy::SourceErasure, 16, 32).with_max_ticks(4000),
            7,
        );
        let rlnc = Session::run(
            &topo,
            &SessionConfig::new(Strategy::Rlnc, 16, 32).with_max_ticks(4000),
            7,
        );
        // RLNC: every node with min-cut >= 1 eventually completes (packets
        // keep flowing and remain innovative across any cut).
        assert!(rlnc.completion_fraction() > erasure.completion_fraction(),
            "rlnc {} vs erasure {}", rlnc.completion_fraction(), erasure.completion_fraction());
    }

    #[test]
    fn loss_delays_but_does_not_prevent_rlnc() {
        let topo = curtain(8, 3, 15, 8);
        let clean = Session::run(
            &topo,
            &SessionConfig::new(Strategy::Rlnc, 12, 16).with_max_ticks(6000),
            9,
        );
        let lossy = Session::run(
            &topo,
            &SessionConfig::new(Strategy::Rlnc, 12, 16)
                .with_loss(0.2)
                .with_max_ticks(6000),
            9,
        );
        assert_eq!(clean.completion_fraction(), 1.0);
        assert_eq!(lossy.completion_fraction(), 1.0);
        assert!(
            lossy.mean_completion_tick().unwrap() > clean.mean_completion_tick().unwrap()
        );
    }

    #[test]
    fn determinism() {
        let topo = curtain(8, 2, 15, 10);
        let cfg = SessionConfig::new(Strategy::Rlnc, 8, 16).with_loss(0.1);
        let a = Session::run(&topo, &cfg, 11);
        let b = Session::run(&topo, &cfg, 11);
        assert_eq!(a.completed_at, b.completed_at);
        assert_eq!(a.net, b.net);
    }

    #[test]
    fn tracing_captures_events_without_perturbing_the_run() {
        use curtain_telemetry::{Event, MemorySink, SharedRecorder};

        let topo = curtain(8, 2, 15, 10);
        let cfg = SessionConfig::new(Strategy::Rlnc, 8, 16).with_loss(0.1);
        let untraced = Session::run(&topo, &cfg, 11);
        let sink = MemorySink::new();
        let traced = Session::run_traced(&topo, &cfg, 11, SharedRecorder::new(sink.clone()));
        assert_eq!(untraced.completed_at, traced.completed_at);
        assert_eq!(untraced.net, traced.net);

        let events = sink.events();
        let innovative = events
            .iter()
            .filter(|(_, e)| matches!(e, Event::PacketInnovative { .. }))
            .count() as u64;
        let drops = events
            .iter()
            .filter(|(_, e)| matches!(e, Event::LinkDrop { .. }))
            .count() as u64;
        // Innovative receptions = total rank accumulated across clients;
        // with a full run that is g per client. Every drop is traced.
        if traced.completion_fraction() == 1.0 {
            assert_eq!(innovative, 8 * 15);
        } else {
            assert!(innovative > 0);
        }
        assert_eq!(drops, traced.net.lost + traced.net.capacity_drops);
        assert!(drops > 0, "a 10% loss run should trace some drops");
        // Timestamps are sim-ticks, monotone over the event stream.
        assert!(events.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(events.last().unwrap().0 <= traced.ticks_run);
    }

    #[test]
    fn byte_counters_reflect_wire_sizes() {
        let topo = curtain(8, 2, 10, 24);
        let cfg = SessionConfig::new(Strategy::Rlnc, 4, 16).with_max_ticks(1000);
        let report = Session::run(&topo, &cfg, 25);
        // Every RLNC message is 4 + g + packet_len = 24 bytes on the wire.
        assert_eq!(report.net.bytes_offered, report.net.offered * 24);
        assert_eq!(report.net.bytes_delivered, report.net.delivered * 24);
        assert_eq!(report.net.per_link.len(), topo.edges.len());
        let per_link_offered: u64 = report.net.per_link.iter().map(|l| l.offered).sum();
        assert_eq!(per_link_offered, report.net.offered);
    }

    #[test]
    fn failed_nodes_are_excluded_and_stall_descendants_only() {
        let mut topo = curtain(8, 2, 30, 12);
        topo.kill(&[5]);
        let report = Session::run(
            &topo,
            &SessionConfig::new(Strategy::Rlnc, 8, 16).with_max_ticks(3000),
            13,
        );
        assert!(report.excluded[5]);
        assert!(report.completed_at[5].is_none());
        // Min-cut of every live node is >= 1 here, so everyone completes.
        assert_eq!(report.completion_fraction(), 1.0);
    }

    #[test]
    fn jamming_corrupts_downstream() {
        let topo = curtain(6, 2, 30, 14);
        // Make several early nodes jammers to poison the body of the curtain.
        let cfg = SessionConfig::new(Strategy::Rlnc, 8, 16)
            .with_attacks(&[0, 1, 2], AttackMode::Jamming)
            .with_max_ticks(3000);
        let report = Session::run(&topo, &cfg, 15);
        assert!(
            report.corruption_fraction() > 0.3,
            "jamming should poison many nodes, got {}",
            report.corruption_fraction()
        );
    }

    #[test]
    fn entropy_destruction_stalls_but_does_not_corrupt() {
        let topo = curtain(4, 2, 30, 16);
        let cfg = SessionConfig::new(Strategy::Rlnc, 16, 16)
            .with_attacks(&[0, 1, 2, 3], AttackMode::EntropyDestruction)
            .with_max_ticks(800);
        let report = Session::run(&topo, &cfg, 17);
        assert_eq!(report.corruption_fraction(), 0.0, "destroyers never corrupt");
        assert!(
            report.completion_fraction() < 1.0,
            "destroyers at the top of a k=4 curtain should stall someone"
        );
    }

    #[test]
    fn server_departure_strands_late_ranks_without_buffered_peers() {
        // With a single deep curtain and an early departure, nodes keep
        // exchanging — the collective span caps what anyone can reach.
        let topo = curtain(8, 2, 30, 20);
        let total = 16;
        // Server leaves absurdly early: nobody can have the full span yet,
        // so nobody completes even with infinite time.
        let early = Session::run(
            &topo,
            &SessionConfig::new(Strategy::Rlnc, total, 32)
                .with_server_departure(3)
                .with_max_ticks(2000),
            21,
        );
        assert!(
            early.completion_fraction() < 1.0,
            "leaving at tick 3 cannot have seeded rank {total}"
        );
        // Server leaves after the swarm collectively holds everything:
        // the swarm self-sustains to 100%.
        let late = Session::run(
            &topo,
            &SessionConfig::new(Strategy::Rlnc, total, 32)
                .with_server_departure(200)
                .with_max_ticks(4000),
            21,
        );
        assert_eq!(late.completion_fraction(), 1.0, "swarm should self-sustain");
    }

    #[test]
    fn jitter_spreads_completion_without_breaking_it() {
        let topo = curtain(8, 2, 20, 22);
        let base = SessionConfig::new(Strategy::Rlnc, 12, 32).with_max_ticks(3000);
        let smooth = Session::run(&topo, &base, 23);
        let jittery = Session::run(&topo, &base.clone().with_jitter(5), 23);
        assert_eq!(smooth.completion_fraction(), 1.0);
        assert_eq!(jittery.completion_fraction(), 1.0);
        assert!(
            jittery.mean_completion_tick().unwrap() >= smooth.mean_completion_tick().unwrap()
        );
    }

    #[test]
    fn forest_topology_runs_rlnc_and_erasure() {
        // The §6 SplitStream-style forest: d trees = d threads; erasure
        // stripes one share per tree ([10, 4]); RLNC recodes across them.
        use curtain_overlay::forest::ForestOverlay;
        let mut f = ForestOverlay::new(3, 6);
        for _ in 0..40 {
            f.join();
        }
        let topo = TopologySpec::from_forest(&f);
        for strategy in [Strategy::Rlnc, Strategy::SourceErasure] {
            let report = Session::run(
                &topo,
                &SessionConfig::new(strategy, 18, 32).with_max_ticks(3000),
                30,
            );
            assert_eq!(report.completion_fraction(), 1.0, "{strategy:?} on forest");
            assert_eq!(report.corruption_fraction(), 0.0);
        }
        // Kill one interior node: erasure loses that stripe's subtree,
        // RLNC reroutes through the other trees.
        let mut topo = TopologySpec::from_forest(&f);
        topo.kill(&[0]);
        let erasure = Session::run(
            &topo,
            &SessionConfig::new(Strategy::SourceErasure, 18, 32).with_max_ticks(3000),
            31,
        );
        let rlnc = Session::run(
            &topo,
            &SessionConfig::new(Strategy::Rlnc, 18, 32).with_max_ticks(3000),
            31,
        );
        assert!(
            rlnc.completion_fraction() >= erasure.completion_fraction(),
            "rlnc {} vs erasure {}",
            rlnc.completion_fraction(),
            erasure.completion_fraction()
        );
    }

    #[test]
    #[should_panic(expected = "divisible by the stripe size")]
    fn erasure_stripe_must_divide() {
        let topo = curtain(8, 3, 5, 18);
        let cfg = SessionConfig::new(Strategy::SourceErasure, 16, 8);
        let _ = Session::run(&topo, &cfg, 19);
    }
}
