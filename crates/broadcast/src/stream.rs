//! Synchronous (live) streaming: sequential generations with play-out
//! deadlines.
//!
//! §1 distinguishes *synchronous* communication — "broadcasting a live or
//! pre-recorded television event to a set of receivers at nearly the same
//! time" — from file download. A stream is a sequence of generations; the
//! server serves each for a fixed window and then moves on, whether or not
//! everyone finished. A viewer *stalls* on a generation it could not
//! decode by its play-out deadline.
//!
//! Forwarding policy at peers: recode from the **newest** generation with
//! positive rank, falling back one generation when the newest has nothing
//! yet — the natural live-edge policy (stale segments are not worth
//! bandwidth once play-out passed them).

use std::collections::HashMap;

use curtain_codec::{BroadcastCodec, CodecConfig, CodecKind};
use curtain_rlnc::{BufPool, CodedPacket, Encoder, GenerationId, Recoder};
use curtain_simnet::{Actor, Context, HostId, LinkConfig, World};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

use crate::topology::{Endpoint, TopologySpec};

/// Parameters of a streaming session.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Number of generations (segments) in the stream.
    pub generations: usize,
    /// Packets per generation.
    pub generation_size: usize,
    /// Bytes per packet.
    pub packet_len: usize,
    /// Server transmission window per generation, in ticks.
    pub ticks_per_generation: u64,
    /// Extra slack a viewer gets past the server window before a segment
    /// counts as stalled (client-side buffering).
    pub playout_slack: u64,
    /// Link latency.
    pub latency: u64,
    /// Per-packet loss.
    pub loss: f64,
    /// Codec backend serving the stream. [`CodecKind::Rlnc`] keeps the
    /// original per-generation pipeline; `Overlap`/`Window` route the
    /// session through `curtain-codec`. Defaults to the `CURTAIN_CODEC`
    /// environment selector.
    pub codec: CodecKind,
}

impl StreamConfig {
    /// A stream of `generations × generation_size` packets with sensible
    /// defaults: the server window is sized for rate `d` delivery plus
    /// margin.
    ///
    /// # Panics
    ///
    /// Panics on zero sizes.
    #[must_use]
    pub fn new(generations: usize, generation_size: usize, packet_len: usize, d: usize) -> Self {
        assert!(generations > 0 && generation_size > 0 && packet_len > 0 && d > 0);
        let ticks = (generation_size as u64).div_ceil(d as u64) + 4;
        StreamConfig {
            generations,
            generation_size,
            packet_len,
            ticks_per_generation: ticks,
            playout_slack: 3 * ticks,
            latency: 1,
            loss: 0.0,
            codec: CodecKind::from_env(),
        }
    }

    /// Selects the codec backend for the session.
    #[must_use]
    pub fn with_codec(mut self, codec: CodecKind) -> Self {
        self.codec = codec;
        self
    }

    /// Sets the loss probability.
    #[must_use]
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    /// Sets the play-out slack.
    #[must_use]
    pub fn with_playout_slack(mut self, slack: u64) -> Self {
        self.playout_slack = slack;
        self
    }

    /// Total ticks the session runs (all windows plus drain time).
    #[must_use]
    pub fn total_ticks(&self) -> u64 {
        self.generations as u64 * self.ticks_per_generation + self.playout_slack + 20
    }
}

/// Per-viewer outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewerReport {
    /// Tick the first generation completed (join-to-picture latency);
    /// `None` = never.
    pub startup_tick: Option<u64>,
    /// Segments decoded by their deadline.
    pub on_time: usize,
    /// Segments decoded late or never — play-out stalls.
    pub stalls: usize,
    /// Segments fully decoded by the end (late ones included).
    pub decoded: usize,
}

/// Whole-session outcome.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Per-viewer reports, indexed like the topology's clients.
    pub viewers: Vec<ViewerReport>,
    /// Generations in the stream.
    pub generations: usize,
    /// Dead clients (excluded from aggregates).
    pub excluded: Vec<bool>,
}

impl StreamReport {
    /// Mean fraction of segments played on time, over live viewers.
    #[must_use]
    pub fn continuity(&self) -> f64 {
        let mut acc = 0.0;
        let mut n = 0;
        for (v, &dead) in self.viewers.iter().zip(&self.excluded) {
            if dead {
                continue;
            }
            acc += v.on_time as f64 / self.generations as f64;
            n += 1;
        }
        acc / f64::from(n.max(1) as u32)
    }

    /// Fraction of live viewers with zero stalls.
    #[must_use]
    pub fn flawless_fraction(&self) -> f64 {
        let mut flawless = 0;
        let mut n = 0;
        for (v, &dead) in self.viewers.iter().zip(&self.excluded) {
            if dead {
                continue;
            }
            if v.stalls == 0 {
                flawless += 1;
            }
            n += 1;
        }
        flawless as f64 / f64::from(n.max(1) as u32)
    }

    /// Mean startup latency over live viewers that ever started.
    #[must_use]
    pub fn mean_startup(&self) -> Option<f64> {
        let starts: Vec<f64> = self
            .viewers
            .iter()
            .zip(&self.excluded)
            .filter(|(_, &dead)| !dead)
            .filter_map(|(v, _)| v.startup_tick.map(|t| t as f64))
            .collect();
        if starts.is_empty() {
            None
        } else {
            Some(starts.iter().sum::<f64>() / starts.len() as f64)
        }
    }
}

/// Actor state for the streaming session.
enum StreamRole {
    Server { encoders: Vec<Encoder> },
    Viewer { recoders: HashMap<GenerationId, Recoder> },
}

struct StreamPeer {
    alive: bool,
    role: StreamRole,
    outs: Vec<curtain_simnet::LinkId>,
    /// Tick each generation completed, by generation index.
    completed: Vec<Option<u64>>,
    cfg: StreamShape,
    /// Shared packet-buffer pool: every generation's recoder rows recycle
    /// through here, so the sliding window allocates only while warming up.
    pool: BufPool,
}

#[derive(Clone, Copy)]
struct StreamShape {
    generations: usize,
    generation_size: usize,
    packet_len: usize,
    ticks_per_generation: u64,
}

impl StreamPeer {
    fn current_window(&self, now: u64) -> usize {
        ((now / self.cfg.ticks_per_generation) as usize).min(self.cfg.generations - 1)
    }
}

impl Actor<CodedPacket> for StreamPeer {
    fn on_message(&mut self, ctx: &mut Context<'_, CodedPacket>, _from: HostId, msg: CodedPacket) {
        if !self.alive {
            return;
        }
        let StreamRole::Viewer { recoders } = &mut self.role else {
            return; // server ignores inbound
        };
        let generation = msg.generation();
        if generation as usize >= self.cfg.generations {
            return;
        }
        let recoder = recoders.entry(generation).or_insert_with(|| {
            Recoder::with_pool(
                generation,
                self.cfg.generation_size,
                self.cfg.packet_len,
                self.pool.clone(),
            )
        });
        if recoder.push(msg).unwrap_or(false)
            && recoder.is_complete()
            && self.completed[generation as usize].is_none()
        {
            self.completed[generation as usize] = Some(ctx.now().ticks());
        }
    }

    fn on_tick(&mut self, ctx: &mut Context<'_, CodedPacket>) {
        if !self.alive {
            return;
        }
        let now = ctx.now().ticks();
        let window = self.current_window(now);
        match &mut self.role {
            StreamRole::Server { encoders } => {
                for i in 0..self.outs.len() {
                    let p = encoders[window].encode(ctx.rng());
                    ctx.send(self.outs[i], p);
                }
            }
            StreamRole::Viewer { recoders } => {
                // Live-edge policy: newest generation with rank, else the
                // previous one (covers the window hand-off).
                for i in 0..self.outs.len() {
                    let pick = (0..=window)
                        .rev()
                        .take(2)
                        .find(|g| {
                            recoders
                                .get(&(*g as GenerationId))
                                .is_some_and(|r| r.rank() > 0)
                        })
                        .or_else(|| {
                            (0..=window).rev().find(|g| {
                                recoders
                                    .get(&(*g as GenerationId))
                                    .is_some_and(|r| r.rank() > 0)
                            })
                        });
                    let Some(g) = pick else { continue };
                    let recoder = &recoders[&(g as GenerationId)];
                    if let Some(p) = recoder.recode(ctx.rng()) {
                        ctx.send(self.outs[i], p);
                    }
                }
            }
        }
    }
}

/// Actor state when a `curtain-codec` backend drives the stream: one
/// [`BroadcastCodec`] per peer replaces the per-generation encoder/recoder
/// maps, and segment completion is read off the codec's in-order delivery
/// progress (segment `i` is done once `(i+1)·g` packets are deliverable).
struct CodecStreamPeer {
    alive: bool,
    is_server: bool,
    codec: Box<dyn BroadcastCodec>,
    outs: Vec<curtain_simnet::LinkId>,
    completed: Vec<Option<u64>>,
    cfg: StreamShape,
}

impl Actor<CodedPacket> for CodecStreamPeer {
    fn on_message(&mut self, ctx: &mut Context<'_, CodedPacket>, _from: HostId, msg: CodedPacket) {
        if !self.alive || self.is_server {
            return;
        }
        // Malformed or stale packets are dropped, matching the legacy path.
        let _ = self.codec.ingest(msg);
        let now = ctx.now().ticks();
        // Segments complete independently: a stalled segment must not mask
        // later ones (viewers skip it and play on, as the legacy
        // per-generation pipeline does).
        let g = self.cfg.generation_size as u64;
        for seg in 0..self.cfg.generations {
            if self.completed[seg].is_none()
                && self.codec.is_range_decoded(seg as u64 * g, (seg as u64 + 1) * g)
            {
                self.completed[seg] = Some(now);
            }
        }
    }

    fn on_tick(&mut self, ctx: &mut Context<'_, CodedPacket>) {
        if !self.alive {
            return;
        }
        let now = ctx.now().ticks();
        if self.is_server {
            // Release source packets at the play-out rate: during window w
            // the first (w+1)·g packets are cut.
            let window = ((now / self.cfg.ticks_per_generation) as usize)
                .min(self.cfg.generations - 1);
            self.codec.advance_to(((window + 1) * self.cfg.generation_size) as u64);
            for i in 0..self.outs.len() {
                if let Some(p) = self.codec.encode(ctx.rng()) {
                    ctx.send(self.outs[i], p);
                }
            }
        } else {
            for i in 0..self.outs.len() {
                if let Some(p) = self.codec.recode(ctx.rng()) {
                    ctx.send(self.outs[i], p);
                }
            }
        }
    }
}

/// A live-streaming session over a static topology snapshot.
#[derive(Debug)]
pub struct StreamSession;

impl StreamSession {
    /// Runs the stream and reports per-viewer continuity.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent configuration.
    #[must_use]
    pub fn run(topo: &TopologySpec, cfg: &StreamConfig, seed: u64) -> StreamReport {
        topo.assert_invariants();
        if cfg.codec != CodecKind::Rlnc {
            return Self::run_codec(topo, cfg, seed);
        }
        let shape = StreamShape {
            generations: cfg.generations,
            generation_size: cfg.generation_size,
            packet_len: cfg.packet_len,
            ticks_per_generation: cfg.ticks_per_generation,
        };
        // Deterministic content.
        let mut content_rng = StdRng::seed_from_u64(seed ^ 0x57e4);
        let encoders: Vec<Encoder> = (0..cfg.generations)
            .map(|g| {
                let packets: Vec<Vec<u8>> = (0..cfg.generation_size)
                    .map(|_| {
                        let mut p = vec![0u8; cfg.packet_len];
                        content_rng.fill(&mut p[..]);
                        p
                    })
                    .collect();
                Encoder::new(g as GenerationId, packets).expect("non-empty generation")
            })
            .collect();

        let mut world: World<StreamPeer, CodedPacket> = World::new(seed);
        world.add_actor(StreamPeer {
            alive: true,
            role: StreamRole::Server { encoders },
            outs: Vec::new(),
            completed: vec![None; cfg.generations],
            cfg: shape,
            pool: BufPool::default(),
        });
        for i in 0..topo.nodes {
            world.add_actor(StreamPeer {
                alive: !topo.dead[i],
                role: StreamRole::Viewer { recoders: HashMap::new() },
                outs: Vec::new(),
                completed: vec![None; cfg.generations],
                cfg: shape,
                pool: BufPool::default(),
            });
        }
        let link_cfg = LinkConfig::reliable(cfg.latency).with_loss(cfg.loss);
        for e in &topo.edges {
            let from = match e.from {
                Endpoint::Server => HostId(0),
                Endpoint::Node(u) => HostId(u as u32 + 1),
            };
            let to = HostId(e.to as u32 + 1);
            let link = world.add_link(from, to, link_cfg);
            world.actor_mut(from).outs.push(link);
        }
        world.run_ticks(cfg.total_ticks());

        // Harvest: deadlines are per-generation.
        let deadline =
            |g: usize| (g as u64 + 1) * cfg.ticks_per_generation + cfg.playout_slack;
        let mut viewers = Vec::with_capacity(topo.nodes);
        for i in 0..topo.nodes {
            let peer = world.actor(HostId(i as u32 + 1));
            let mut on_time = 0;
            let mut decoded = 0;
            for (g, done) in peer.completed.iter().enumerate() {
                match done {
                    Some(t) if *t <= deadline(g) => {
                        on_time += 1;
                        decoded += 1;
                    }
                    Some(_) => decoded += 1,
                    None => {}
                }
            }
            viewers.push(ViewerReport {
                startup_tick: peer.completed[0],
                on_time,
                stalls: cfg.generations - on_time,
                decoded,
            });
        }
        StreamReport {
            viewers,
            generations: cfg.generations,
            excluded: topo.dead.clone(),
        }
    }

    /// Codec-backed variant of [`StreamSession::run`]: the same topology,
    /// link model, deadlines, and harvest, but every peer speaks a
    /// [`BroadcastCodec`] in live mode instead of the fixed per-generation
    /// pipeline.
    fn run_codec(topo: &TopologySpec, cfg: &StreamConfig, seed: u64) -> StreamReport {
        let shape = StreamShape {
            generations: cfg.generations,
            generation_size: cfg.generation_size,
            packet_len: cfg.packet_len,
            ticks_per_generation: cfg.ticks_per_generation,
        };
        // Same deterministic content stream as the legacy path.
        let mut content_rng = StdRng::seed_from_u64(seed ^ 0x57e4);
        let mut data = vec![0u8; cfg.generations * cfg.generation_size * cfg.packet_len];
        content_rng.fill(&mut data[..]);
        let codec_cfg =
            CodecConfig::new(cfg.codec, cfg.generation_size, cfg.packet_len).with_live(true);

        let mut world: World<CodecStreamPeer, CodedPacket> = World::new(seed);
        world.add_actor(CodecStreamPeer {
            alive: true,
            is_server: true,
            codec: codec_cfg.source(&data),
            outs: Vec::new(),
            completed: vec![None; cfg.generations],
            cfg: shape,
        });
        for i in 0..topo.nodes {
            world.add_actor(CodecStreamPeer {
                alive: !topo.dead[i],
                is_server: false,
                codec: codec_cfg.sink(data.len()),
                outs: Vec::new(),
                completed: vec![None; cfg.generations],
                cfg: shape,
            });
        }
        let link_cfg = LinkConfig::reliable(cfg.latency).with_loss(cfg.loss);
        for e in &topo.edges {
            let from = match e.from {
                Endpoint::Server => HostId(0),
                Endpoint::Node(u) => HostId(u as u32 + 1),
            };
            let to = HostId(e.to as u32 + 1);
            let link = world.add_link(from, to, link_cfg);
            world.actor_mut(from).outs.push(link);
        }
        world.run_ticks(cfg.total_ticks());

        let deadline =
            |g: usize| (g as u64 + 1) * cfg.ticks_per_generation + cfg.playout_slack;
        let mut viewers = Vec::with_capacity(topo.nodes);
        for i in 0..topo.nodes {
            let peer = world.actor(HostId(i as u32 + 1));
            let mut on_time = 0;
            let mut decoded = 0;
            for (g, done) in peer.completed.iter().enumerate() {
                match done {
                    Some(t) if *t <= deadline(g) => {
                        on_time += 1;
                        decoded += 1;
                    }
                    Some(_) => decoded += 1,
                    None => {}
                }
            }
            viewers.push(ViewerReport {
                startup_tick: peer.completed[0],
                on_time,
                stalls: cfg.generations - on_time,
                decoded,
            });
        }
        StreamReport {
            viewers,
            generations: cfg.generations,
            excluded: topo.dead.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use curtain_overlay::{CurtainNetwork, OverlayConfig};

    fn curtain(k: usize, d: usize, n: usize, seed: u64) -> TopologySpec {
        let mut net = CurtainNetwork::new(OverlayConfig::new(k, d)).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..n {
            net.join(&mut rng);
        }
        TopologySpec::from_curtain(&net)
    }

    #[test]
    fn healthy_stream_plays_without_stalls() {
        let topo = curtain(12, 3, 30, 1);
        let cfg = StreamConfig::new(6, 12, 64, 3);
        let report = StreamSession::run(&topo, &cfg, 2);
        assert_eq!(report.flawless_fraction(), 1.0, "continuity {}", report.continuity());
        assert_eq!(report.continuity(), 1.0);
        assert!(report.mean_startup().unwrap() < cfg.ticks_per_generation as f64 * 3.0);
    }

    #[test]
    fn startup_latency_grows_with_depth() {
        // A deep curtain: later rows start later.
        let topo = curtain(4, 2, 60, 3);
        let cfg = StreamConfig::new(4, 8, 32, 2).with_playout_slack(500);
        let report = StreamSession::run(&topo, &cfg, 4);
        let first = report.viewers[1].startup_tick.unwrap();
        let last = report.viewers[55].startup_tick.unwrap();
        assert!(
            last > first,
            "deep viewer ({last}) should start after shallow ({first})"
        );
    }

    #[test]
    fn loss_causes_stalls_at_tight_deadlines() {
        let topo = curtain(8, 2, 40, 5);
        let tight = StreamConfig::new(8, 12, 64, 2).with_loss(0.15).with_playout_slack(2);
        let lossy = StreamSession::run(&topo, &tight, 6);
        let clean_cfg = StreamConfig::new(8, 12, 64, 2).with_playout_slack(2);
        let clean = StreamSession::run(&topo, &clean_cfg, 6);
        assert!(
            lossy.continuity() < clean.continuity(),
            "loss should hurt continuity: {} vs {}",
            lossy.continuity(),
            clean.continuity()
        );
    }

    #[test]
    fn dead_nodes_are_excluded() {
        let mut topo = curtain(8, 2, 20, 7);
        topo.kill(&[3, 4]);
        let cfg = StreamConfig::new(3, 8, 32, 2);
        let report = StreamSession::run(&topo, &cfg, 8);
        assert!(report.excluded[3] && report.excluded[4]);
        // Aggregates ignore them.
        assert!(report.continuity() > 0.0);
    }

    #[test]
    fn overlap_codec_streams_without_stalls() {
        let topo = curtain(12, 3, 30, 1);
        let cfg = StreamConfig::new(6, 12, 64, 3).with_codec(CodecKind::Overlap);
        let report = StreamSession::run(&topo, &cfg, 2);
        assert_eq!(report.continuity(), 1.0, "flawless {}", report.flawless_fraction());
        assert!(report.mean_startup().is_some());
    }

    #[test]
    fn window_codec_streams_without_stalls() {
        let topo = curtain(12, 3, 30, 1);
        let cfg = StreamConfig::new(6, 12, 64, 3).with_codec(CodecKind::Window);
        let report = StreamSession::run(&topo, &cfg, 2);
        assert_eq!(report.continuity(), 1.0, "flawless {}", report.flawless_fraction());
    }

    #[test]
    fn codec_streams_tolerate_loss_with_slack() {
        let topo = curtain(10, 3, 24, 11);
        for kind in [CodecKind::Overlap, CodecKind::Window] {
            let cfg = StreamConfig::new(5, 8, 32, 3)
                .with_loss(0.1)
                .with_playout_slack(200)
                .with_codec(kind);
            let report = StreamSession::run(&topo, &cfg, 12);
            assert!(
                report.continuity() > 0.9,
                "{kind} continuity {} too low under mild loss",
                report.continuity()
            );
        }
    }

    #[test]
    fn larger_slack_never_reduces_continuity() {
        let topo = curtain(8, 2, 30, 9);
        let tight = StreamConfig::new(6, 10, 32, 2).with_loss(0.1).with_playout_slack(3);
        let loose = StreamConfig::new(6, 10, 32, 2).with_loss(0.1).with_playout_slack(60);
        let a = StreamSession::run(&topo, &tight, 10);
        let b = StreamSession::run(&topo, &loose, 10);
        assert!(b.continuity() >= a.continuity());
    }
}
