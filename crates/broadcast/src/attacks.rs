//! Malicious-member models from §5 and §7.
//!
//! The paper distinguishes three attacks by members (not outsiders):
//!
//! * **Failure attacks** — adversaries join and then simply fail, perhaps
//!   simultaneously ("cut-off the power … at the same time"). §5 proves
//!   these are no worse than random failures as long as row positions are
//!   random.
//! * **Entropy-destruction attacks** — adversaries "simply pass on trivial
//!   linear combinations of packets": they occupy `d` out-threads but
//!   contribute at most one dimension to every descendant. Harder to
//!   detect than failing (§7) because traffic keeps flowing.
//! * **Jamming attacks** — adversaries inject random packets. "The random
//!   packets have the potential, after network coding, of contaminating
//!   almost every packet that almost every user receives" (§7). The paper
//!   leaves homomorphic signatures as an open problem; experiment E12
//!   quantifies the contamination.

use rand::Rng;

/// Per-node behaviour during a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AttackMode {
    /// Normal protocol-following node.
    #[default]
    Honest,
    /// Fails at session start (§5 failure attack).
    Fail,
    /// Forwards only (rescaled copies of) the first packet it ever
    /// received — a trivial linear combination (§7).
    EntropyDestruction,
    /// Forwards uniformly random coefficient vectors with uniformly random
    /// payloads (§7 jamming).
    Jamming,
}

impl AttackMode {
    /// True iff this node should be excluded from victim statistics.
    #[must_use]
    pub fn is_adversarial(self) -> bool {
        self != AttackMode::Honest
    }
}

/// Selects a uniformly random cohort of `fraction·n` client indices.
///
/// # Panics
///
/// Panics if `fraction` is outside `[0, 1]`.
#[must_use]
pub fn pick_cohort<R: Rng + ?Sized>(n: usize, fraction: f64, rng: &mut R) -> Vec<usize> {
    assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
    let count = ((n as f64 * fraction).round() as usize).min(n);
    let mut idx: Vec<usize> = rand::seq::index::sample(rng, n, count).into_iter().collect();
    idx.sort_unstable();
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cohort_size_and_uniqueness() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = pick_cohort(100, 0.15, &mut rng);
        assert_eq!(c.len(), 15);
        assert!(c.windows(2).all(|w| w[0] < w[1]));
        assert!(c.iter().all(|&i| i < 100));
    }

    #[test]
    fn extreme_fractions() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(pick_cohort(10, 0.0, &mut rng).is_empty());
        assert_eq!(pick_cohort(10, 1.0, &mut rng).len(), 10);
    }

    #[test]
    fn adversarial_flags() {
        assert!(!AttackMode::Honest.is_adversarial());
        assert!(AttackMode::Fail.is_adversarial());
        assert!(AttackMode::EntropyDestruction.is_adversarial());
        assert!(AttackMode::Jamming.is_adversarial());
    }
}
