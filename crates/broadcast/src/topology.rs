//! Topology snapshots: from overlay structures to a flat edge list.

use curtain_overlay::forest::{ForestOverlay, TreeParent};
use curtain_overlay::random_graph::RandomGraphOverlay;
use curtain_overlay::{CurtainNetwork, NodeStatus, ThreadId};

/// The upper endpoint of an overlay edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// The broadcast server.
    Server,
    /// Client node by dense index (0-based, matrix order).
    Node(usize),
}

/// A directed overlay edge: one unit-bandwidth stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverlayEdge {
    /// Sender.
    pub from: Endpoint,
    /// Receiving client (dense index).
    pub to: usize,
    /// The thread (column of `M`) this edge belongs to, when the topology
    /// came from a curtain; `None` for random-graph edges. The erasure
    /// strategy uses it to route share `thread` down column `thread`.
    pub thread: Option<ThreadId>,
}

/// A static snapshot of an overlay, ready to simulate.
///
/// Dead nodes keep their index (so reports align with the overlay) but
/// neither forward nor count toward completion statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologySpec {
    /// Number of client nodes.
    pub nodes: usize,
    /// Server fan-out `k` (number of threads), when known.
    pub k: usize,
    /// All overlay edges.
    pub edges: Vec<OverlayEdge>,
    /// Per client: true if the node is failed at session start.
    pub dead: Vec<bool>,
}

impl TopologySpec {
    /// Snapshots a curtain network. Client index = row position in `M`.
    ///
    /// Edges incident to failed rows are included (the matrix still routes
    /// streams *to* a failed node's position) but the dead node will not
    /// forward, reproducing the §2 failure semantics.
    #[must_use]
    pub fn from_curtain(net: &CurtainNetwork) -> Self {
        let matrix = net.matrix();
        let nodes = matrix.len();
        let k = matrix.k();
        let mut edges = Vec::new();
        // Walk each column: consecutive holders form edges.
        let mut last_holder: Vec<Endpoint> = vec![Endpoint::Server; k];
        for (pos, row) in matrix.rows().iter().enumerate() {
            for &t in row.threads() {
                edges.push(OverlayEdge {
                    from: last_holder[t as usize],
                    to: pos,
                    thread: Some(t),
                });
                last_holder[t as usize] = Endpoint::Node(pos);
            }
        }
        let dead = matrix
            .rows()
            .iter()
            .map(|r| r.status() == NodeStatus::Failed)
            .collect();
        TopologySpec { nodes, k, edges, dead }
    }

    /// Snapshots a §6 random-graph overlay. Client index = vertex − 1.
    /// Hanging edges are skipped (they carry no stream yet).
    #[must_use]
    pub fn from_random_graph(net: &RandomGraphOverlay) -> Self {
        let nodes = net.len();
        let edges = net
            .edges()
            .iter()
            .filter_map(|e| {
                let to = e.lower?;
                let from = if e.upper == curtain_overlay::random_graph::SERVER {
                    Endpoint::Server
                } else {
                    Endpoint::Node(e.upper - 1)
                };
                Some(OverlayEdge { from, to: to - 1, thread: None })
            })
            .collect();
        TopologySpec { nodes, k: net.k(), edges, dead: vec![false; nodes] }
    }

    /// Snapshots a §6 SplitStream-style forest. Tree `t` maps to thread
    /// `t`, so the source-erasure strategy stripes exactly one share per
    /// tree — the classic resilient-streaming baseline ([10, 4]).
    #[must_use]
    pub fn from_forest(forest: &ForestOverlay) -> Self {
        let nodes = forest.len();
        let edges = forest
            .edges()
            .into_iter()
            .map(|(tree, parent, child)| OverlayEdge {
                from: match parent {
                    TreeParent::Server => Endpoint::Server,
                    TreeParent::Node(p) => Endpoint::Node(p),
                },
                to: child,
                thread: Some(tree as ThreadId),
            })
            .collect();
        TopologySpec { nodes, k: forest.trees(), edges, dead: vec![false; nodes] }
    }

    /// Marks a set of client indices dead (post-snapshot failure injection).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn kill(&mut self, indices: &[usize]) {
        for &i in indices {
            self.dead[i] = true;
        }
    }

    /// Number of live clients.
    #[must_use]
    pub fn live_nodes(&self) -> usize {
        self.dead.iter().filter(|&&d| !d).count()
    }

    /// In-degree of each client (streams it receives).
    #[must_use]
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.nodes];
        for e in &self.edges {
            deg[e.to] += 1;
        }
        deg
    }

    /// Checks structural sanity (indices in range, erasure threads in `k`).
    ///
    /// # Panics
    ///
    /// Panics on violations.
    pub fn assert_invariants(&self) {
        assert_eq!(self.dead.len(), self.nodes, "dead mask length");
        for e in &self.edges {
            assert!(e.to < self.nodes, "edge target out of range");
            if let Endpoint::Node(u) = e.from {
                assert!(u < self.nodes, "edge source out of range");
            }
            if let Some(t) = e.thread {
                assert!((t as usize) < self.k, "thread out of range");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use curtain_overlay::OverlayConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn curtain_snapshot_has_d_in_edges_per_node() {
        let mut net = CurtainNetwork::new(OverlayConfig::new(8, 3)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..15 {
            net.join(&mut rng);
        }
        let topo = TopologySpec::from_curtain(&net);
        topo.assert_invariants();
        assert_eq!(topo.nodes, 15);
        assert_eq!(topo.in_degrees(), vec![3; 15]);
        assert_eq!(topo.live_nodes(), 15);
        // Total edges = N * d.
        assert_eq!(topo.edges.len(), 45);
    }

    #[test]
    fn curtain_snapshot_tracks_failures() {
        let mut net = CurtainNetwork::new(OverlayConfig::new(8, 2)).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let ids: Vec<_> = (0..10).map(|_| net.join(&mut rng)).collect();
        net.fail(ids[4]).unwrap();
        let topo = TopologySpec::from_curtain(&net);
        assert!(topo.dead[4]);
        assert_eq!(topo.live_nodes(), 9);
    }

    #[test]
    fn first_rows_connect_to_server() {
        let mut net = CurtainNetwork::new(OverlayConfig::new(4, 4)).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        net.join(&mut rng);
        let topo = TopologySpec::from_curtain(&net);
        assert_eq!(topo.edges.len(), 4);
        assert!(topo.edges.iter().all(|e| e.from == Endpoint::Server && e.to == 0));
    }

    #[test]
    fn random_graph_snapshot() {
        let mut rg = RandomGraphOverlay::new(6, 2);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            rg.join(&mut rng);
        }
        let topo = TopologySpec::from_random_graph(&rg);
        topo.assert_invariants();
        assert_eq!(topo.nodes, 20);
        assert_eq!(topo.in_degrees(), vec![2; 20]);
        assert!(topo.edges.iter().all(|e| e.thread.is_none()));
    }

    #[test]
    fn forest_snapshot_has_tree_threads() {
        let mut f = ForestOverlay::new(3, 4);
        for _ in 0..30 {
            f.join();
        }
        let topo = TopologySpec::from_forest(&f);
        topo.assert_invariants();
        assert_eq!(topo.nodes, 30);
        assert_eq!(topo.k, 3);
        assert_eq!(topo.in_degrees(), vec![3; 30]);
        assert!(topo.edges.iter().all(|e| e.thread.is_some()));
    }

    #[test]
    fn kill_marks_dead() {
        let mut rg = RandomGraphOverlay::new(4, 2);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5 {
            rg.join(&mut rng);
        }
        let mut topo = TopologySpec::from_random_graph(&rg);
        topo.kill(&[1, 3]);
        assert_eq!(topo.live_nodes(), 3);
    }
}
