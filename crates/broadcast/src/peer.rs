//! The per-host actor: server and client behaviour for every strategy.

use bytes::Bytes;
use curtain_codec::BroadcastCodec;
use curtain_rlnc::{CodedPacket, Encoder, Recoder};
use curtain_simnet::{Actor, Context, HostId, LinkId};
use rand::RngExt as _;

use crate::attacks::AttackMode;

/// A boxed codec endpoint with a `Debug` impl (trait objects have none).
pub(crate) struct CodecBox(pub Box<dyn BroadcastCodec>);

impl std::fmt::Debug for CodecBox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("CodecBox").field(&self.0.kind()).finish()
    }
}

/// Wire messages exchanged during a session.
#[derive(Debug, Clone)]
pub(crate) enum Msg {
    /// A network-coded packet (RLNC strategy and its attackers).
    Coded(CodedPacket),
    /// An uncoded content chunk (routing strategy).
    Chunk {
        index: u32,
        data: Bytes,
    },
    /// One Reed–Solomon share of one stripe (source-erasure strategy).
    Share {
        stripe: u32,
        column: u16,
        data: Bytes,
    },
}

impl Msg {
    /// Approximate on-the-wire size in bytes (payload + minimal headers),
    /// used as the simulator's message sizer for byte-level accounting.
    pub(crate) fn wire_size(&self) -> usize {
        match self {
            // generation id + coefficient vector + payload
            Msg::Coded(p) => 4 + p.coefficients().len() + p.payload().len(),
            // chunk index + payload
            Msg::Chunk { data, .. } => 4 + data.len(),
            // stripe index + column + payload
            Msg::Share { data, .. } => 4 + 2 + data.len(),
        }
    }
}

/// An outgoing stream: the link plus (for curtains) its thread/column.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OutLink {
    pub link: LinkId,
    pub thread: Option<u16>,
}

/// Server-side content state.
#[derive(Debug)]
pub(crate) enum ServerRole {
    Rlnc {
        encoder: Encoder,
    },
    /// A pluggable `curtain-codec` backend drives the source.
    Codec {
        codec: CodecBox,
    },
    Routing {
        chunks: Vec<Bytes>,
    },
    Erasure {
        /// `shares[stripe][column]`.
        shares: Vec<Vec<Bytes>>,
    },
}

/// Client-side reception state.
#[derive(Debug)]
pub(crate) enum ClientRole {
    Rlnc {
        recoder: Recoder,
        /// Entropy destroyer's pinned packet.
        pinned: Option<CodedPacket>,
    },
    /// A pluggable `curtain-codec` backend drives decode and recode.
    Codec {
        codec: CodecBox,
    },
    Routing {
        chunks: Vec<Option<Bytes>>,
        have: usize,
    },
    Erasure {
        /// `shares[stripe][column]` for columns this node subscribes to.
        shares: Vec<Vec<Option<Bytes>>>,
        /// Shares needed per stripe (the RS data-share count).
        needed: usize,
        /// Completed stripes so far.
        stripes_done: usize,
    },
}

#[derive(Debug)]
pub(crate) enum Role {
    Server(ServerRole),
    Client(ClientRole),
}

/// One simulated host.
#[derive(Debug)]
pub(crate) struct Peer {
    pub alive: bool,
    pub attack: AttackMode,
    pub outs: Vec<OutLink>,
    pub role: Role,
    pub completed_at: Option<u64>,
    /// Per-out-link send cursors (chunk index / stripe rotation).
    pub cursors: Vec<u64>,
    /// Content shape (for jammers fabricating packets).
    pub gen_size: usize,
    pub packet_len: usize,
    /// Packets this host accepted from the network (fairness accounting).
    pub received_packets: u64,
    /// Packets this host offered to its out-links.
    pub sent_packets: u64,
}

impl Peer {
    /// Fraction of the content this client currently holds.
    pub(crate) fn progress(&self) -> f64 {
        match &self.role {
            Role::Server(_) => 1.0,
            Role::Client(ClientRole::Rlnc { recoder, .. }) => {
                recoder.rank() as f64 / self.gen_size as f64
            }
            Role::Client(ClientRole::Codec { codec }) => {
                let p = codec.0.progress();
                p.rank as f64 / p.total_packets.max(1) as f64
            }
            Role::Client(ClientRole::Routing { have, .. }) => {
                *have as f64 / self.gen_size as f64
            }
            Role::Client(ClientRole::Erasure { shares, needed, .. }) => {
                let have: usize = shares
                    .iter()
                    .map(|s| s.iter().filter(|x| x.is_some()).count().min(*needed))
                    .sum();
                have as f64 / self.gen_size as f64
            }
        }
    }

    fn is_content_complete(&self) -> bool {
        match &self.role {
            Role::Server(_) => true,
            Role::Client(ClientRole::Rlnc { recoder, .. }) => recoder.is_complete(),
            Role::Client(ClientRole::Codec { codec }) => codec.0.is_complete(),
            Role::Client(ClientRole::Routing { have, .. }) => *have == self.gen_size,
            Role::Client(ClientRole::Erasure { shares, stripes_done, .. }) => {
                *stripes_done == shares.len()
            }
        }
    }

    fn note_completion(&mut self, now: u64) {
        if self.completed_at.is_none() && self.is_content_complete() {
            self.completed_at = Some(now);
        }
    }

    fn send_as_server(&mut self, ctx: &mut Context<'_, Msg>) {
        for i in 0..self.outs.len() {
            let out = self.outs[i];
            let cursor = self.cursors[i];
            self.cursors[i] += 1;
            match &mut self.role {
                Role::Server(ServerRole::Rlnc { encoder }) => {
                    let p = encoder.encode(ctx.rng());
                    self.sent_packets += 1;
                    ctx.send(out.link, Msg::Coded(p));
                }
                Role::Server(ServerRole::Codec { codec }) => {
                    if let Some(p) = codec.0.encode(ctx.rng()) {
                        self.sent_packets += 1;
                        ctx.send(out.link, Msg::Coded(p));
                    }
                }
                Role::Server(ServerRole::Routing { chunks }) => {
                    // Stagger links so they cover different chunks first.
                    let idx = (cursor as usize
                        + i * chunks.len() / self.outs.len().max(1))
                        % chunks.len();
                    self.sent_packets += 1;
                    ctx.send(
                        out.link,
                        Msg::Chunk { index: idx as u32, data: chunks[idx].clone() },
                    );
                }
                Role::Server(ServerRole::Erasure { shares }) => {
                    let column = out.thread.expect("erasure needs thread labels");
                    let stripe = (cursor as usize) % shares.len();
                    self.sent_packets += 1;
                    ctx.send(
                        out.link,
                        Msg::Share {
                            stripe: stripe as u32,
                            column,
                            data: shares[stripe][column as usize].clone(),
                        },
                    );
                }
                Role::Client(_) => unreachable!("send_as_server on client"),
            }
        }
    }

    fn send_as_client(&mut self, ctx: &mut Context<'_, Msg>) {
        match self.attack {
            AttackMode::Fail => return,
            AttackMode::Jamming => {
                for i in 0..self.outs.len() {
                    let coeffs: Vec<u8> = (0..self.gen_size).map(|_| ctx.rng().random()).collect();
                    let mut payload = vec![0u8; self.packet_len];
                    ctx.rng().fill(&mut payload[..]);
                    let p = CodedPacket::new(0, coeffs, Bytes::from(payload));
                    ctx.send(self.outs[i].link, Msg::Coded(p));
                }
                return;
            }
            AttackMode::EntropyDestruction => {
                if let Role::Client(ClientRole::Rlnc { pinned: Some(p), .. }) = &self.role {
                    let p = p.clone();
                    for i in 0..self.outs.len() {
                        ctx.send(self.outs[i].link, Msg::Coded(p.clone()));
                    }
                }
                return;
            }
            AttackMode::Honest => {}
        }
        for i in 0..self.outs.len() {
            let out = self.outs[i];
            match &mut self.role {
                Role::Client(ClientRole::Rlnc { recoder, .. }) => {
                    if let Some(p) = recoder.recode(ctx.rng()) {
                        self.sent_packets += 1;
                        ctx.send(out.link, Msg::Coded(p));
                    }
                }
                Role::Client(ClientRole::Codec { codec }) => {
                    if let Some(p) = codec.0.recode(ctx.rng()) {
                        self.sent_packets += 1;
                        ctx.send(out.link, Msg::Coded(p));
                    }
                }
                Role::Client(ClientRole::Routing { chunks, have }) => {
                    if *have == 0 {
                        continue;
                    }
                    // Send a uniformly random chunk we own (gossip without
                    // rarest-first).
                    let owned: Vec<usize> = chunks
                        .iter()
                        .enumerate()
                        .filter_map(|(j, c)| c.as_ref().map(|_| j))
                        .collect();
                    let j = owned[ctx.rng().random_range(0..owned.len())];
                    self.sent_packets += 1;
                    ctx.send(
                        out.link,
                        Msg::Chunk {
                            index: j as u32,
                            data: chunks[j].clone().expect("owned chunk"),
                        },
                    );
                }
                Role::Client(ClientRole::Erasure { shares, .. }) => {
                    // Column-pure forwarding: resend stored shares of this
                    // out-thread, cycling through stripes.
                    let Some(column) = out.thread else { continue };
                    let stripes = shares.len();
                    let mut sent = false;
                    for probe in 0..stripes {
                        let stripe = (self.cursors[i] as usize + probe) % stripes;
                        if let Some(data) = &shares[stripe][column as usize] {
                            self.sent_packets += 1;
                            ctx.send(
                                out.link,
                                Msg::Share { stripe: stripe as u32, column, data: data.clone() },
                            );
                            self.cursors[i] = (stripe + 1) as u64;
                            sent = true;
                            break;
                        }
                    }
                    if !sent {
                        // Nothing stored for this column yet.
                        continue;
                    }
                }
                Role::Server(_) => unreachable!("send_as_client on server"),
            }
        }
    }
}

impl Actor<Msg> for Peer {
    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _from: HostId, msg: Msg) {
        if !self.alive {
            return;
        }
        self.received_packets += 1;
        let now = ctx.now().ticks();
        match (&mut self.role, msg) {
            (Role::Client(ClientRole::Rlnc { recoder, pinned }), Msg::Coded(p)) => {
                if self.attack == AttackMode::Jamming {
                    return; // jammers don't bother decoding
                }
                if pinned.is_none() && !p.is_vacuous() {
                    *pinned = Some(p.clone());
                }
                let _ = recoder.push(p); // malformed packets are dropped
            }
            (Role::Client(ClientRole::Codec { codec }), Msg::Coded(p)) => {
                if self.attack == AttackMode::Jamming {
                    return;
                }
                let _ = codec.0.ingest(p); // malformed packets are dropped
            }
            (Role::Client(ClientRole::Routing { chunks, have }), Msg::Chunk { index, data }) => {
                let slot = &mut chunks[index as usize];
                if slot.is_none() {
                    *slot = Some(data);
                    *have += 1;
                }
            }
            (
                Role::Client(ClientRole::Erasure { shares, needed, stripes_done }),
                Msg::Share { stripe, column, data },
            ) => {
                let row = &mut shares[stripe as usize];
                let slot = &mut row[column as usize];
                if slot.is_none() {
                    *slot = Some(data);
                    let have = row.iter().filter(|x| x.is_some()).count();
                    if have == *needed {
                        *stripes_done += 1;
                    }
                }
            }
            // Cross-strategy or server-bound messages are dropped.
            _ => return,
        }
        self.note_completion(now);
    }

    fn on_tick(&mut self, ctx: &mut Context<'_, Msg>) {
        if !self.alive {
            return;
        }
        match self.role {
            Role::Server(_) => self.send_as_server(ctx),
            Role::Client(_) => self.send_as_client(ctx),
        }
    }
}
