//! Backend 3: sliding-window coding for unbounded live streams.

use std::collections::BTreeMap;
use std::time::Instant;

use curtain_gf::{vec_ops, Field, Gf256};
use curtain_rlnc::{CodedPacket, RlncError};
use curtain_telemetry::{Event, SharedRecorder};
use rand::RngCore;

use crate::{BroadcastCodec, CodecConfig, CodecKind, CodecProgress};

/// Sliding-window network coding: packets mix a bounded window of the
/// stream instead of a fixed generation, so in-order delivery latency
/// stays bounded while the stream grows without bound — the regime the
/// generation-size/overlap tradeoff analysis of Li, Soljanin & Spasojević
/// (arXiv:1011.3498) pushes toward as delay constraints tighten.
///
/// On the wire the `generation` field carries the **window base**: a
/// packet's coefficient `i` weighs source packet `base + i`. The sink
/// keeps its rows in reduced row-echelon form over absolute packet
/// indices; as soon as a prefix resolves it is *delivered*, the window
/// slides, and per-packet `window_lag` (live edge minus playhead at
/// delivery) is recorded. Acknowledgements ([`BroadcastCodec::on_feedback`])
/// clock the sender window forward; in live mode the base additionally
/// expires at `avail − window`, so a viewer that cannot keep up loses
/// history rather than stalling the stream.
pub struct SlidingWindowCodec {
    g: usize,
    s: usize,
    window: usize,
    total: usize,
    original_len: usize,
    live: bool,
    source: Option<WSource>,
    sink: Option<WSink>,
    /// Highest delivery acknowledgement seen (clocks the send window).
    ack: u64,
    recorder: Option<(SharedRecorder, u64)>,
}

struct WSource {
    data: Vec<u8>,
    rows: Vec<Vec<u8>>,
    /// Source packets released so far (the live edge).
    avail: usize,
}

/// One RREF row: `coeffs[0]` sits at the pivot column (the map key) and is
/// normalised to 1; column `pivot + j` has weight `coeffs[j]`.
struct WRow {
    coeffs: Vec<u8>,
    payload: Vec<u8>,
}

struct WSink {
    rows: BTreeMap<u64, WRow>,
    known: Vec<Option<Vec<u8>>>,
    known_count: usize,
    /// Contiguous decoded prefix (the playhead).
    delivered: usize,
    /// One past the highest column any received packet referenced.
    newest_seen: u64,
    /// Nominal `g`-sized segments already reported complete.
    segments_done: usize,
    redundant_since_boundary: u64,
}

impl SlidingWindowCodec {
    /// Builds the source endpoint over `data`.
    #[must_use]
    pub fn source(cfg: &CodecConfig, data: &[u8]) -> Self {
        let total = cfg.packet_count(data.len());
        let s = cfg.packet_len;
        let mut rows = vec![vec![0u8; s]; total];
        for (i, row) in rows.iter_mut().enumerate() {
            let start = i * s;
            if start < data.len() {
                let end = (start + s).min(data.len());
                row[..end - start].copy_from_slice(&data[start..end]);
            }
        }
        SlidingWindowCodec {
            g: cfg.generation_size,
            s,
            window: cfg.window,
            total,
            original_len: data.len(),
            live: cfg.live,
            source: Some(WSource {
                data: data.to_vec(),
                rows,
                avail: if cfg.live { 0 } else { total },
            }),
            sink: None,
            ack: 0,
            recorder: None,
        }
    }

    /// Builds a sink/relay endpoint for a stream of `content_len` bytes.
    #[must_use]
    pub fn sink(cfg: &CodecConfig, content_len: usize) -> Self {
        let total = cfg.packet_count(content_len);
        SlidingWindowCodec {
            g: cfg.generation_size,
            s: cfg.packet_len,
            window: cfg.window,
            total,
            original_len: content_len,
            live: cfg.live,
            source: None,
            sink: Some(WSink {
                rows: BTreeMap::new(),
                known: vec![None; total],
                known_count: 0,
                delivered: 0,
                newest_seen: 0,
                segments_done: 0,
                redundant_since_boundary: 0,
            }),
            ack: 0,
            recorder: None,
        }
    }

    /// The send window `[base, end)` for the source role.
    fn send_window(&self) -> Option<(usize, usize)> {
        let src = self.source.as_ref()?;
        let mut base = self.ack as usize;
        if self.live {
            base = base.max(src.avail.saturating_sub(self.window));
        }
        let end = src.avail.min(base + self.window);
        (base < end).then_some((base, end))
    }
}

/// Drops leading zero coefficients, advancing the base accordingly.
fn trim_leading(base: &mut u64, coeffs: &mut Vec<u8>) {
    let lead = coeffs.iter().take_while(|&&c| c == 0).count();
    if lead > 0 {
        coeffs.drain(..lead);
        *base += lead as u64;
    }
}

/// Drops trailing zero coefficients (the pivot entry always survives).
fn trim_trailing(coeffs: &mut Vec<u8>) {
    while coeffs.len() > 1 && *coeffs.last().expect("non-empty") == 0 {
        coeffs.pop();
    }
}

/// `dst[at..] += c · src` over GF(2⁸), growing `dst` as needed.
fn add_scaled_at(dst: &mut Vec<u8>, at: usize, c: u8, src: &[u8]) {
    if dst.len() < at + src.len() {
        dst.resize(at + src.len(), 0);
    }
    for (d, &s) in dst[at..at + src.len()].iter_mut().zip(src) {
        *d ^= Gf256::mul_bytes(c, s);
    }
}

impl WSink {
    /// Marks `col` decoded and substitutes it into every row that still
    /// references it; rows reduced to a single coefficient reveal further
    /// packets, hence the worklist.
    fn make_known(&mut self, col: u64, payload: Vec<u8>) {
        let mut stack = vec![(col, payload)];
        while let Some((col, payload)) = stack.pop() {
            let slot = &mut self.known[col as usize];
            if slot.is_some() {
                continue;
            }
            *slot = Some(payload.clone());
            self.known_count += 1;
            let covering: Vec<u64> = self
                .rows
                .range(..col)
                .filter(|(&q, row)| {
                    let off = (col - q) as usize;
                    off < row.coeffs.len() && row.coeffs[off] != 0
                })
                .map(|(&q, _)| q)
                .collect();
            for q in covering {
                let row = self.rows.get_mut(&q).expect("key just listed");
                let off = (col - q) as usize;
                let c = row.coeffs[off];
                vec_ops::axpy(&mut row.payload, c, &payload);
                row.coeffs[off] = 0;
                trim_trailing(&mut row.coeffs);
                if row.coeffs.len() == 1 {
                    let row = self.rows.remove(&q).expect("present");
                    stack.push((q, row.payload));
                }
            }
        }
    }
}

impl BroadcastCodec for SlidingWindowCodec {
    fn kind(&self) -> CodecKind {
        CodecKind::Window
    }

    fn set_telemetry(&mut self, recorder: SharedRecorder, node: u64) {
        self.recorder = Some((recorder, node));
    }

    fn encode(&mut self, rng: &mut dyn RngCore) -> Option<CodedPacket> {
        let (base, end) = self.send_window()?;
        let src = self.source.as_ref()?;
        let span = end - base;
        let mut coeffs = vec![0u8; span];
        loop {
            for c in coeffs.iter_mut() {
                *c = Gf256::random(&mut *rng).value();
            }
            if coeffs.iter().any(|&c| c != 0) {
                break;
            }
        }
        let mut payload = vec![0u8; self.s];
        for (i, &c) in coeffs.iter().enumerate() {
            if c != 0 {
                vec_ops::axpy(&mut payload, c, &src.rows[base + i]);
            }
        }
        Some(CodedPacket::new(base as u32, coeffs, payload))
    }

    fn ingest(&mut self, packet: CodedPacket) -> Result<bool, RlncError> {
        let Some(sink) = self.sink.as_mut() else {
            return Ok(false);
        };
        if packet.payload().len() != self.s {
            return Err(RlncError::PayloadLengthMismatch {
                expected: self.s,
                got: packet.payload().len(),
            });
        }
        let mut base = u64::from(packet.generation());
        let mut coeffs = packet.coefficients().to_vec();
        if base as usize + coeffs.len() > self.total {
            return Err(RlncError::CoefficientLengthMismatch {
                expected: self.total - (base as usize).min(self.total),
                got: coeffs.len(),
            });
        }
        let started = Instant::now();
        let mut payload = packet.payload().to_vec();
        sink.newest_seen = sink.newest_seen.max(base + coeffs.len() as u64);

        // Substitute already-decoded packets out of the combination.
        for (i, c) in coeffs.iter_mut().enumerate() {
            if *c != 0 {
                if let Some(row) = &sink.known[base as usize + i] {
                    vec_ops::axpy(&mut payload, *c, row);
                    *c = 0;
                }
            }
        }

        // Forward-eliminate against existing pivots until we find a new one.
        loop {
            trim_leading(&mut base, &mut coeffs);
            if coeffs.is_empty() {
                sink.redundant_since_boundary += 1;
                if let Some((recorder, node)) = &self.recorder {
                    recorder.record(&Event::PacketRedundant {
                        node: *node,
                        generation: (base / self.g.max(1) as u64) as u32,
                    });
                    recorder.histogram("decode_ns", started.elapsed().as_nanos() as f64);
                }
                return Ok(false);
            }
            let Some(row) = sink.rows.get(&base) else { break };
            let c = coeffs[0];
            add_scaled_at(&mut coeffs, 0, c, &row.coeffs);
            vec_ops::axpy(&mut payload, c, &row.payload);
        }

        // Normalise the new pivot, then clear any later pivots it covers so
        // the matrix stays fully reduced (singletons must surface).
        let pivot = base;
        let inv = Gf256(coeffs[0]).inv().value();
        for c in coeffs.iter_mut() {
            *c = Gf256::mul_bytes(inv, *c);
        }
        vec_ops::scale_assign(&mut payload, inv);
        let later: Vec<u64> = sink
            .rows
            .range(pivot + 1..pivot + coeffs.len() as u64)
            .map(|(&q, _)| q)
            .collect();
        for q in later {
            let off = (q - pivot) as usize;
            let c = coeffs[off];
            if c == 0 {
                continue;
            }
            let row = &sink.rows[&q];
            let (rc, rp) = (row.coeffs.clone(), row.payload.clone());
            add_scaled_at(&mut coeffs, off, c, &rc);
            vec_ops::axpy(&mut payload, c, &rp);
        }
        trim_trailing(&mut coeffs);

        if coeffs.len() == 1 {
            sink.make_known(pivot, payload);
        } else {
            sink.rows.insert(pivot, WRow { coeffs, payload });
        }

        // Advance the playhead over the resolved prefix.
        let before = sink.delivered;
        while sink.delivered < self.total && sink.known[sink.delivered].is_some() {
            sink.delivered += 1;
        }
        if let Some((recorder, node)) = &self.recorder {
            recorder.histogram("decode_ns", started.elapsed().as_nanos() as f64);
            for d in before..sink.delivered {
                let lag = sink.newest_seen.saturating_sub(1).saturating_sub(d as u64);
                recorder.histogram("window_lag", lag as f64);
            }
            while (sink.segments_done + 1) * self.g <= sink.delivered {
                sink.segments_done += 1;
                recorder.record(&Event::GenerationComplete {
                    node: *node,
                    generation: (sink.segments_done - 1) as u32,
                    innovative: self.g as u64,
                    redundant: sink.redundant_since_boundary,
                });
                recorder.counter("generations_decoded", 1);
                sink.redundant_since_boundary = 0;
            }
        } else {
            sink.segments_done = sink.delivered / self.g.max(1);
        }
        Ok(true)
    }

    fn recode(&mut self, rng: &mut dyn RngCore) -> Option<CodedPacket> {
        let sink = self.sink.as_ref()?;
        // Forward the acked-onward window; rows near the live edge wait
        // until acknowledgements advance the base, keeping the coefficient
        // span bounded by the window size. In live mode the base expires
        // with the stream instead of waiting for acks.
        let mut lo = self.ack;
        if self.live {
            lo = lo.max(sink.newest_seen.saturating_sub(self.window as u64));
        }
        let lo = lo.min(sink.newest_seen);
        let hi = (lo + self.window as u64).min(sink.newest_seen);
        if lo >= hi {
            return None;
        }
        let knowns: Vec<u64> = (lo..hi)
            .filter(|&k| sink.known[k as usize].is_some())
            .collect();
        let rows: Vec<u64> = sink
            .rows
            .range(lo..hi)
            .filter(|(&q, row)| q + row.coeffs.len() as u64 <= lo + self.window as u64)
            .map(|(&q, _)| q)
            .collect();
        if knowns.is_empty() && rows.is_empty() {
            return None;
        }
        let mut coeffs = vec![0u8; (hi - lo) as usize];
        let mut payload = vec![0u8; self.s];
        for &k in &knowns {
            let c = Gf256::random_nonzero(&mut *rng).value();
            coeffs[(k - lo) as usize] ^= c;
            vec_ops::axpy(&mut payload, c, sink.known[k as usize].as_ref().expect("known"));
        }
        for &q in &rows {
            let row = &sink.rows[&q];
            let c = Gf256::random_nonzero(&mut *rng).value();
            add_scaled_at(&mut coeffs, (q - lo) as usize, c, &row.coeffs);
            vec_ops::axpy(&mut payload, c, &row.payload);
        }
        trim_trailing(&mut coeffs);
        if coeffs.iter().all(|&c| c == 0) {
            return None;
        }
        Some(CodedPacket::new(lo as u32, coeffs, payload))
    }

    fn advance_to(&mut self, source_packet: u64) {
        if let Some(src) = self.source.as_mut() {
            src.avail = src.avail.max((source_packet as usize).min(self.total));
        }
    }

    fn on_feedback(&mut self, delivered_packets: u64) {
        self.ack = self.ack.max(delivered_packets.min(self.total as u64));
    }

    fn progress(&self) -> CodecProgress {
        let total_packets = self.total as u64;
        let total_generations = self.total.div_ceil(self.g.max(1)) as u64;
        match &self.sink {
            None => CodecProgress {
                delivered_packets: total_packets,
                delivered_bytes: self.original_len as u64,
                complete_generations: total_generations,
                total_generations,
                rank: total_packets,
                total_packets,
            },
            Some(sink) => {
                let delivered_packets = sink.delivered as u64;
                CodecProgress {
                    delivered_packets,
                    delivered_bytes: (delivered_packets * self.s as u64)
                        .min(self.original_len as u64),
                    complete_generations: (sink.delivered / self.g.max(1)) as u64,
                    total_generations,
                    rank: (sink.known_count + sink.rows.len()) as u64,
                    total_packets,
                }
            }
        }
    }

    fn is_range_decoded(&self, start: u64, end: u64) -> bool {
        let Some(sink) = &self.sink else {
            return true;
        };
        let lo = (start as usize).min(sink.known.len());
        let hi = (end as usize).min(sink.known.len());
        sink.known[lo..hi].iter().all(Option::is_some)
    }

    fn is_complete(&self) -> bool {
        match &self.sink {
            None => true,
            Some(sink) => sink.delivered == self.total,
        }
    }

    fn decoded(&self) -> Option<Vec<u8>> {
        if let Some(src) = &self.source {
            return Some(src.data.clone());
        }
        let sink = self.sink.as_ref()?;
        if sink.delivered != self.total {
            return None;
        }
        let mut out = Vec::with_capacity(self.original_len);
        for row in &sink.known {
            out.extend_from_slice(row.as_ref().expect("complete"));
        }
        out.truncate(self.original_len);
        Some(out)
    }

    fn window(&self) -> Option<(u64, u64)> {
        match (&self.source, &self.sink) {
            (Some(_), _) => self
                .send_window()
                .map(|(b, e)| (b as u64, e as u64))
                .or(Some((self.ack, self.ack))),
            (_, Some(sink)) => Some((sink.delivered as u64, sink.newest_seen)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use curtain_telemetry::MemorySink;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 7 % 251) as u8).collect()
    }

    /// Ack-clocked transfer: the window slides, and the coefficient span
    /// never exceeds the configured window.
    #[test]
    fn window_bounds_coefficient_span() {
        let cfg = CodecConfig::new(CodecKind::Window, 4, 8).with_window(6);
        let payload = data(320); // 40 packets ≫ window of 6
        let mut src = SlidingWindowCodec::source(&cfg, &payload);
        let mut dst = SlidingWindowCodec::sink(&cfg, payload.len());
        let mut rng = StdRng::seed_from_u64(3);
        let mut sent = 0;
        while !dst.is_complete() {
            let p = src.encode(&mut rng).expect("window never empties");
            assert!(p.coefficients().len() <= 6, "span leaked past window");
            dst.ingest(p).unwrap();
            src.on_feedback(dst.progress().delivered_packets);
            sent += 1;
            assert!(sent < 5000, "did not converge");
        }
        assert_eq!(dst.decoded().unwrap(), payload);
    }

    /// Live mode: the base expires at `avail − window` even without acks,
    /// so a lossy viewer skips history instead of stalling the source.
    #[test]
    fn live_mode_expires_old_columns() {
        let cfg = CodecConfig::new(CodecKind::Window, 4, 8).with_window(4).with_live(true);
        let payload = data(160); // 20 packets
        let mut src = SlidingWindowCodec::source(&cfg, &payload);
        let mut rng = StdRng::seed_from_u64(4);
        assert!(src.encode(&mut rng).is_none(), "nothing released yet");
        src.advance_to(12);
        let p = src.encode(&mut rng).unwrap();
        assert_eq!(p.generation(), 8, "base expired to avail − window");
        assert_eq!(src.window(), Some((8, 12)));
    }

    /// Out-of-order windows still decode: deliberately withhold a prefix
    /// packet, decode later ones, then fill the hole.
    #[test]
    fn holes_resolve_on_arrival() {
        let cfg = CodecConfig::new(CodecKind::Window, 2, 4).with_window(4);
        let payload = data(24); // 6 packets
        let mut dst = SlidingWindowCodec::sink(&cfg, payload.len());
        let rows: Vec<Vec<u8>> = payload.chunks(4).map(<[u8]>::to_vec).collect();
        // Systematic packets 1..6 first: everything but packet 0.
        for (i, row) in rows.iter().enumerate().skip(1) {
            let got = dst.ingest(CodedPacket::new(i as u32, vec![1], row.clone())).unwrap();
            assert!(got);
        }
        assert_eq!(dst.progress().delivered_packets, 0, "prefix hole blocks playout");
        assert_eq!(dst.progress().rank, 5);
        dst.ingest(CodedPacket::new(0, vec![1], rows[0].clone())).unwrap();
        assert!(dst.is_complete());
        assert_eq!(dst.decoded().unwrap(), payload);
    }

    /// A mixed packet covering a hole plus known columns reduces to the
    /// missing packet (back-substitution reveals singletons).
    #[test]
    fn mixed_packet_reveals_missing_column() {
        let cfg = CodecConfig::new(CodecKind::Window, 2, 4).with_window(4);
        let payload = data(16); // 4 packets
        let rows: Vec<Vec<u8>> = payload.chunks(4).map(<[u8]>::to_vec).collect();
        let mut dst = SlidingWindowCodec::sink(&cfg, payload.len());
        dst.ingest(CodedPacket::new(0, vec![1], rows[0].clone())).unwrap();
        dst.ingest(CodedPacket::new(2, vec![1], rows[2].clone())).unwrap();
        // packet = 3·p1 + 5·p2 + 7·p3 over window base 1.
        let mut mixed = vec![0u8; 4];
        vec_ops::axpy(&mut mixed, 3, &rows[1]);
        vec_ops::axpy(&mut mixed, 5, &rows[2]);
        vec_ops::axpy(&mut mixed, 7, &rows[3]);
        dst.ingest(CodedPacket::new(1, vec![3, 5, 7], mixed)).unwrap();
        // p2 known → row reduces to 3·p1 + 7·p3: rank 3, not yet complete.
        assert_eq!(dst.progress().rank, 3);
        let mut tail = vec![0u8; 4];
        vec_ops::axpy(&mut tail, 2, &rows[3]);
        dst.ingest(CodedPacket::new(3, vec![2], tail)).unwrap();
        assert!(dst.is_complete(), "back-substitution reveals p1");
        assert_eq!(dst.decoded().unwrap(), payload);
    }

    #[test]
    fn telemetry_segments_and_window_lag() {
        let sink = MemorySink::new();
        let recorder = SharedRecorder::new(sink.clone());
        let cfg = CodecConfig::new(CodecKind::Window, 2, 4).with_window(4);
        let payload = data(32); // 8 packets = 4 nominal segments
        let mut src = SlidingWindowCodec::source(&cfg, &payload);
        let mut dst = SlidingWindowCodec::sink(&cfg, payload.len());
        dst.set_telemetry(recorder, 7);
        let mut rng = StdRng::seed_from_u64(5);
        let mut guard = 0;
        while !dst.is_complete() {
            dst.ingest(src.encode(&mut rng).unwrap()).unwrap();
            src.on_feedback(dst.progress().delivered_packets);
            guard += 1;
            assert!(guard < 2000);
        }
        let completes: Vec<u32> = sink
            .events()
            .iter()
            .filter_map(|(_, e)| match e {
                Event::GenerationComplete { node: 7, generation, .. } => Some(*generation),
                _ => None,
            })
            .collect();
        assert_eq!(completes, vec![0, 1, 2, 3], "one event per nominal segment");
        let snap = sink.metrics().snapshot();
        assert_eq!(snap.counters.get("generations_decoded"), Some(&4));
        assert!(snap.histograms.contains_key("window_lag"));
        assert!(snap.histograms.contains_key("decode_ns"));
    }

    #[test]
    fn shape_errors_rejected() {
        let cfg = CodecConfig::new(CodecKind::Window, 2, 4).with_window(4);
        let mut dst = SlidingWindowCodec::sink(&cfg, 16); // 4 packets
        assert!(matches!(
            dst.ingest(CodedPacket::new(0, vec![1], vec![0u8; 3])).unwrap_err(),
            RlncError::PayloadLengthMismatch { expected: 4, got: 3 }
        ));
        assert!(matches!(
            dst.ingest(CodedPacket::new(3, vec![1, 1], vec![0u8; 4])).unwrap_err(),
            RlncError::CoefficientLengthMismatch { .. }
        ));
    }
}
