//! Backend 1: the existing whole-object RLNC pipeline behind the trait.

use curtain_rlnc::{CodedPacket, Content, Encoder, Recoder, RlncError};
use curtain_telemetry::SharedRecorder;
use rand::{RngCore, RngExt as _};

use crate::{BroadcastCodec, CodecConfig, CodecKind, CodecProgress};

/// Disjoint [CWJ03] generations, exactly as `curtain-rlnc`'s
/// [`ObjectEncoder`](curtain_rlnc::ObjectEncoder) pipeline codes them, but
/// speaking the [`BroadcastCodec`] interface so sessions can swap it out.
///
/// The source round-robins coded packets across the generations at or
/// behind the live edge; sinks and relays keep one [`Recoder`] per
/// generation (so every node can forward fresh mixes), and the decoded
/// object is the concatenation of recovered generations trimmed to the
/// original length.
pub struct WholeObjectCodec {
    g: usize,
    s: usize,
    original_len: usize,
    live: bool,
    /// Source role: the original bytes and one encoder per generation.
    source: Option<(Vec<u8>, Vec<Encoder>)>,
    /// Sink/relay role: one recoder per generation.
    gens: Vec<Recoder>,
    /// Generations available to serve (live edge), source role.
    edge: usize,
    /// Alternation cursor for the live relay policy.
    recode_cursor: usize,
}

impl WholeObjectCodec {
    /// Builds the source endpoint over `data`.
    #[must_use]
    pub fn source(cfg: &CodecConfig, data: &[u8]) -> Self {
        let content = Content::split(data, cfg.generation_size, cfg.packet_len);
        let encoders: Vec<Encoder> = content
            .generations()
            .iter()
            .map(|gen| Encoder::from_generation(gen.clone()))
            .collect();
        let edge = if cfg.live { 0 } else { encoders.len() };
        WholeObjectCodec {
            g: cfg.generation_size,
            s: cfg.packet_len,
            original_len: data.len(),
            live: cfg.live,
            source: Some((data.to_vec(), encoders)),
            gens: Vec::new(),
            edge,
            recode_cursor: 0,
        }
    }

    /// Builds a sink/relay endpoint for an object of `content_len` bytes.
    #[must_use]
    pub fn sink(cfg: &CodecConfig, content_len: usize) -> Self {
        let gen_bytes = cfg.generation_size * cfg.packet_len;
        let n_gens = content_len.div_ceil(gen_bytes).max(1);
        let gens = (0..n_gens)
            .map(|i| Recoder::new(i as u32, cfg.generation_size, cfg.packet_len))
            .collect();
        WholeObjectCodec {
            g: cfg.generation_size,
            s: cfg.packet_len,
            original_len: content_len,
            live: cfg.live,
            source: None,
            gens,
            edge: 0,
            recode_cursor: 0,
        }
    }

    fn total_gens(&self) -> usize {
        match &self.source {
            Some((_, encoders)) => encoders.len(),
            None => self.gens.len(),
        }
    }

    /// Contiguous complete generations from the start.
    fn complete_prefix(&self) -> usize {
        self.gens.iter().take_while(|r| r.is_complete()).count()
    }
}

impl BroadcastCodec for WholeObjectCodec {
    fn kind(&self) -> CodecKind {
        CodecKind::Rlnc
    }

    fn set_telemetry(&mut self, recorder: SharedRecorder, node: u64) {
        for r in &mut self.gens {
            r.set_telemetry(recorder.clone(), node);
        }
    }

    fn encode(&mut self, rng: &mut dyn RngCore) -> Option<CodedPacket> {
        let (_, encoders) = self.source.as_ref()?;
        let avail = self.edge.min(encoders.len());
        if avail == 0 {
            return None;
        }
        // Live streams pour bandwidth into the newest generation (stale
        // segments are past their play-out); file transfer samples
        // uniformly. (A round-robin cursor advanced once per out-link
        // couples generation choice to link parity: with an even
        // out-degree each neighbour would hear a single generation
        // forever.)
        let idx = if self.live { avail - 1 } else { rng.random_range(0..avail) };
        Some(encoders[idx].encode(&mut *rng))
    }

    fn ingest(&mut self, packet: CodedPacket) -> Result<bool, RlncError> {
        let gen = packet.generation() as usize;
        if gen >= self.gens.len() {
            return Err(RlncError::GenerationMismatch {
                expected: self.gens.len().saturating_sub(1) as u32,
                got: packet.generation(),
            });
        }
        self.gens[gen].push(packet)
    }

    fn recode(&mut self, rng: &mut dyn RngCore) -> Option<CodedPacket> {
        let n = self.gens.len();
        if n == 0 {
            return None;
        }
        if self.live {
            // Live relays alternate between the two newest generations
            // carrying information, mirroring the legacy viewer policy.
            let newest: Vec<usize> =
                (0..n).rev().filter(|&i| self.gens[i].rank() > 0).take(2).collect();
            let idx = *newest.get(self.recode_cursor % newest.len().max(1))?;
            self.recode_cursor = self.recode_cursor.wrapping_add(1);
            return self.gens[idx].recode(&mut *rng);
        }
        // File transfer: a uniformly random generation with information.
        // Deterministic preferences deadlock relay chains — favouring
        // incomplete generations forwards only sub-rank mixes, and a
        // per-call cursor couples the choice to out-link parity.
        let held: Vec<usize> = (0..n).filter(|&i| self.gens[i].rank() > 0).collect();
        if held.is_empty() {
            return None;
        }
        let idx = held[rng.random_range(0..held.len())];
        self.gens[idx].recode(&mut *rng)
    }

    fn advance_to(&mut self, source_packet: u64) {
        let gens = (source_packet as usize).div_ceil(self.g);
        self.edge = gens.min(self.total_gens()).max(self.edge);
    }

    fn on_feedback(&mut self, _delivered_packets: u64) {}

    fn progress(&self) -> CodecProgress {
        let total_gens = self.total_gens() as u64;
        let total_packets = total_gens * self.g as u64;
        if self.source.is_some() {
            return CodecProgress {
                delivered_packets: total_packets,
                delivered_bytes: self.original_len as u64,
                complete_generations: total_gens,
                total_generations: total_gens,
                rank: total_packets,
                total_packets,
            };
        }
        let delivered_packets = (self.complete_prefix() * self.g) as u64;
        CodecProgress {
            delivered_packets,
            delivered_bytes: (delivered_packets * self.s as u64).min(self.original_len as u64),
            complete_generations: self.gens.iter().filter(|r| r.is_complete()).count() as u64,
            total_generations: total_gens,
            rank: self.gens.iter().map(|r| r.rank() as u64).sum(),
            total_packets,
        }
    }

    fn is_range_decoded(&self, start: u64, end: u64) -> bool {
        if start >= end || self.source.is_some() {
            return true;
        }
        let lo = (start as usize) / self.g;
        let hi = (end as usize).div_ceil(self.g).min(self.gens.len());
        self.gens[lo..hi].iter().all(Recoder::is_complete)
    }

    fn is_complete(&self) -> bool {
        self.source.is_some() || self.gens.iter().all(Recoder::is_complete)
    }

    fn decoded(&self) -> Option<Vec<u8>> {
        if let Some((data, _)) = &self.source {
            return Some(data.clone());
        }
        let mut out = Vec::with_capacity(self.original_len);
        for r in &self.gens {
            for packet in r.recover()? {
                out.extend_from_slice(&packet);
            }
        }
        out.truncate(self.original_len);
        Some(out)
    }

    fn window(&self) -> Option<(u64, u64)> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn live_edge_gates_served_generations() {
        let data = vec![5u8; 256]; // 4 generations of 4×16
        let cfg = CodecConfig::new(CodecKind::Rlnc, 4, 16).with_live(true);
        let mut src = WholeObjectCodec::source(&cfg, &data);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(src.encode(&mut rng).is_none(), "nothing cut yet");
        src.advance_to(4);
        for _ in 0..16 {
            assert_eq!(src.encode(&mut rng).unwrap().generation(), 0);
        }
        src.advance_to(8);
        // Live mode pours bandwidth into the newest cut generation.
        let served: std::collections::HashSet<u32> =
            (0..32).map(|_| src.encode(&mut rng).unwrap().generation()).collect();
        assert_eq!(served, [1u32].into_iter().collect());
        // advance_to never narrows the edge.
        src.advance_to(4);
        assert_eq!(src.edge, 2);
    }

    #[test]
    fn ingest_rejects_out_of_range_generation() {
        let cfg = CodecConfig::new(CodecKind::Rlnc, 2, 8);
        let mut sink = WholeObjectCodec::sink(&cfg, 32); // 2 generations
        let err = sink.ingest(CodedPacket::new(9, vec![1, 0], vec![0u8; 8])).unwrap_err();
        assert!(matches!(err, RlncError::GenerationMismatch { got: 9, .. }));
    }

    #[test]
    fn delivered_prefix_requires_contiguity() {
        let data: Vec<u8> = (0..128).map(|i| i as u8).collect();
        let cfg = CodecConfig::new(CodecKind::Rlnc, 2, 16); // 4 generations
        let mut src = WholeObjectCodec::source(&cfg, &data);
        let mut dst = WholeObjectCodec::sink(&cfg, data.len());
        let mut rng = StdRng::seed_from_u64(11);
        // Complete only generation 1 by filtering what reaches the sink.
        let mut guard = 0;
        while dst.gens[1].rank() < 2 {
            let p = src.encode(&mut rng).unwrap();
            if p.generation() == 1 {
                dst.ingest(p).unwrap();
            }
            guard += 1;
            assert!(guard < 1000);
        }
        let prog = dst.progress();
        assert_eq!(prog.complete_generations, 1);
        assert_eq!(prog.delivered_packets, 0, "gen 0 missing → no in-order delivery");
    }
}
