//! Pluggable broadcast codec backends for the curtain overlay.
//!
//! The PODC 2005 curtain codes a whole object as RLNC generations; this
//! crate abstracts that choice behind the [`BroadcastCodec`] trait so a
//! session can pick the coding discipline that fits its workload:
//!
//! | backend | selector | layout | best for |
//! |---|---|---|---|
//! | [`WholeObjectCodec`] | `rlnc` | disjoint [CWJ03] generations | file transfer |
//! | [`OverlapCodec`] | `overlap` | overlapping classes (Silva–Zeng–Kschischang, arXiv:0905.2796) | large objects, lower completion overhead |
//! | [`SlidingWindowCodec`] | `window` | bounded window over a packet stream (Li–Soljanin–Spasojević tradeoffs, arXiv:1011.3498) | live streams, bounded latency |
//!
//! All three speak [`CodedPacket`] on the wire, recode at intermediate
//! nodes, and report uniform [`CodecProgress`], so `crates/broadcast` and
//! `crates/net` can swap them per session (env override: `CURTAIN_CODEC`).
//!
//! # Example
//!
//! ```
//! use curtain_codec::{BroadcastCodec, CodecConfig, CodecKind};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let data = vec![7u8; 300];
//! let cfg = CodecConfig::new(CodecKind::Overlap, 4, 16);
//! let mut src = cfg.source(&data);
//! let mut dst = cfg.sink(data.len());
//! let mut rng = StdRng::seed_from_u64(1);
//! while !dst.is_complete() {
//!     let p = src.encode(&mut rng).expect("source always has data");
//!     dst.ingest(p).unwrap();
//! }
//! assert_eq!(dst.decoded().unwrap(), data);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use curtain_rlnc::{CodedPacket, RlncError};
use curtain_telemetry::SharedRecorder;
use rand::RngCore;

mod overlap;
mod whole;
mod window;

pub use overlap::OverlapCodec;
pub use whole::WholeObjectCodec;
pub use window::SlidingWindowCodec;

/// Which codec backend a session runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CodecKind {
    /// Whole-object RLNC over disjoint generations (the paper's data plane).
    #[default]
    Rlnc,
    /// Overlapping classes with cross-class repair packets.
    Overlap,
    /// Sliding coding window for unbounded live streams.
    Window,
}

impl CodecKind {
    /// Parses the selector used on CLIs and in `CURTAIN_CODEC`.
    #[must_use]
    pub fn parse(s: &str) -> Option<CodecKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "rlnc" | "whole" => Some(CodecKind::Rlnc),
            "overlap" | "classes" => Some(CodecKind::Overlap),
            "window" | "sliding" => Some(CodecKind::Window),
            _ => None,
        }
    }

    /// Reads `CURTAIN_CODEC` from the environment; unset or unrecognised
    /// values fall back to [`CodecKind::Rlnc`].
    #[must_use]
    pub fn from_env() -> CodecKind {
        std::env::var("CURTAIN_CODEC")
            .ok()
            .and_then(|v| CodecKind::parse(&v))
            .unwrap_or_default()
    }

    /// The canonical selector string (`rlnc`/`overlap`/`window`).
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            CodecKind::Rlnc => "rlnc",
            CodecKind::Overlap => "overlap",
            CodecKind::Window => "window",
        }
    }
}

impl std::fmt::Display for CodecKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Uniform decode-progress report across backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CodecProgress {
    /// Source packets delivered in order (contiguous decoded prefix).
    pub delivered_packets: u64,
    /// Bytes of original content covered by the delivered prefix.
    pub delivered_bytes: u64,
    /// Generations (or classes, or nominal window segments) fully decoded.
    pub complete_generations: u64,
    /// Total generations / classes the object spans.
    pub total_generations: u64,
    /// Global rank: independent packets of information held. Overlapping
    /// backends must never double-count shared packets here.
    pub rank: u64,
    /// Total source packets (after padding) needed for full decode.
    pub total_packets: u64,
}

/// A coding discipline for broadcast: how the source cuts and mixes
/// content, how relays recode, and how sinks decode.
///
/// One instance is one endpoint's state for one object/stream. Sources are
/// built with [`CodecConfig::source`]; sinks and relays with
/// [`CodecConfig::sink`] (a relay is a sink that never calls
/// [`BroadcastCodec::decoded`]). All backends exchange [`CodedPacket`]s;
/// the `generation` wire field carries the class id (generation-style
/// backends) or the window base (sliding window).
pub trait BroadcastCodec: Send {
    /// Which backend this is.
    fn kind(&self) -> CodecKind;

    /// Attaches a telemetry recorder; `node` labels this endpoint in events.
    fn set_telemetry(&mut self, recorder: SharedRecorder, node: u64);

    /// Source role: emits a fresh coded packet, or `None` if no source data
    /// is available yet (e.g. the live edge has not advanced).
    fn encode(&mut self, rng: &mut dyn RngCore) -> Option<CodedPacket>;

    /// Sink/relay role: absorbs a received packet. Returns `Ok(true)` iff
    /// the packet was innovative.
    ///
    /// # Errors
    ///
    /// Returns an [`RlncError`] when the packet's shape disagrees with the
    /// codec configuration (wrong coefficient or payload length, class id
    /// out of range).
    fn ingest(&mut self, packet: CodedPacket) -> Result<bool, RlncError>;

    /// Emits a fresh mix of everything this node holds, or `None` when it
    /// holds nothing to forward.
    fn recode(&mut self, rng: &mut dyn RngCore) -> Option<CodedPacket>;

    /// Source role: declares that source packets `< source_packet` exist
    /// (the live edge). Backends that cut generations lazily start serving
    /// them; the sliding window advances its base to stay within bounds.
    fn advance_to(&mut self, source_packet: u64);

    /// Source role: a delivery acknowledgement from downstream (packets
    /// `< delivered_packets` decoded somewhere). Lets the sliding window
    /// retire columns; generation backends ignore it.
    fn on_feedback(&mut self, delivered_packets: u64);

    /// Current decode progress.
    fn progress(&self) -> CodecProgress;

    /// True when every source packet in `[start, end)` has been decoded,
    /// regardless of holes elsewhere. The default derives it from the
    /// in-order delivery prefix; backends with random-access decode state
    /// override it so one undecodable stretch does not mask later
    /// segments (live streams skip stalled segments and play on).
    fn is_range_decoded(&self, start: u64, end: u64) -> bool {
        start >= end || end <= self.progress().delivered_packets
    }

    /// True when the whole object (or the whole announced stream prefix)
    /// has been decoded.
    fn is_complete(&self) -> bool;

    /// The decoded content, once [`BroadcastCodec::is_complete`]. Sources
    /// return their original data.
    fn decoded(&self) -> Option<Vec<u8>>;

    /// The active coding window `[base, end)` in source-packet indices,
    /// for backends that have one (`None` for generation-style backends).
    fn window(&self) -> Option<(u64, u64)>;
}

/// Configuration from which sessions build codec endpoints.
///
/// `generation_size` and `packet_len` mean `g` and `s` as everywhere else
/// in the workspace; `overlap` and `window` only affect the backends that
/// use them and get sane defaults (`g/4` shared packets, `2g` window).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecConfig {
    /// Selected backend.
    pub kind: CodecKind,
    /// Packets per generation / class, and the nominal segment size for the
    /// sliding window's progress accounting.
    pub generation_size: usize,
    /// Payload bytes per packet.
    pub packet_len: usize,
    /// Packets shared between consecutive classes (`Overlap` backend).
    pub overlap: usize,
    /// Coding window span in packets (`Window` backend).
    pub window: usize,
    /// `Overlap` backend: emit one cross-class repair packet every
    /// `repair_interval` coded packets (0 disables repair).
    pub repair_interval: usize,
    /// Live-stream semantics: sources start with nothing released (the live
    /// edge advances via [`BroadcastCodec::advance_to`]), and the sliding
    /// window expires old columns instead of waiting for acknowledgements.
    pub live: bool,
}

impl CodecConfig {
    /// A config with default overlap (`g/4`, min 1 when `g > 1`), window
    /// (`2g`) and repair cadence (every `2g` packets).
    ///
    /// # Panics
    ///
    /// Panics if `generation_size == 0` or `packet_len == 0`.
    #[must_use]
    pub fn new(kind: CodecKind, generation_size: usize, packet_len: usize) -> Self {
        assert!(generation_size > 0, "generation_size must be positive");
        assert!(packet_len > 0, "packet_len must be positive");
        let overlap = if generation_size > 1 { (generation_size / 4).max(1) } else { 0 };
        CodecConfig {
            kind,
            generation_size,
            packet_len,
            overlap,
            window: 2 * generation_size,
            repair_interval: 2 * generation_size,
            live: false,
        }
    }

    /// Overrides the class overlap (must stay below `generation_size`).
    #[must_use]
    pub fn with_overlap(mut self, overlap: usize) -> Self {
        assert!(overlap < self.generation_size, "overlap must be smaller than g");
        self.overlap = overlap;
        self
    }

    /// Overrides the sliding-window span (must cover one generation).
    #[must_use]
    pub fn with_window(mut self, window: usize) -> Self {
        assert!(window >= self.generation_size, "window must cover one generation");
        assert!(window <= u16::MAX as usize, "window exceeds wire coefficient count");
        self.window = window;
        self
    }

    /// Overrides the repair-packet cadence (0 disables repair packets).
    #[must_use]
    pub fn with_repair_interval(mut self, every: usize) -> Self {
        self.repair_interval = every;
        self
    }

    /// Switches to live-stream semantics (see [`CodecConfig::live`]).
    #[must_use]
    pub fn with_live(mut self, live: bool) -> Self {
        self.live = live;
        self
    }

    /// Builds the source endpoint holding `data`.
    #[must_use]
    pub fn source(&self, data: &[u8]) -> Box<dyn BroadcastCodec> {
        match self.kind {
            CodecKind::Rlnc => Box::new(WholeObjectCodec::source(self, data)),
            CodecKind::Overlap => Box::new(OverlapCodec::source(self, data)),
            CodecKind::Window => Box::new(SlidingWindowCodec::source(self, data)),
        }
    }

    /// Builds a sink/relay endpoint for an object of `content_len` bytes.
    #[must_use]
    pub fn sink(&self, content_len: usize) -> Box<dyn BroadcastCodec> {
        match self.kind {
            CodecKind::Rlnc => Box::new(WholeObjectCodec::sink(self, content_len)),
            CodecKind::Overlap => Box::new(OverlapCodec::sink(self, content_len)),
            CodecKind::Window => Box::new(SlidingWindowCodec::sink(self, content_len)),
        }
    }

    /// Source packets an object of `content_len` bytes cuts into (before
    /// class padding): `ceil(content_len / packet_len)`, minimum 1.
    #[must_use]
    pub fn packet_count(&self, content_len: usize) -> usize {
        content_len.div_ceil(self.packet_len).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_data(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 31 % 251) as u8).collect()
    }

    #[test]
    fn kind_parse_and_env_selectors() {
        assert_eq!(CodecKind::parse("rlnc"), Some(CodecKind::Rlnc));
        assert_eq!(CodecKind::parse(" Overlap "), Some(CodecKind::Overlap));
        assert_eq!(CodecKind::parse("sliding"), Some(CodecKind::Window));
        assert_eq!(CodecKind::parse("fountain"), None);
        assert_eq!(CodecKind::Window.as_str(), "window");
    }

    /// The acceptance fixture: all three backends must produce byte-identical
    /// decoded output from the same content.
    #[test]
    fn all_backends_decode_identical_bytes() {
        let data = sample_data(700); // not a multiple of g·s
        for kind in [CodecKind::Rlnc, CodecKind::Overlap, CodecKind::Window] {
            let cfg = CodecConfig::new(kind, 8, 32);
            let mut src = cfg.source(&data);
            let mut dst = cfg.sink(data.len());
            let mut rng = StdRng::seed_from_u64(0xC0DEC);
            let mut sent = 0usize;
            while !dst.is_complete() {
                let p = src.encode(&mut rng).expect("source has data");
                let _ = dst.ingest(p).unwrap();
                src.on_feedback(dst.progress().delivered_packets);
                sent += 1;
                assert!(sent < 10_000, "{kind} did not converge");
            }
            assert_eq!(dst.decoded().unwrap(), data, "{kind} corrupted bytes");
            assert_eq!(src.decoded().unwrap(), data, "{kind} source decoded()");
            let prog = dst.progress();
            assert_eq!(prog.delivered_packets, prog.total_packets, "{kind}");
            assert_eq!(prog.delivered_bytes, data.len() as u64, "{kind}");
        }
    }

    /// Source → relay → sink through recode() for every backend.
    #[test]
    fn all_backends_survive_recoding_relay() {
        let data = sample_data(480);
        for kind in [CodecKind::Rlnc, CodecKind::Overlap, CodecKind::Window] {
            let cfg = CodecConfig::new(kind, 4, 16);
            let mut src = cfg.source(&data);
            let mut relay = cfg.sink(data.len());
            let mut dst = cfg.sink(data.len());
            let mut rng = StdRng::seed_from_u64(7);
            let mut steps = 0usize;
            while !dst.is_complete() {
                let p = src.encode(&mut rng).expect("source has data");
                let _ = relay.ingest(p).unwrap();
                if let Some(fwd) = relay.recode(&mut rng) {
                    let _ = dst.ingest(fwd).unwrap();
                }
                relay.on_feedback(dst.progress().delivered_packets);
                src.on_feedback(relay.progress().delivered_packets);
                steps += 1;
                assert!(steps < 20_000, "{kind} relay chain did not converge");
            }
            assert_eq!(dst.decoded().unwrap(), data, "{kind} via relay");
        }
    }

    #[test]
    fn progress_is_monotone_and_rank_bounded() {
        let data = sample_data(600);
        for kind in [CodecKind::Rlnc, CodecKind::Overlap, CodecKind::Window] {
            let cfg = CodecConfig::new(kind, 8, 16);
            let mut src = cfg.source(&data);
            let mut dst = cfg.sink(data.len());
            let mut rng = StdRng::seed_from_u64(99);
            let mut last = CodecProgress::default();
            while !dst.is_complete() {
                let p = src.encode(&mut rng).unwrap();
                let _ = dst.ingest(p).unwrap();
                src.on_feedback(dst.progress().delivered_packets);
                let now = dst.progress();
                assert!(now.rank >= last.rank, "{kind} rank regressed");
                assert!(now.delivered_packets >= last.delivered_packets, "{kind}");
                assert!(now.rank <= now.total_packets, "{kind} rank overcounts");
                last = now;
            }
        }
    }
}
