//! Backend 2: overlapping classes with cross-class repair packets.

use std::cell::Cell;

use curtain_gf::{vec_ops, Field, Gf256};
use curtain_rlnc::{ClassPlan, CodedPacket, Encoder, Recoder, RlncError};
use curtain_telemetry::SharedRecorder;
use rand::{RngCore, RngExt as _};

use crate::{BroadcastCodec, CodecConfig, CodecKind, CodecProgress};

/// Overlapping-class coding per Silva, Zeng & Kschischang (arXiv:0905.2796).
///
/// The object's packets are laid out by [`ClassPlan`]: classes of `g`
/// packets whose consecutive spans share `overlap` packets. Coded packets
/// are ordinary RLNC combinations within one class, so decode cost stays
/// O(g²·s); the shared packets couple the classes, and when one class
/// decodes, its packets are injected as systematic rows into the
/// neighbouring classes — each neighbour then needs only `g − overlap`
/// packets of its own, which caps the coupon-collector tail that makes
/// disjoint generations expensive to finish. The source additionally
/// emits **repair packets** (class id ≥ class count on the wire): random
/// combinations of just the packets shared across a class boundary, which
/// either neighbour can absorb.
///
/// Global rank is reported without double-counting the shared packets:
/// decoded (known) packets count once, and an incomplete class contributes
/// at most `min(rank − injected, unknown packets in its span)`.
pub struct OverlapCodec {
    plan: ClassPlan,
    s: usize,
    original_len: usize,
    live: bool,
    /// Source role: original bytes + per-class encoders over padded rows.
    source: Option<SourceState>,
    /// Sink/relay role: per-class recoders + decoded-packet cascade state.
    classes: Vec<Recoder>,
    known: Vec<Option<Vec<u8>>>,
    known_count: usize,
    /// Innovative systematic injections per class (for rank accounting).
    injected: Vec<u64>,
    recode_cursor: usize,
    /// Rotates the live relay's healing slot over all held classes.
    heal_cursor: usize,
    /// High-water mark of the global-rank estimate: the per-class
    /// contribution bound corrects itself downward when a completing
    /// class injects rows into a neighbour, and reported progress must
    /// never regress.
    rank_hwm: Cell<u64>,
}

struct SourceState {
    data: Vec<u8>,
    rows: Vec<Vec<u8>>,
    encoders: Vec<Encoder>,
    /// Classes currently servable (live edge).
    edge: usize,
    /// Packets emitted so far (drives the repair cadence).
    emitted: usize,
    class_cursor: usize,
    boundary_cursor: usize,
    repair_interval: usize,
}

impl OverlapCodec {
    fn plan_for(cfg: &CodecConfig, content_len: usize) -> ClassPlan {
        ClassPlan::new(cfg.packet_count(content_len), cfg.generation_size, cfg.overlap)
    }

    /// Builds the source endpoint over `data`.
    #[must_use]
    pub fn source(cfg: &CodecConfig, data: &[u8]) -> Self {
        let plan = Self::plan_for(cfg, data.len());
        let s = cfg.packet_len;
        let mut rows = vec![vec![0u8; s]; plan.padded_packets()];
        for (i, row) in rows.iter_mut().enumerate() {
            let start = i * s;
            if start < data.len() {
                let end = (start + s).min(data.len());
                row[..end - start].copy_from_slice(&data[start..end]);
            }
        }
        let encoders = (0..plan.class_count())
            .map(|c| {
                Encoder::new(c as u32, rows[plan.span(c)].to_vec())
                    .expect("class spans are non-empty and equal length")
            })
            .collect();
        let edge = if cfg.live { 0 } else { plan.class_count() };
        OverlapCodec {
            plan,
            s,
            original_len: data.len(),
            live: cfg.live,
            source: Some(SourceState {
                data: data.to_vec(),
                rows,
                encoders,
                edge,
                emitted: 0,
                class_cursor: 0,
                boundary_cursor: 0,
                repair_interval: cfg.repair_interval,
            }),
            classes: Vec::new(),
            known: Vec::new(),
            known_count: 0,
            injected: Vec::new(),
            recode_cursor: 0,
            heal_cursor: 0,
            rank_hwm: Cell::new(0),
        }
    }

    /// Builds a sink/relay endpoint for an object of `content_len` bytes.
    #[must_use]
    pub fn sink(cfg: &CodecConfig, content_len: usize) -> Self {
        let plan = Self::plan_for(cfg, content_len);
        let classes = (0..plan.class_count())
            .map(|c| Recoder::new(c as u32, plan.class_size(), cfg.packet_len))
            .collect();
        OverlapCodec {
            plan,
            s: cfg.packet_len,
            original_len: content_len,
            live: cfg.live,
            source: None,
            classes,
            known: vec![None; plan.padded_packets()],
            known_count: 0,
            injected: vec![0; plan.class_count()],
            recode_cursor: 0,
            heal_cursor: 0,
            rank_hwm: Cell::new(0),
        }
    }

    /// Decoding a class reveals its span; newly-known packets are injected
    /// as systematic rows into every other incomplete class covering them,
    /// which may complete those classes in turn — hence the worklist.
    fn cascade(&mut self, seed_class: usize) {
        let mut work = vec![seed_class];
        while let Some(c) = work.pop() {
            if !self.classes[c].is_complete() {
                continue;
            }
            let rows = self.classes[c].recover().expect("complete class recovers");
            let span = self.plan.span(c);
            let mut newly = Vec::new();
            for (local, idx) in span.clone().enumerate() {
                if self.known[idx].is_none() {
                    self.known[idx] = Some(rows[local].clone());
                    self.known_count += 1;
                    newly.push(idx);
                }
            }
            for &idx in &newly {
                for c2 in self.plan.classes_covering(idx) {
                    if c2 == c || self.classes[c2].is_complete() {
                        continue;
                    }
                    let local = idx - self.plan.span(c2).start;
                    let mut coeffs = vec![0u8; self.plan.class_size()];
                    coeffs[local] = 1;
                    let payload = self.known[idx].clone().expect("just marked known");
                    let innovative = self.classes[c2]
                        .push(CodedPacket::new(c2 as u32, coeffs, payload))
                        .expect("systematic injection is well-formed");
                    if innovative {
                        self.injected[c2] += 1;
                        if self.classes[c2].is_complete() {
                            work.push(c2);
                        }
                    }
                }
            }
        }
    }

    fn unknown_in_span(&self, c: usize) -> u64 {
        self.plan.span(c).filter(|&idx| self.known[idx].is_none()).count() as u64
    }

    /// Global rank: known packets count once; an incomplete class adds at
    /// most the information it could still reveal. Clamped at the padded
    /// total so overlapping spans can never overcount, and floored at its
    /// own high-water mark so the estimate is monotone even when a
    /// cascade re-attributes shared-column information.
    fn global_rank(&self) -> u64 {
        let total = self.plan.padded_packets() as u64;
        let mut rank = self.known_count as u64;
        for (c, class) in self.classes.iter().enumerate() {
            if class.is_complete() {
                continue;
            }
            let residual = (class.rank() as u64).saturating_sub(self.injected[c]);
            rank += residual.min(self.unknown_in_span(c));
        }
        let rank = rank.min(total).max(self.rank_hwm.get());
        self.rank_hwm.set(rank);
        rank
    }

    /// Contiguous decoded prefix in packets.
    fn delivered(&self) -> u64 {
        self.known.iter().take_while(|k| k.is_some()).count() as u64
    }
}

impl BroadcastCodec for OverlapCodec {
    fn kind(&self) -> CodecKind {
        CodecKind::Overlap
    }

    fn set_telemetry(&mut self, recorder: SharedRecorder, node: u64) {
        for r in &mut self.classes {
            r.set_telemetry(recorder.clone(), node);
        }
    }

    fn encode(&mut self, rng: &mut dyn RngCore) -> Option<CodedPacket> {
        let plan = self.plan;
        let live = self.live;
        let src = self.source.as_mut()?;
        if src.edge == 0 {
            return None;
        }
        src.emitted += 1;
        // Live streams concentrate on the two newest unlocked classes (the
        // older one still overlaps the edge, so stragglers get repaired);
        // file transfer round-robins everything unlocked.
        let serve_lo = if live { src.edge.saturating_sub(2) } else { 0 };
        let boundaries = src.edge.saturating_sub(1);
        if plan.overlap() > 0
            && boundaries > serve_lo
            && src.repair_interval > 0
            && src.emitted % src.repair_interval == 0
        {
            // Cross-class repair: a random combination of the packets two
            // neighbouring classes share, absorbable by either side.
            let b = if live {
                let b = serve_lo + src.boundary_cursor % (boundaries - serve_lo);
                src.boundary_cursor = src.boundary_cursor.wrapping_add(1);
                b
            } else {
                rng.random_range(0..boundaries)
            };
            let shared = plan.shared_span(b);
            let mut coeffs = vec![0u8; plan.overlap()];
            loop {
                for c in coeffs.iter_mut() {
                    *c = Gf256::random(&mut *rng).value();
                }
                if coeffs.iter().any(|&c| c != 0) {
                    break;
                }
            }
            let mut payload = vec![0u8; self.s];
            for (i, &c) in coeffs.iter().enumerate() {
                vec_ops::axpy(&mut payload, c, &src.rows[shared.start + i]);
            }
            return Some(CodedPacket::new((plan.class_count() + b) as u32, coeffs, payload));
        }
        // File transfer samples uniformly: a cursor advanced once per
        // out-link couples class choice to link parity (an even
        // out-degree would starve half the classes on every link).
        let c = if live {
            let c = serve_lo + src.class_cursor % (src.edge - serve_lo);
            src.class_cursor = src.class_cursor.wrapping_add(1);
            c
        } else {
            rng.random_range(0..src.edge)
        };
        Some(src.encoders[c].encode(&mut *rng))
    }

    fn ingest(&mut self, packet: CodedPacket) -> Result<bool, RlncError> {
        let m = self.plan.class_count();
        let gen = packet.generation() as usize;
        if gen < m {
            let innovative = self.classes[gen].push(packet)?;
            if innovative && self.classes[gen].is_complete() {
                self.cascade(gen);
            }
            return Ok(innovative);
        }
        let boundaries = m.saturating_sub(1);
        if gen >= m + boundaries {
            return Err(RlncError::GenerationMismatch {
                expected: (m + boundaries).saturating_sub(1) as u32,
                got: packet.generation(),
            });
        }
        // Repair packet for boundary b: expand its coefficients (over the
        // shared span) into a full class vector for whichever neighbour is
        // still decoding, preferring the one closer to completion.
        let b = gen - m;
        if packet.coefficients().len() != self.plan.overlap() {
            return Err(RlncError::CoefficientLengthMismatch {
                expected: self.plan.overlap(),
                got: packet.coefficients().len(),
            });
        }
        let shared = self.plan.shared_span(b);
        let target = [b, b + 1]
            .into_iter()
            .filter(|&c| !self.classes[c].is_complete())
            .max_by_key(|&c| self.classes[c].rank());
        let Some(c) = target else {
            return Ok(false); // both neighbours already decoded
        };
        let offset = shared.start - self.plan.span(c).start;
        let mut coeffs = vec![0u8; self.plan.class_size()];
        coeffs[offset..offset + self.plan.overlap()].copy_from_slice(packet.coefficients());
        let expanded = CodedPacket::new(c as u32, coeffs, packet.payload().to_vec());
        let innovative = self.classes[c].push(expanded)?;
        if innovative && self.classes[c].is_complete() {
            self.cascade(c);
        }
        Ok(innovative)
    }

    fn recode(&mut self, rng: &mut dyn RngCore) -> Option<CodedPacket> {
        let n = self.classes.len();
        if n == 0 {
            return None;
        }
        if self.live {
            // Live relays mostly mirror the source — alternate between the
            // two newest classes that carry information (stale segments
            // are past play-out) — but spend every fourth slot on the two
            // classes just behind the edge: those had their service window
            // cut short when the edge moved, so downstream stragglers are
            // most likely still missing them.
            let slot = self.recode_cursor;
            self.recode_cursor = self.recode_cursor.wrapping_add(1);
            let ranked: Vec<usize> =
                (0..n).rev().filter(|&c| self.classes[c].rank() > 0).take(4).collect();
            if ranked.is_empty() {
                return None;
            }
            let idx = if slot % 4 == 3 && ranked.len() > 2 {
                let trail = &ranked[2..];
                let idx = trail[self.heal_cursor % trail.len()];
                self.heal_cursor = self.heal_cursor.wrapping_add(1);
                idx
            } else {
                ranked[slot % ranked.len().min(2)]
            };
            return self.classes[idx].recode(&mut *rng);
        }
        // File transfer: a uniformly random class with information.
        // Deterministic preferences deadlock relay chains — favouring
        // incomplete classes forwards only sub-rank mixes, and a
        // per-call cursor couples the choice to out-link parity.
        let held: Vec<usize> = (0..n).filter(|&c| self.classes[c].rank() > 0).collect();
        if held.is_empty() {
            return None;
        }
        let idx = held[rng.random_range(0..held.len())];
        self.classes[idx].recode(&mut *rng)
    }

    fn advance_to(&mut self, source_packet: u64) {
        let plan = self.plan;
        let Some(src) = self.source.as_mut() else { return };
        let avail = (source_packet as usize).min(plan.total());
        let edge = if avail >= plan.total() {
            plan.class_count()
        } else {
            (0..plan.class_count()).take_while(|&c| plan.span(c).end <= avail).count()
        };
        src.edge = src.edge.max(edge);
    }

    fn on_feedback(&mut self, _delivered_packets: u64) {}

    fn progress(&self) -> CodecProgress {
        let total_packets = self.plan.padded_packets() as u64;
        let total_generations = self.plan.class_count() as u64;
        if self.source.is_some() {
            return CodecProgress {
                delivered_packets: total_packets,
                delivered_bytes: self.original_len as u64,
                complete_generations: total_generations,
                total_generations,
                rank: total_packets,
                total_packets,
            };
        }
        let delivered_packets = self.delivered();
        CodecProgress {
            delivered_packets,
            delivered_bytes: (delivered_packets * self.s as u64).min(self.original_len as u64),
            complete_generations: self.classes.iter().filter(|r| r.is_complete()).count() as u64,
            total_generations,
            rank: self.global_rank(),
            total_packets,
        }
    }

    fn is_range_decoded(&self, start: u64, end: u64) -> bool {
        if start >= end || self.source.is_some() {
            return true;
        }
        let lo = (start as usize).min(self.known.len());
        let hi = (end as usize).min(self.known.len());
        self.known[lo..hi].iter().all(Option::is_some)
    }

    fn is_complete(&self) -> bool {
        self.source.is_some() || self.known_count == self.plan.padded_packets()
    }

    fn decoded(&self) -> Option<Vec<u8>> {
        if let Some(src) = &self.source {
            return Some(src.data.clone());
        }
        if self.known_count != self.plan.padded_packets() {
            return None;
        }
        let mut out = Vec::with_capacity(self.original_len);
        for row in &self.known {
            out.extend_from_slice(row.as_ref().expect("complete"));
        }
        out.truncate(self.original_len);
        Some(out)
    }

    fn window(&self) -> Option<(u64, u64)> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 13 % 251) as u8).collect()
    }

    #[test]
    fn completing_one_class_unlocks_neighbours_via_overlap() {
        // 2 classes of 4 sharing 2 (6 packets of 8 bytes → 48 bytes).
        let cfg = CodecConfig::new(CodecKind::Overlap, 4, 8).with_overlap(2);
        let payload = data(48);
        let mut src = OverlapCodec::source(&cfg, &payload);
        let mut dst = OverlapCodec::sink(&cfg, payload.len());
        assert_eq!(dst.plan.class_count(), 2);
        let mut rng = StdRng::seed_from_u64(5);
        // Feed only class-0 packets until class 0 decodes.
        let mut guard = 0;
        while !dst.classes[0].is_complete() {
            let p = src.encode(&mut rng).unwrap();
            if p.generation() == 0 {
                dst.ingest(p).unwrap();
            }
            guard += 1;
            assert!(guard < 2000);
        }
        // The cascade hands class 1 its two shared packets.
        assert_eq!(dst.classes[1].rank(), 2);
        assert_eq!(dst.injected[1], 2);
        // Two more class-1 packets finish the object.
        let mut guard = 0;
        while !dst.is_complete() {
            let p = src.encode(&mut rng).unwrap();
            if p.generation() == 1 {
                dst.ingest(p).unwrap();
            }
            guard += 1;
            assert!(guard < 2000);
        }
        assert_eq!(dst.decoded().unwrap(), payload);
    }

    #[test]
    fn repair_packets_complete_either_neighbour() {
        let cfg = CodecConfig::new(CodecKind::Overlap, 4, 8)
            .with_overlap(2)
            .with_repair_interval(1); // every packet is a repair packet
        let payload = data(48);
        let mut src = OverlapCodec::source(&cfg, &payload);
        let mut dst = OverlapCodec::sink(&cfg, payload.len());
        let mut rng = StdRng::seed_from_u64(8);
        // Repair packets alone span only the shared packets: rank caps at 2.
        for _ in 0..16 {
            let p = src.encode(&mut rng).unwrap();
            assert!(p.generation() >= 2, "repair id beyond class ids");
            dst.ingest(p).unwrap();
        }
        let ranks: Vec<usize> = dst.classes.iter().map(Recoder::rank).collect();
        assert_eq!(ranks.iter().sum::<usize>(), 2, "shared span has 2 packets");
        assert!(dst.progress().rank <= dst.progress().total_packets);
    }

    #[test]
    fn repair_for_decoded_neighbours_is_redundant() {
        let cfg = CodecConfig::new(CodecKind::Overlap, 4, 8).with_overlap(2);
        let payload = data(48);
        let mut src = OverlapCodec::source(&cfg, &payload);
        let mut dst = OverlapCodec::sink(&cfg, payload.len());
        let mut rng = StdRng::seed_from_u64(2);
        let mut guard = 0;
        while !dst.is_complete() {
            let p = src.encode(&mut rng).unwrap();
            dst.ingest(p).unwrap();
            guard += 1;
            assert!(guard < 4000);
        }
        // Hand-build a repair packet for boundary 0: both sides decoded.
        let shared = dst.plan.shared_span(0);
        let mut repair_payload = vec![0u8; 8];
        vec_ops::axpy(&mut repair_payload, 3, dst.known[shared.start].as_ref().unwrap());
        let repair = CodedPacket::new(2, vec![3, 0], repair_payload);
        assert!(!dst.ingest(repair).unwrap());
    }

    #[test]
    fn malformed_ids_and_repair_coeffs_rejected() {
        let cfg = CodecConfig::new(CodecKind::Overlap, 4, 8).with_overlap(2);
        let mut dst = OverlapCodec::sink(&cfg, 48); // classes 0,1; repair id 2
        assert!(matches!(
            dst.ingest(CodedPacket::new(3, vec![1, 0], vec![0u8; 8])).unwrap_err(),
            RlncError::GenerationMismatch { got: 3, .. }
        ));
        assert!(matches!(
            dst.ingest(CodedPacket::new(2, vec![1, 0, 0], vec![0u8; 8])).unwrap_err(),
            RlncError::CoefficientLengthMismatch { expected: 2, got: 3 }
        ));
    }

    #[test]
    fn zero_overlap_degenerates_to_disjoint_generations() {
        let cfg = CodecConfig::new(CodecKind::Overlap, 4, 8).with_overlap(0);
        let payload = data(100);
        let mut src = OverlapCodec::source(&cfg, &payload);
        let mut dst = OverlapCodec::sink(&cfg, payload.len());
        let mut rng = StdRng::seed_from_u64(1);
        let mut sent = 0;
        while !dst.is_complete() {
            dst.ingest(src.encode(&mut rng).unwrap()).unwrap();
            sent += 1;
            assert!(sent < 4000);
        }
        assert_eq!(dst.decoded().unwrap(), payload);
    }
}
