//! The one-step drift function `f(b)` and its roots (§4).
//!
//! Combining Lemmas 6 and 7, the paper bounds the conditional drift of the
//! defect fraction `b = B/A`:
//!
//! ```text
//! E[b′] − b ≤ f(b) = p·d²/k − (1−p)·d(k−d²)/k² · b + (1−p)·(d/k) · b^(2−1/d)
//! ```
//!
//! `f` is convex with `f(0) > 0`, a negative minimum near `b ≈ 1/2`, and
//! two roots `a₁ < a₂` in `(0, 1)`. `a₁` is Theorem 4's steady state;
//! crossing `a₂` is the collapse event of Theorem 5.

/// Parameters of the drift analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftParams {
    /// Failure probability per arrival.
    pub p: f64,
    /// Per-node degree.
    pub d: usize,
    /// Server threads.
    pub k: usize,
}

impl DriftParams {
    /// Creates parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p < 1`, `d ≥ 2` and `k > d²` (the paper's
    /// standing assumptions — outside them `f` need not have two roots).
    #[must_use]
    pub fn new(p: f64, d: usize, k: usize) -> Self {
        assert!((0.0..1.0).contains(&p), "p must be in [0, 1)");
        assert!(d >= 2, "theory requires d >= 2");
        assert!(k > d * d, "theory requires k > d^2");
        DriftParams { p, d, k }
    }

    /// Evaluates `f(b)`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is outside `[0, 1]`.
    #[must_use]
    pub fn f(&self, b: f64) -> f64 {
        assert!((0.0..=1.0).contains(&b), "b must be in [0, 1]");
        let (p, d, k) = (self.p, self.d as f64, self.k as f64);
        p * d * d / k - (1.0 - p) * d * (k - d * d) / (k * k) * b
            + (1.0 - p) * (d / k) * b.powf(2.0 - 1.0 / d)
    }

    /// Location of the minimum of `f` (closed form from `f′(b) = 0`):
    /// `b* = [(k − d²) / (k(2 − 1/d))]^{d/(d−1)}`, approximately `1/2`.
    #[must_use]
    pub fn minimum_location(&self) -> f64 {
        let (d, k) = (self.d as f64, self.k as f64);
        ((k - d * d) / (k * (2.0 - 1.0 / d))).powf(d / (d - 1.0))
    }

    /// Value of `f` at its minimum. The paper notes this is below `−d/8k`
    /// for admissible parameters.
    #[must_use]
    pub fn minimum_value(&self) -> f64 {
        self.f(self.minimum_location())
    }

    /// The two roots `(a₁, a₂)` of `f` in `(0, 1)`, by bisection; `None` if
    /// `f` never goes negative (parameters outside the stable regime, e.g.
    /// `p·d` too large).
    #[must_use]
    pub fn roots(&self) -> Option<(f64, f64)> {
        let bmin = self.minimum_location().clamp(0.0, 1.0);
        if self.f(bmin) >= 0.0 {
            return None;
        }
        let a1 = bisect(|b| self.f(b), 0.0, bmin, true);
        let a2 = if self.f(1.0) >= 0.0 {
            bisect(|b| self.f(b), bmin, 1.0, false)
        } else {
            1.0
        };
        Some((a1, a2))
    }

    /// Theorem 4's steady-state bound on `E[B]/A`: the first root `a₁`,
    /// which the paper expands as `(1+ε)·p·d/((1−p)(1−d²/k))` with
    /// `0 < ε < (2pd)^{1−1/d}`.
    #[must_use]
    pub fn theorem4_bound(&self) -> Option<f64> {
        self.roots().map(|(a1, _)| a1)
    }

    /// The leading-order approximation `p·d/((1−p)(1−d²/k))` of `a₁`
    /// (the `ε → 0` limit).
    #[must_use]
    pub fn a1_leading_order(&self) -> f64 {
        let (p, d, k) = (self.p, self.d as f64, self.k as f64);
        p * d / ((1.0 - p) * (1.0 - d * d / k))
    }

    /// Lemma 6's maximum one-step change of the defect fraction: `d²/k`.
    #[must_use]
    pub fn lemma6_max_step(&self) -> f64 {
        let (d, k) = (self.d as f64, self.k as f64);
        d * d / k
    }
}

/// Bisection for a sign change of `f` on `[lo, hi]`. `descending` says the
/// function goes from + to − on the interval.
fn bisect<F: Fn(f64) -> f64>(f: F, mut lo: f64, mut hi: f64, descending: bool) -> f64 {
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        let v = f(mid);
        let go_right = if descending { v > 0.0 } else { v < 0.0 };
        if go_right {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn params() -> DriftParams {
        DriftParams::new(0.01, 3, 64)
    }

    #[test]
    fn f_positive_at_zero_negative_at_min() {
        let p = params();
        assert!(p.f(0.0) > 0.0);
        assert!(p.minimum_value() < 0.0);
    }

    #[test]
    fn minimum_location_is_stationary() {
        let p = params();
        let b = p.minimum_location();
        let eps = 1e-6;
        let slope = (p.f(b + eps) - p.f(b - eps)) / (2.0 * eps);
        assert!(slope.abs() < 1e-6, "slope {slope} at claimed minimum");
        assert!((0.3..0.7).contains(&b), "minimum should be near 1/2, got {b}");
    }

    #[test]
    fn paper_minimum_value_bound() {
        // "the minimum value of f is less than −d/8k" — holds for k ≥ c·d²
        // with c large enough and p small (the paper's standing regime).
        let p = DriftParams::new(0.001, 3, 256);
        let bound = -(p.d as f64) / (8.0 * p.k as f64);
        assert!(p.minimum_value() < bound, "{} !< {}", p.minimum_value(), bound);
    }

    #[test]
    fn roots_bracket_and_match_leading_order() {
        let p = params();
        let (a1, a2) = p.roots().expect("stable regime");
        assert!(0.0 < a1 && a1 < 0.5 && 0.5 < a2 && a2 <= 1.0);
        assert!(p.f(a1).abs() < 1e-9);
        if a2 < 1.0 {
            assert!(p.f(a2).abs() < 1e-9);
        }
        // a1 ≈ pd/((1-p)(1-d²/k)) within the paper's (1+ε) slack.
        let lead = p.a1_leading_order();
        assert!(a1 >= lead * 0.999, "a1 {a1} below leading order {lead}");
        let eps_cap = (2.0 * p.p * p.d as f64).powf(1.0 - 1.0 / p.d as f64);
        assert!(
            a1 <= lead * (1.0 + eps_cap) * 1.05,
            "a1 {a1} exceeds (1+ε)·leading order, ε cap {eps_cap}"
        );
    }

    #[test]
    fn unstable_regime_has_no_roots() {
        // Huge p·d: f stays positive everywhere.
        let p = DriftParams::new(0.5, 3, 64);
        assert!(p.roots().is_none());
    }

    #[test]
    fn lemma6_step() {
        assert!((params().lemma6_max_step() - 9.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "theory requires d >= 2")]
    fn d1_rejected() {
        let _ = DriftParams::new(0.1, 1, 16);
    }

    #[test]
    #[should_panic(expected = "b must be in [0, 1]")]
    fn f_domain_checked() {
        let _ = params().f(1.5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// f is convex: midpoint below chord.
        #[test]
        fn f_is_convex(x in 0.0f64..1.0, y in 0.0f64..1.0) {
            let p = params();
            let (x, y) = (x.min(y), x.max(y));
            let mid = 0.5 * (x + y);
            prop_assert!(p.f(mid) <= 0.5 * (p.f(x) + p.f(y)) + 1e-12);
        }

        /// Roots exist whenever p·d is small (stable regime), and a1 grows
        /// with p.
        #[test]
        fn a1_monotone_in_p(p1 in 0.001f64..0.02, p2 in 0.001f64..0.02) {
            prop_assume!(p1 < p2);
            let a1 = DriftParams::new(p1, 3, 64).theorem4_bound().unwrap();
            let b1 = DriftParams::new(p2, 3, 64).theorem4_bound().unwrap();
            prop_assert!(a1 <= b1 + 1e-12);
        }
    }
}
