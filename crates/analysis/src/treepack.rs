//! Edge-disjoint arborescence packing — the §1 "theoretical" alternative.
//!
//! Edmonds' theorem: a directed graph contains `c` edge-disjoint spanning
//! arborescences rooted at `r` iff every vertex has edge connectivity ≥ `c`
//! from `r`. The paper notes one *could* broadcast optimally by partitioning
//! the overlay into multicast trees this way, but that recomputing the
//! partition on every failure is impractical — which is exactly why it uses
//! network coding instead. We reproduce the alternative as the E07 routing
//! baseline:
//!
//! * [`edmonds_capacity`] — the theorem's bound: `min_v maxflow(r → v)`.
//! * [`greedy_pack`] — a simple greedy packer (repeatedly peel a BFS
//!   spanning arborescence from the remaining edges). Greedy peeling is not
//!   optimal in general; the gap to [`edmonds_capacity`] is reported by the
//!   experiment as the *practicality tax* of tree-based distribution.

use std::collections::VecDeque;

use curtain_overlay::OverlayGraph;

/// A directed multigraph given by its edge list (for packing).
#[derive(Debug, Clone)]
pub struct DiGraph {
    n: usize,
    edges: Vec<(usize, usize)>,
}

impl DiGraph {
    /// Creates a graph with `n` vertices and the given directed edges.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    #[must_use]
    pub fn new(n: usize, edges: Vec<(usize, usize)>) -> Self {
        assert!(edges.iter().all(|&(u, v)| u < n && v < n), "edge endpoint out of range");
        DiGraph { n, edges }
    }

    /// Builds from the live part of an overlay graph (the server plus
    /// working nodes). Vertex indices are preserved.
    #[must_use]
    pub fn from_overlay(graph: &OverlayGraph) -> Self {
        DiGraph { n: graph.vertex_count(), edges: graph.live_edges() }
    }

    /// Vertex count.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Edge count.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }
}

/// One extracted spanning arborescence: `parent_edge[v]` is the edge index
/// used to reach `v` (`None` for the root).
#[derive(Debug, Clone)]
pub struct Arborescence {
    /// Root vertex.
    pub root: usize,
    /// For each vertex, the index (into the packing's edge list) of its
    /// incoming tree edge.
    pub parent_edge: Vec<Option<usize>>,
}

/// Result of a greedy packing run.
#[derive(Debug, Clone)]
pub struct Packing {
    /// The extracted arborescences.
    pub trees: Vec<Arborescence>,
    /// The Edmonds upper bound for the same graph.
    pub edmonds_bound: usize,
}

impl Packing {
    /// Trees actually packed.
    #[must_use]
    pub fn count(&self) -> usize {
        self.trees.len()
    }

    /// Greedy's shortfall versus the Edmonds optimum.
    #[must_use]
    pub fn gap(&self) -> usize {
        self.edmonds_bound - self.trees.len()
    }
}

/// The Edmonds bound: broadcast capacity from `root` = the minimum over
/// vertices of the max-flow from the root (vertices unreachable at all give
/// capacity 0).
///
/// Skips vertices with no incident edges only if `root` is also isolated.
///
/// # Panics
///
/// Panics if `root` is out of range.
#[must_use]
pub fn edmonds_capacity(graph: &DiGraph, root: usize) -> usize {
    assert!(root < graph.n, "root out of range");
    let mut flow = curtain_overlay::FlowNetwork::new(graph.n);
    for &(u, v) in &graph.edges {
        flow.add_edge(u, v, 1);
    }
    (0..graph.n)
        .filter(|&v| v != root)
        .map(|v| flow.max_flow(root, v, None))
        .min()
        .unwrap_or(0)
}

/// Greedily peels BFS spanning arborescences rooted at `root` until no
/// spanning arborescence remains in the residual edges.
///
/// # Panics
///
/// Panics if `root` is out of range.
#[must_use]
pub fn greedy_pack(graph: &DiGraph, root: usize) -> Packing {
    assert!(root < graph.n, "root out of range");
    let edmonds_bound = edmonds_capacity(graph, root);
    let mut used = vec![false; graph.edges.len()];
    // adjacency: vertex -> edge indices
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); graph.n];
    for (i, &(u, _)) in graph.edges.iter().enumerate() {
        adj[u].push(i);
    }
    let mut trees = Vec::new();
    loop {
        // BFS over unused edges.
        let mut parent_edge: Vec<Option<usize>> = vec![None; graph.n];
        let mut seen = vec![false; graph.n];
        seen[root] = true;
        let mut queue = VecDeque::from([root]);
        let mut reached = 1;
        while let Some(u) = queue.pop_front() {
            for &e in &adj[u] {
                if used[e] {
                    continue;
                }
                let v = graph.edges[e].1;
                if seen[v] {
                    continue;
                }
                seen[v] = true;
                parent_edge[v] = Some(e);
                reached += 1;
                queue.push_back(v);
            }
        }
        if reached < graph.n {
            break;
        }
        for pe in parent_edge.iter().flatten() {
            used[*pe] = true;
        }
        trees.push(Arborescence { root, parent_edge });
        if trees.len() >= edmonds_bound {
            break; // cannot possibly do better
        }
    }
    Packing { trees, edmonds_bound }
}

#[cfg(test)]
mod tests {
    use super::*;
    use curtain_overlay::{CurtainNetwork, OverlayConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_path_graph_packs_one_tree() {
        // 0 -> 1 -> 2
        let g = DiGraph::new(3, vec![(0, 1), (1, 2)]);
        let pack = greedy_pack(&g, 0);
        assert_eq!(pack.edmonds_bound, 1);
        assert_eq!(pack.count(), 1);
        assert_eq!(pack.gap(), 0);
    }

    #[test]
    fn disconnected_graph_has_zero_capacity() {
        let g = DiGraph::new(3, vec![(0, 1)]);
        assert_eq!(edmonds_capacity(&g, 0), 0);
        assert_eq!(greedy_pack(&g, 0).count(), 0);
    }

    #[test]
    fn doubled_edges_pack_two_trees() {
        // Two parallel copies of a star 0 -> {1, 2}.
        let edges = vec![(0, 1), (0, 1), (0, 2), (0, 2)];
        let g = DiGraph::new(3, edges);
        let pack = greedy_pack(&g, 0);
        assert_eq!(pack.edmonds_bound, 2);
        assert_eq!(pack.count(), 2);
    }

    #[test]
    fn trees_are_edge_disjoint_and_spanning() {
        // Fresh curtain overlay: capacity should be d and trees disjoint.
        let mut net = CurtainNetwork::new(OverlayConfig::new(8, 3)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..30 {
            net.join(&mut rng);
        }
        let g = DiGraph::from_overlay(&net.graph());
        let pack = greedy_pack(&g, 0);
        assert_eq!(pack.edmonds_bound, 3);
        assert!(pack.count() >= 1, "greedy found no tree at all");
        // Disjointness: no edge index reused across trees.
        let mut seen = std::collections::HashSet::new();
        for tree in &pack.trees {
            for e in tree.parent_edge.iter().flatten() {
                assert!(seen.insert(*e), "edge {e} reused");
            }
            // Spanning: every non-root vertex has a parent.
            for (v, pe) in tree.parent_edge.iter().enumerate() {
                if v != tree.root {
                    assert!(pe.is_some(), "vertex {v} unreached");
                }
            }
        }
    }

    #[test]
    fn greedy_never_exceeds_edmonds() {
        let mut net = CurtainNetwork::new(OverlayConfig::new(10, 4)).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..40 {
            net.join(&mut rng);
        }
        let g = DiGraph::from_overlay(&net.graph());
        let pack = greedy_pack(&g, 0);
        assert!(pack.count() <= pack.edmonds_bound);
    }

    #[test]
    #[should_panic(expected = "edge endpoint out of range")]
    fn bad_edges_rejected() {
        let _ = DiGraph::new(2, vec![(0, 5)]);
    }
}
