//! The scalar *bound process*: a cheap stand-in for the defect trajectory.
//!
//! The full overlay simulation tracks the true `B^t` but costs a max-flow
//! per sampled tuple. For collapse-time scaling (E04) we also simulate the
//! one-dimensional chain that the paper's proof actually argues about:
//!
//! * a failed arrival (probability `p`) moves `b` **up** by Lemma 6's
//!   worst-case step `d²/k · (1 − b)` (the damage can only hit currently
//!   non-defective tuples, hence the `(1 − b)` attenuation; using the raw
//!   `d²/k` is also available as [`StepModel::Pessimistic`]);
//! * a working arrival (probability `1 − p`) moves `b` **down** by Lemma
//!   7's expected decrement `b·(d/k)·(1 − d²/k − b^{(d−1)/d})`.
//!
//! The pessimistic variant stochastically dominates the true process, so
//! its collapse times are conservative (earlier than reality) — the right
//! direction for validating Theorem 5's *lower* bound on collapse time.

use rand::{Rng, RngExt as _};

use crate::drift::DriftParams;

/// How failed arrivals are modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StepModel {
    /// Up-step `d²/k · (1 − b)`: Lemma 6's bound attenuated by the tuples
    /// already defective.
    #[default]
    Attenuated,
    /// Up-step `d²/k` always: the raw Lemma 6 worst case.
    Pessimistic,
}

/// The scalar defect chain.
#[derive(Debug, Clone)]
pub struct DefectChain {
    params: DriftParams,
    model: StepModel,
    b: f64,
    steps: u64,
}

impl DefectChain {
    /// Creates a chain at `b = 0`.
    #[must_use]
    pub fn new(params: DriftParams, model: StepModel) -> Self {
        DefectChain { params, model, b: 0.0, steps: 0 }
    }

    /// Current defect fraction.
    #[must_use]
    pub fn b(&self) -> f64 {
        self.b
    }

    /// Arrivals simulated so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Simulates one arrival.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.steps += 1;
        let d = self.params.d as f64;
        let k = self.params.k as f64;
        if rng.random_bool(self.params.p) {
            let up = match self.model {
                StepModel::Attenuated => d * d / k * (1.0 - self.b),
                StepModel::Pessimistic => d * d / k,
            };
            self.b = (self.b + up).min(1.0);
        } else {
            let down = self.b * (d / k) * (1.0 - d * d / k - self.b.powf((d - 1.0) / d));
            // Lemma 7's decrement is only guaranteed while the expression is
            // positive (b below a2); past that the defect no longer shrinks.
            if down > 0.0 {
                self.b = (self.b - down).max(0.0);
            }
        }
    }

    /// Runs until `b ≥ threshold` (collapse) or `max_steps`; returns the
    /// number of steps to collapse, or `None` if it never collapsed.
    pub fn run_to_collapse<R: Rng + ?Sized>(
        &mut self,
        threshold: f64,
        max_steps: u64,
        rng: &mut R,
    ) -> Option<u64> {
        for _ in 0..max_steps {
            self.step(rng);
            if self.b >= threshold {
                return Some(self.steps);
            }
        }
        None
    }

    /// Runs `steps` arrivals and returns the time-averaged `b` over the
    /// second half (a steady-state estimate).
    pub fn steady_state_estimate<R: Rng + ?Sized>(&mut self, steps: u64, rng: &mut R) -> f64 {
        let half = steps / 2;
        for _ in 0..half {
            self.step(rng);
        }
        let mut acc = 0.0;
        for _ in half..steps {
            self.step(rng);
            acc += self.b;
        }
        acc / (steps - half).max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stays_near_theorem4_bound_in_stable_regime() {
        let params = DriftParams::new(0.01, 3, 64);
        let mut chain = DefectChain::new(params, StepModel::Attenuated);
        let mut rng = StdRng::seed_from_u64(1);
        let avg = chain.steady_state_estimate(200_000, &mut rng);
        let a1 = params.theorem4_bound().unwrap();
        // The chain takes Lemma 6's *max* up-step, so it sits above the true
        // process but should stay within a small factor of a1 and far from
        // collapse.
        assert!(avg > 0.0, "chain never left zero");
        assert!(avg < 6.0 * a1, "steady state {avg} too far above a1 {a1}");
        assert!(chain.b() < 0.5, "chain drifted to collapse in stable regime");
    }

    #[test]
    fn collapses_fast_in_unstable_regime() {
        // p·d large: no negative drift region, collapse is quick.
        let params = DriftParams { p: 0.45, d: 3, k: 16 };
        let mut chain = DefectChain::new(params, StepModel::Pessimistic);
        let mut rng = StdRng::seed_from_u64(2);
        let t = chain.run_to_collapse(0.9, 1_000_000, &mut rng);
        assert!(t.is_some(), "unstable chain must collapse");
        assert!(t.unwrap() < 100_000);
    }

    #[test]
    fn collapse_time_grows_with_k() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut times = Vec::new();
        for k in [6usize, 12, 24] {
            let params = DriftParams { p: 0.15, d: 2, k };
            let mut total = 0u64;
            let trials = 20;
            for _ in 0..trials {
                let mut chain = DefectChain::new(params, StepModel::Pessimistic);
                total += chain
                    .run_to_collapse(0.7, 5_000_000, &mut rng)
                    .expect("p=0.15, d=2 chain collapses eventually");
            }
            times.push(total as f64 / trials as f64);
        }
        assert!(times[1] > times[0], "{times:?}");
        assert!(times[2] > times[1], "{times:?}");
    }

    #[test]
    fn deterministic_under_seed() {
        let params = DriftParams::new(0.05, 2, 16);
        let run = |seed| {
            let mut c = DefectChain::new(params, StepModel::Attenuated);
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..1000 {
                c.step(&mut rng);
            }
            c.b()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn b_stays_in_unit_interval() {
        let params = DriftParams { p: 0.3, d: 3, k: 16 };
        let mut chain = DefectChain::new(params, StepModel::Pessimistic);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            chain.step(&mut rng);
            assert!((0.0..=1.0).contains(&chain.b()));
        }
    }
}
