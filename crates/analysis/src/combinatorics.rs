//! Log-domain combinatorics for the drift and bound formulas.

/// Natural log of `n!`, exact summation (fine for the `n ≤ 10⁴` range the
/// experiments use).
#[must_use]
pub fn ln_factorial(n: u64) -> f64 {
    (2..=n).map(|i| (i as f64).ln()).sum()
}

/// Natural log of `C(n, r)`; `-inf` when `r > n`.
#[must_use]
pub fn ln_choose(n: u64, r: u64) -> f64 {
    if r > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(r) - ln_factorial(n - r)
}

/// `C(n, r)` as an `f64` (exact for small values, accurate to f64 beyond).
#[must_use]
pub fn choose_f64(n: u64, r: u64) -> f64 {
    if r > n {
        return 0.0;
    }
    let r = r.min(n - r);
    let mut acc = 1.0f64;
    for i in 0..r {
        acc *= (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

/// `C(n, r)` exactly in `u128`.
///
/// # Panics
///
/// Panics on overflow.
#[must_use]
pub fn choose_u128(n: u64, r: u64) -> u128 {
    if r > n {
        return 0;
    }
    let r = r.min(n - r);
    let mut acc: u128 = 1;
    for i in 0..r {
        acc = acc.checked_mul((n - i) as u128).expect("binomial overflow") / (i as u128 + 1);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ln_factorial_small_values() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn choose_agree_across_representations() {
        for n in 0..30u64 {
            for r in 0..=n {
                let exact = choose_u128(n, r) as f64;
                assert!(
                    (choose_f64(n, r) - exact).abs() / exact.max(1.0) < 1e-12,
                    "f64 mismatch at C({n},{r})"
                );
                assert!(
                    (ln_choose(n, r) - exact.ln()).abs() < 1e-9,
                    "ln mismatch at C({n},{r})"
                );
            }
        }
    }

    #[test]
    fn out_of_range_r() {
        assert_eq!(choose_u128(3, 4), 0);
        assert_eq!(choose_f64(3, 4), 0.0);
        assert_eq!(ln_choose(3, 4), f64::NEG_INFINITY);
    }

    proptest! {
        #[test]
        fn pascal_rule(n in 1u64..40, r in 1u64..40) {
            prop_assume!(r <= n);
            let lhs = choose_u128(n, r);
            let rhs = choose_u128(n - 1, r - 1) + choose_u128(n - 1, r);
            prop_assert_eq!(lhs, rhs);
        }

        #[test]
        fn symmetry(n in 0u64..50, r in 0u64..50) {
            prop_assume!(r <= n);
            prop_assert_eq!(choose_u128(n, r), choose_u128(n, n - r));
        }
    }
}
