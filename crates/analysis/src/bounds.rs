//! Lemma 8 / Theorem 5: escape probability and collapse time.
//!
//! The proof of Lemma 8 bounds the probability that the defect random walk,
//! started in the buffer zone `X`, crosses the width-`b` band `Y` and
//! reaches the collapse region `Z` before falling back:
//!
//! ```text
//! P(escape) ≤ ( sqrt((1 − δ₂/d)/(1 + δ₂/d)) )^{k·b/d²}
//!             ───────────────────────────────────────
//!                    1 − sqrt(1 − δ₂²/d²)
//! ```
//!
//! which is `ξ₁·e^{−ξ₂·k/d³}` for constants `ξ₁, ξ₂` — so the expected
//! number of arrivals before collapse is at least `(1/ξ₁)·e^{ξ₂·k/d³}`
//! (Theorem 5). Experiment E04 checks the *shape*: measured collapse times
//! grow exponentially in `k/d³`.

/// Parameters of the Lemma 8 bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollapseParams {
    /// Server threads `k`.
    pub k: usize,
    /// Degree `d`.
    pub d: usize,
    /// The drift constant `δ₂` (drift in `Y` is at least `δ₂·d/k·A` per
    /// step, in defect units).
    pub delta2: f64,
    /// Width `b` of the band `Y` the walk must cross (defect fraction
    /// units, `b₂ − b₁ − d²/k` in the paper's notation).
    pub band_width: f64,
}

impl CollapseParams {
    /// Creates parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `d ≥ 2`, `0 < delta2 < d` and `0 < band_width ≤ 1`.
    #[must_use]
    pub fn new(k: usize, d: usize, delta2: f64, band_width: f64) -> Self {
        assert!(d >= 2, "theory requires d >= 2");
        assert!(delta2 > 0.0 && delta2 < d as f64, "need 0 < delta2 < d");
        assert!(band_width > 0.0 && band_width <= 1.0, "band width in (0, 1]");
        CollapseParams { k, d, delta2, band_width }
    }

    /// The explicit Lemma 8 escape-probability bound.
    #[must_use]
    pub fn escape_probability(&self) -> f64 {
        let d = self.d as f64;
        let ratio = ((1.0 - self.delta2 / d) / (1.0 + self.delta2 / d)).sqrt();
        let exponent = self.k as f64 * self.band_width / (d * d);
        let numerator = ratio.powf(exponent);
        let denominator = 1.0 - (1.0 - (self.delta2 / d).powi(2)).sqrt();
        (numerator / denominator).min(1.0)
    }

    /// Theorem 5: expected megasteps before collapse ≥ 1 / escape
    /// probability.
    #[must_use]
    pub fn collapse_time_lower_bound(&self) -> f64 {
        1.0 / self.escape_probability()
    }

    /// The exponent `ξ₂·k/d³` in the asymptotic form, extracted so
    /// experiments can verify linearity of `log(collapse time)` in `k/d³`.
    ///
    /// `sqrt((1−x)/(1+x)) = e^{−x−x³/3−…}`, so the exponent is
    /// `(k·b/d²)·(δ₂/d + O(δ₂³/d³)) ≈ b·δ₂·k/d³`.
    #[must_use]
    pub fn asymptotic_exponent(&self) -> f64 {
        let d = self.d as f64;
        let ratio = ((1.0 - self.delta2 / d) / (1.0 + self.delta2 / d)).sqrt();
        -(self.k as f64 * self.band_width / (d * d)) * ratio.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_probability_decreases_with_k() {
        // The bound saturates at 1 for small k (Lemma 8 is an asymptotic
        // statement); compare in the regime where it bites.
        let p256 = CollapseParams::new(256, 2, 0.5, 0.3).escape_probability();
        let p512 = CollapseParams::new(512, 2, 0.5, 0.3).escape_probability();
        let p1024 = CollapseParams::new(1024, 2, 0.5, 0.3).escape_probability();
        assert!(p256 > p512);
        assert!(p512 > p1024);
        assert!(p1024 > 0.0);
    }

    #[test]
    fn collapse_time_grows_exponentially_in_k_over_d3() {
        // log(T) should be ~ linear in k/d^3 at fixed delta2, band width.
        let times: Vec<f64> = [256usize, 512, 1024, 2048]
            .iter()
            .map(|&k| CollapseParams::new(k, 2, 0.5, 0.3).collapse_time_lower_bound())
            .collect();
        let logs: Vec<f64> = times.iter().map(|t| t.ln()).collect();
        // Successive differences of log T should be roughly equal (doubling
        // k doubles the exponent) once out of the probability-1 saturation.
        let d1 = logs[2] - logs[1];
        let d2 = logs[3] - logs[2];
        assert!(d2 > 1.5 * d1 && d2 < 2.5 * d1, "d1 {d1}, d2 {d2}");
    }

    #[test]
    fn asymptotic_exponent_tracks_k_over_d3() {
        let e1 = CollapseParams::new(100, 2, 0.5, 0.3).asymptotic_exponent();
        let e2 = CollapseParams::new(200, 2, 0.5, 0.3).asymptotic_exponent();
        assert!((e2 / e1 - 2.0).abs() < 1e-9, "exponent must be linear in k");
        // And ≈ b·δ₂·k/d³ to leading order.
        let approx = 0.3 * 0.5 * 100.0 / 8.0;
        assert!((e1 - approx).abs() / approx < 0.05, "e1 {e1} vs approx {approx}");
    }

    #[test]
    fn probability_capped_at_one() {
        // Tiny k: the bound exceeds 1 and must be clamped.
        let p = CollapseParams::new(4, 2, 0.1, 0.05).escape_probability();
        assert!(p <= 1.0);
        assert!(CollapseParams::new(4, 2, 0.1, 0.05).collapse_time_lower_bound() >= 1.0);
    }

    #[test]
    #[should_panic(expected = "need 0 < delta2 < d")]
    fn delta2_validated() {
        let _ = CollapseParams::new(16, 2, 2.5, 0.3);
    }
}
