//! Closed-form theory from §4 of the paper, as executable functions.
//!
//! The experiments overlay these curves on measured data:
//!
//! * [`drift`] — the one-step drift function `f(b)` bounding
//!   `E[b′] − b` (derived from Lemmas 6 and 7), its minimum and its roots
//!   `a₁ < a₂`. The first root **is** Theorem 4's steady-state bound:
//!   `a₁ = (1+ε)·p·d / ((1−p)(1−d²/k))`.
//! * [`bounds`] — Lemma 8's Azuma-style escape probability and Theorem 5's
//!   collapse-time lower bound `(1/ξ₁)·e^{ξ₂·k/d³}`.
//! * [`defect_chain`] — the *bound process*: a scalar Markov chain that
//!   moves by Lemma 6's worst-case increment on failures and Lemma 7's
//!   expected decrement on working arrivals. It stochastically dominates
//!   the true defect fraction, so its collapse times lower-bound nothing —
//!   they *upper-bound* the defect trajectory — and it extends experiment
//!   E04 to sizes the full simulation cannot reach.
//! * [`combinatorics`] — log-domain binomials used everywhere above.
//! * [`treepack`] — greedy edge-disjoint arborescence packing, the
//!   "Edmonds' theorem" routing alternative the paper calls theoretically
//!   optimal but impractical (§1): reproduced here as the E07 baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod combinatorics;
pub mod defect_chain;
pub mod drift;
pub mod treepack;
