//! Error type shared across the RLNC codec.

use std::fmt;

use crate::generation::GenerationId;

/// Errors produced by the RLNC codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RlncError {
    /// A packet was offered to a component configured for a different
    /// generation.
    GenerationMismatch {
        /// Generation the component handles.
        expected: GenerationId,
        /// Generation carried by the packet.
        got: GenerationId,
    },
    /// A packet's coefficient-vector length disagrees with the generation
    /// size.
    CoefficientLengthMismatch {
        /// Expected vector length (the generation size `g`).
        expected: usize,
        /// Length found in the packet.
        got: usize,
    },
    /// A packet's payload length disagrees with the configured symbol count.
    PayloadLengthMismatch {
        /// Expected payload length in bytes.
        expected: usize,
        /// Length found in the packet.
        got: usize,
    },
    /// Construction was attempted with an empty generation.
    EmptyGeneration,
    /// Source packets with inconsistent lengths were supplied.
    InconsistentSourceLengths,
    /// A wire buffer could not be parsed as a [`crate::CodedPacket`].
    MalformedWirePacket(&'static str),
}

impl fmt::Display for RlncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RlncError::GenerationMismatch { expected, got } => {
                write!(f, "packet for generation {got} offered to generation {expected}")
            }
            RlncError::CoefficientLengthMismatch { expected, got } => {
                write!(f, "coefficient vector length {got}, expected {expected}")
            }
            RlncError::PayloadLengthMismatch { expected, got } => {
                write!(f, "payload length {got}, expected {expected}")
            }
            RlncError::EmptyGeneration => write!(f, "generation has no packets"),
            RlncError::InconsistentSourceLengths => {
                write!(f, "source packets have inconsistent lengths")
            }
            RlncError::MalformedWirePacket(what) => write!(f, "malformed wire packet: {what}"),
        }
    }
}

impl std::error::Error for RlncError {}
