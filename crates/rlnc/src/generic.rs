//! Field-generic encoder/decoder for codec ablation experiments.
//!
//! The production path ([`crate::Encoder`]/[`crate::Decoder`]) is hard-wired
//! to GF(2⁸) byte buffers for speed. This module provides the same algebra
//! over any [`Field`] so experiment E09 can compare GF(2⁸) against GF(2¹⁶):
//! larger fields reduce the probability of non-innovative combinations at
//! the cost of per-symbol table pressure and doubled coefficient overhead.

use curtain_gf::{Field, Matrix};
use rand::Rng;

/// A coded packet over an arbitrary field: coefficients + symbol payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenericPacket<F: Field> {
    /// Coefficient vector (length = generation size).
    pub coefficients: Vec<F>,
    /// Payload symbols.
    pub payload: Vec<F>,
}

/// Source encoder over field `F`.
#[derive(Debug, Clone)]
pub struct GenericEncoder<F: Field> {
    packets: Vec<Vec<F>>,
}

impl<F: Field> GenericEncoder<F> {
    /// Creates an encoder over equal-length source symbol vectors.
    ///
    /// # Panics
    ///
    /// Panics if `packets` is empty or ragged.
    #[must_use]
    pub fn new(packets: Vec<Vec<F>>) -> Self {
        assert!(!packets.is_empty(), "empty generation");
        let len = packets[0].len();
        assert!(packets.iter().all(|p| p.len() == len), "ragged generation");
        GenericEncoder { packets }
    }

    /// Generation size.
    #[must_use]
    pub fn generation_size(&self) -> usize {
        self.packets.len()
    }

    /// Emits a random combination (re-rolling the all-zero draw).
    pub fn encode<R: Rng + ?Sized>(&self, rng: &mut R) -> GenericPacket<F> {
        let g = self.packets.len();
        let s = self.packets[0].len();
        let mut coefficients = vec![F::ZERO; g];
        loop {
            for c in coefficients.iter_mut() {
                *c = F::random(rng);
            }
            if coefficients.iter().any(|c| !c.is_zero()) {
                break;
            }
        }
        let mut payload = vec![F::ZERO; s];
        for (c, src) in coefficients.iter().zip(&self.packets) {
            if c.is_zero() {
                continue;
            }
            for (p, x) in payload.iter_mut().zip(src) {
                *p = p.add(c.mul(*x));
            }
        }
        GenericPacket { coefficients, payload }
    }
}

/// Progressive decoder over field `F`, built on [`Matrix`] elimination.
#[derive(Debug, Clone)]
pub struct GenericDecoder<F: Field> {
    g: usize,
    symbol_len: usize,
    /// Augmented matrix [coeffs | payload], re-reduced on each push.
    rows: Matrix<F>,
    rank: usize,
}

impl<F: Field> GenericDecoder<F> {
    /// Creates a decoder for `g` packets of `symbol_len` symbols.
    ///
    /// # Panics
    ///
    /// Panics if `g == 0`.
    #[must_use]
    pub fn new(g: usize, symbol_len: usize) -> Self {
        assert!(g > 0, "generation size must be positive");
        GenericDecoder { g, symbol_len, rows: Matrix::zero(0, g + symbol_len), rank: 0 }
    }

    /// Current rank.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// True iff decodable.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.rank == self.g
    }

    /// Offers a packet; returns `true` iff innovative.
    ///
    /// # Panics
    ///
    /// Panics if the packet shape disagrees with the decoder configuration.
    pub fn push(&mut self, packet: &GenericPacket<F>) -> bool {
        assert_eq!(packet.coefficients.len(), self.g, "coefficient length");
        assert_eq!(packet.payload.len(), self.symbol_len, "payload length");
        let mut row = Vec::with_capacity(self.g + self.symbol_len);
        row.extend_from_slice(&packet.coefficients);
        row.extend_from_slice(&packet.payload);
        self.rows.push_row(&row);
        let (total_rank, pivots) = self.rows.rref();
        // A pivot beyond the coefficient columns means a row reduced to zero
        // coefficients but non-zero payload — impossible for honestly coded
        // packets, only corrupt ones. Only coefficient pivots count as rank.
        let rank_in_coeffs = pivots.iter().filter(|&&p| p < self.g).count();
        let grew = rank_in_coeffs > self.rank;
        self.rank = rank_in_coeffs;
        // Drop all-zero rows so the matrix stays small.
        if total_rank < self.rows.rows() {
            let keep: Vec<Vec<F>> = (0..total_rank).map(|r| self.rows.row(r).to_vec()).collect();
            self.rows = if keep.is_empty() {
                Matrix::zero(0, self.g + self.symbol_len)
            } else {
                Matrix::from_rows(&keep)
            };
        }
        grew
    }

    /// Recovers the source symbol vectors once complete.
    #[must_use]
    pub fn recover(&self) -> Option<Vec<Vec<F>>> {
        if !self.is_complete() {
            return None;
        }
        Some(
            (0..self.g)
                .map(|r| self.rows.row(r)[self.g..].to_vec())
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use curtain_gf::{Gf256, Gf2p16};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_transfer<F: Field>(seed: u64) -> (usize, usize) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = 8;
        let s = 16;
        let src: Vec<Vec<F>> = (0..g)
            .map(|_| (0..s).map(|_| F::random(&mut rng)).collect())
            .collect();
        let enc = GenericEncoder::new(src.clone());
        let mut dec = GenericDecoder::new(g, s);
        let mut sent = 0;
        while !dec.is_complete() {
            dec.push(&enc.encode(&mut rng));
            sent += 1;
            assert!(sent < 1000, "did not converge");
        }
        assert_eq!(dec.recover().unwrap(), src);
        (sent, g)
    }

    #[test]
    fn gf256_transfer_completes() {
        let (sent, g) = run_transfer::<Gf256>(1);
        assert!(sent >= g);
    }

    #[test]
    fn gf2p16_transfer_completes() {
        let (sent, g) = run_transfer::<Gf2p16>(2);
        assert!(sent >= g);
    }

    #[test]
    fn rank_monotone_and_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        let src: Vec<Vec<Gf256>> = (0..4)
            .map(|i| vec![Gf256::new(i as u8 + 1); 4])
            .collect();
        let enc = GenericEncoder::new(src);
        let mut dec = GenericDecoder::new(4, 4);
        let mut last = 0;
        for _ in 0..50 {
            dec.push(&enc.encode(&mut rng));
            assert!(dec.rank() >= last);
            assert!(dec.rank() <= 4);
            last = dec.rank();
        }
        assert!(dec.is_complete());
    }

    #[test]
    fn duplicate_packet_not_innovative() {
        let src: Vec<Vec<Gf2p16>> = vec![vec![Gf2p16::new(5); 2], vec![Gf2p16::new(9); 2]];
        let enc = GenericEncoder::new(src);
        let mut rng = StdRng::seed_from_u64(4);
        let p = enc.encode(&mut rng);
        let mut dec = GenericDecoder::new(2, 2);
        assert!(dec.push(&p));
        assert!(!dec.push(&p));
        assert_eq!(dec.rank(), 1);
    }
}
