//! Seed-compressed coefficient vectors: an optional wire optimization.
//!
//! A *source-coded* packet's coefficient vector is uniformly random, so it
//! can be shipped as the 8-byte PRNG seed that generated it instead of `g`
//! explicit bytes — a `g − 8` byte saving per source packet (at `g = 128`
//! that is ~94% of the header). The trick only works for packets whose
//! coefficients the sender *chose* (a recoder's output coefficients are
//! determined by arithmetic, not a seed), which is exactly why the wire
//! format carries both representations.
//!
//! This mirrors the coding-vector compression used by production RLNC
//! stacks; experiment E09 reports the measured saving.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

use crate::error::RlncError;
use crate::generation::GenerationId;
use crate::packet::CodedPacket;

/// Expands a seed into the `g`-byte coefficient vector it denotes.
///
/// The all-zero expansion (probability `256^-g`) is patched to `e_0` so a
/// seeded packet is never vacuous.
#[must_use]
pub fn expand_seed(seed: u64, g: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coeffs = vec![0u8; g];
    rng.fill(&mut coeffs[..]);
    if coeffs.iter().all(|&c| c == 0) {
        coeffs[0] = 1;
    }
    coeffs
}

/// A packet as it travels: either explicit coefficients or a seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WirePacket {
    /// Full coefficient vector (recoded packets).
    Explicit(CodedPacket),
    /// Seed-compressed coefficients (source packets).
    Seeded {
        /// Generation id.
        generation: GenerationId,
        /// Generation size `g` (needed to expand the seed).
        generation_size: u16,
        /// The coefficient seed.
        seed: u64,
        /// The coded payload.
        payload: Bytes,
    },
}

const TAG_EXPLICIT: u8 = 1;
const TAG_SEEDED: u8 = 2;

impl WirePacket {
    /// Wraps an explicit packet.
    #[must_use]
    pub fn explicit(packet: CodedPacket) -> Self {
        WirePacket::Explicit(packet)
    }

    /// Builds a seeded wire packet from its parts.
    #[must_use]
    pub fn seeded(
        generation: GenerationId,
        generation_size: u16,
        seed: u64,
        payload: Bytes,
    ) -> Self {
        WirePacket::Seeded { generation, generation_size, seed, payload }
    }

    /// Bytes this representation needs on the wire.
    #[must_use]
    pub fn wire_len(&self) -> usize {
        match self {
            WirePacket::Explicit(p) => 1 + p.wire_len(),
            WirePacket::Seeded { payload, .. } => 1 + 4 + 2 + 8 + 4 + payload.len(),
        }
    }

    /// Serializes with a one-byte representation tag.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_len());
        match self {
            WirePacket::Explicit(p) => {
                buf.put_u8(TAG_EXPLICIT);
                buf.put_slice(&p.to_wire());
            }
            WirePacket::Seeded { generation, generation_size, seed, payload } => {
                buf.put_u8(TAG_SEEDED);
                buf.put_u32_le(*generation);
                buf.put_u16_le(*generation_size);
                buf.put_u64_le(*seed);
                buf.put_u32_le(payload.len() as u32);
                buf.put_slice(payload);
            }
        }
        buf.freeze()
    }

    /// Parses either representation.
    ///
    /// # Errors
    ///
    /// Returns [`RlncError::MalformedWirePacket`] on truncation, bad tags,
    /// or inconsistent lengths.
    pub fn decode(buf: &[u8]) -> Result<Self, RlncError> {
        let (&tag, mut rest) = buf
            .split_first()
            .ok_or(RlncError::MalformedWirePacket("empty buffer"))?;
        match tag {
            TAG_EXPLICIT => CodedPacket::from_wire(rest).map(WirePacket::Explicit),
            TAG_SEEDED => {
                if rest.len() < 4 + 2 + 8 + 4 {
                    return Err(RlncError::MalformedWirePacket("seeded header truncated"));
                }
                let generation = rest.get_u32_le();
                let generation_size = rest.get_u16_le();
                let seed = rest.get_u64_le();
                let payload_len = rest.get_u32_le() as usize;
                if rest.len() != payload_len {
                    return Err(RlncError::MalformedWirePacket("seeded body length mismatch"));
                }
                Ok(WirePacket::Seeded {
                    generation,
                    generation_size,
                    seed,
                    payload: Bytes::copy_from_slice(rest),
                })
            }
            _ => Err(RlncError::MalformedWirePacket("unknown representation tag")),
        }
    }

    /// Materializes the full packet (expanding the seed if needed).
    #[must_use]
    pub fn into_packet(self) -> CodedPacket {
        match self {
            WirePacket::Explicit(p) => p,
            WirePacket::Seeded { generation, generation_size, seed, payload } => {
                let coeffs = expand_seed(seed, generation_size as usize);
                CodedPacket::new(generation, coeffs, payload)
            }
        }
    }
}

impl crate::encoder::Encoder {
    /// Emits a seed-compressed source packet: the coefficients are the
    /// expansion of a random seed, so the wire form costs 8 bytes of
    /// header instead of `g`.
    pub fn encode_seeded<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> WirePacket {
        let seed: u64 = rng.random();
        let coeffs = expand_seed(seed, self.generation_size());
        let mut payload = vec![0u8; self.symbol_len()];
        for (c, src) in coeffs.iter().zip(self.source_packets()) {
            curtain_gf::vec_ops::axpy(&mut payload, *c, src);
        }
        WirePacket::seeded(
            self.generation(),
            self.generation_size() as u16,
            seed,
            Bytes::from(payload),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Decoder, Encoder};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn encoder(g: usize, s: usize) -> Encoder {
        let data: Vec<Vec<u8>> = (0..g).map(|i| vec![i as u8 + 1; s]).collect();
        Encoder::new(0, data).unwrap()
    }

    #[test]
    fn expansion_is_deterministic_and_never_vacuous() {
        assert_eq!(expand_seed(42, 16), expand_seed(42, 16));
        assert_ne!(expand_seed(42, 16), expand_seed(43, 16));
        for seed in 0..200 {
            assert!(expand_seed(seed, 8).iter().any(|&c| c != 0));
        }
    }

    #[test]
    fn seeded_and_explicit_agree_after_expansion() {
        let enc = encoder(8, 32);
        let mut rng = StdRng::seed_from_u64(1);
        let wire = enc.encode_seeded(&mut rng);
        let WirePacket::Seeded { seed, generation_size, .. } = &wire else {
            panic!("expected seeded");
        };
        let expanded = expand_seed(*seed, *generation_size as usize);
        let packet = wire.clone().into_packet();
        assert_eq!(packet.coefficients(), &expanded[..]);
        // The payload is the declared combination.
        let mut expect = vec![0u8; 32];
        for (c, src) in expanded.iter().zip((0..8).map(|i| vec![i as u8 + 1; 32])) {
            curtain_gf::vec_ops::axpy(&mut expect, *c, &src);
        }
        assert_eq!(packet.payload(), &expect[..]);
    }

    #[test]
    fn wire_round_trips_both_forms() {
        let enc = encoder(8, 32);
        let mut rng = StdRng::seed_from_u64(2);
        let seeded = enc.encode_seeded(&mut rng);
        assert_eq!(WirePacket::decode(&seeded.encode()).unwrap(), seeded);
        let explicit = WirePacket::explicit(enc.encode(&mut rng));
        assert_eq!(WirePacket::decode(&explicit.encode()).unwrap(), explicit);
    }

    #[test]
    fn seeded_packets_decode_the_generation() {
        let g = 12;
        let s = 24;
        let enc = encoder(g, s);
        let mut dec = Decoder::new(0, g, s);
        let mut rng = StdRng::seed_from_u64(3);
        let mut sent = 0;
        while !dec.is_complete() {
            let p = enc.encode_seeded(&mut rng).into_packet();
            dec.push(p).unwrap();
            sent += 1;
            assert!(sent < 100 * g);
        }
        let recovered = dec.recover().unwrap();
        assert_eq!(recovered[3], vec![4u8; s]);
    }

    #[test]
    fn header_saving_matches_formula() {
        let g = 128;
        let s = 1024;
        let enc = encoder(g, s);
        let mut rng = StdRng::seed_from_u64(4);
        let seeded = enc.encode_seeded(&mut rng);
        let explicit = WirePacket::explicit(seeded.clone().into_packet());
        assert_eq!(explicit.wire_len() - seeded.wire_len(), g - 8);
    }

    #[test]
    fn bad_tags_and_truncations_rejected() {
        assert!(WirePacket::decode(&[]).is_err());
        assert!(WirePacket::decode(&[9, 0, 0]).is_err());
        assert!(WirePacket::decode(&[TAG_SEEDED, 1, 2]).is_err());
        let enc = encoder(4, 8);
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = enc.encode_seeded(&mut rng).encode().to_vec();
        buf.pop();
        assert!(WirePacket::decode(&buf).is_err());
    }

    proptest! {
        /// Arbitrary bytes never panic the decoder (fuzz).
        #[test]
        fn decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = WirePacket::decode(&data);
            let _ = CodedPacket::from_wire(&data);
        }

        /// Round trip for random seeded packets.
        #[test]
        fn seeded_round_trip(generation: u32, g in 1u16..64, seed: u64,
                             payload in proptest::collection::vec(any::<u8>(), 0..128)) {
            let w = WirePacket::seeded(generation, g, seed, payload.into());
            prop_assert_eq!(WirePacket::decode(&w.encode()).unwrap(), w);
        }
    }
}
