//! The intermediate node: buffer received packets, forward fresh mixtures.

use bytes::Bytes;
use curtain_telemetry::{Event, SharedRecorder};
use rand::Rng;

use crate::error::RlncError;
use crate::generation::GenerationId;
use crate::packet::CodedPacket;
use crate::rowspace::RowSpace;
use crate::stats::CodingStats;

/// Recoder state for one generation at an intermediate overlay node.
///
/// This is the "clip" of the curtain metaphor: packets from the node's `d`
/// parent streams are pushed in; each outgoing stream pulls fresh random
/// combinations out. Only innovative packets are buffered (the basis of the
/// received span), so memory is bounded by `g · symbol_len` regardless of
/// how much traffic passes through.
///
/// # Example
///
/// ```
/// use curtain_rlnc::{Encoder, Recoder};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let enc = Encoder::new(0, vec![vec![1u8; 4], vec![2u8; 4]]).unwrap();
/// let mut rec = Recoder::new(0, 2, 4);
/// rec.push(enc.encode(&mut rng)).unwrap();
/// let out = rec.recode(&mut rng).unwrap();
/// assert!(!out.is_vacuous());
/// ```
#[derive(Debug, Clone)]
pub struct Recoder {
    id: GenerationId,
    space: RowSpace,
    stats: CodingStats,
    /// Optional `(recorder, node label)` emitting per-packet
    /// innovative/redundant events; `None` costs one branch in `push`.
    telemetry: Option<(SharedRecorder, u64)>,
}

impl Recoder {
    /// Creates a recoder for generation `id` with `g` packets of
    /// `symbol_len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `g == 0`.
    #[must_use]
    pub fn new(id: GenerationId, g: usize, symbol_len: usize) -> Self {
        Recoder {
            id,
            space: RowSpace::new(g, symbol_len),
            stats: CodingStats::default(),
            telemetry: None,
        }
    }

    /// Attaches a telemetry recorder; [`Recoder::push`] then emits a
    /// `PacketInnovative` / `PacketRedundant` event per packet, labelled
    /// with `node` (the forwarding host's id).
    pub fn set_telemetry(&mut self, recorder: SharedRecorder, node: u64) {
        self.telemetry = Some((recorder, node));
    }

    /// Generation id this recoder handles.
    #[must_use]
    pub fn generation(&self) -> GenerationId {
        self.id
    }

    /// Rank of the buffered span — the most this node can pass on.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.space.rank()
    }

    /// True iff the node has the full generation (can act as a secondary
    /// source).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.space.is_complete()
    }

    /// Counters of innovative / redundant packets seen so far.
    #[must_use]
    pub fn stats(&self) -> &CodingStats {
        &self.stats
    }

    /// Offers a received packet. Returns `true` iff it was innovative.
    ///
    /// # Errors
    ///
    /// Same validation as [`crate::Decoder::push`].
    pub fn push(&mut self, packet: CodedPacket) -> Result<bool, RlncError> {
        if packet.generation() != self.id {
            return Err(RlncError::GenerationMismatch { expected: self.id, got: packet.generation() });
        }
        if packet.coefficients().len() != self.space.generation_size() {
            return Err(RlncError::CoefficientLengthMismatch {
                expected: self.space.generation_size(),
                got: packet.coefficients().len(),
            });
        }
        if packet.payload().len() != self.space.symbol_len() {
            return Err(RlncError::PayloadLengthMismatch {
                expected: self.space.symbol_len(),
                got: packet.payload().len(),
            });
        }
        let innovative = self
            .space
            .insert(packet.coefficients().to_vec(), packet.payload().to_vec());
        self.stats.record(innovative);
        if let Some((recorder, node)) = &self.telemetry {
            recorder.record(&if innovative {
                Event::PacketInnovative {
                    node: *node,
                    generation: self.id,
                    rank: self.space.rank() as u32,
                }
            } else {
                Event::PacketRedundant { node: *node, generation: self.id }
            });
        }
        Ok(innovative)
    }

    /// Emits a fresh random combination of everything received so far, or
    /// `None` if nothing has been received yet.
    #[must_use]
    pub fn recode<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<CodedPacket> {
        let (coeffs, payload) = self.space.random_combination(rng)?;
        Some(CodedPacket::new(self.id, coeffs, Bytes::from(payload)))
    }

    /// Once complete, recovers the source packets (a complete recoder is
    /// also a decoder).
    #[must_use]
    pub fn recover(&self) -> Option<Vec<Vec<u8>>> {
        self.space.recover()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::Decoder;
    use crate::encoder::Encoder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data(g: usize, s: usize) -> Vec<Vec<u8>> {
        (0..g).map(|i| (0..s).map(|j| (i * 7 + j * 3) as u8).collect()).collect()
    }

    #[test]
    fn recode_before_any_input_is_none() {
        let rec = Recoder::new(0, 3, 4);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(rec.recode(&mut rng).is_none());
    }

    #[test]
    fn chain_of_recoders_preserves_decodability() {
        // source -> r1 -> r2 -> r3 -> sink, one packet at a time.
        let src = data(4, 10);
        let enc = Encoder::new(0, src.clone()).unwrap();
        let mut chain = [Recoder::new(0, 4, 10), Recoder::new(0, 4, 10), Recoder::new(0, 4, 10)];
        let mut sink = Decoder::new(0, 4, 10);
        let mut rng = StdRng::seed_from_u64(5);
        let mut rounds = 0;
        while !sink.is_complete() {
            chain[0].push(enc.encode(&mut rng)).unwrap();
            for i in 1..chain.len() {
                if let Some(p) = chain[i - 1].recode(&mut rng) {
                    chain[i].push(p).unwrap();
                }
            }
            if let Some(p) = chain.last().unwrap().recode(&mut rng) {
                sink.push(p).unwrap();
            }
            rounds += 1;
            assert!(rounds < 500, "chain transfer did not converge");
        }
        assert_eq!(sink.recover().unwrap(), src);
    }

    #[test]
    fn recoder_rank_never_exceeds_input_rank() {
        let src = data(6, 4);
        let enc = Encoder::new(0, src).unwrap();
        let mut rec = Recoder::new(0, 6, 4);
        let mut rng = StdRng::seed_from_u64(6);
        // Feed only 3 innovative packets.
        let mut fed = 0;
        while fed < 3 {
            if rec.push(enc.encode(&mut rng)).unwrap() {
                fed += 1;
            }
        }
        assert_eq!(rec.rank(), 3);
        // A downstream decoder can never learn more than rank 3 from us.
        let mut dec = Decoder::new(0, 6, 4);
        for _ in 0..200 {
            dec.push(rec.recode(&mut rng).unwrap()).unwrap();
        }
        assert_eq!(dec.rank(), 3);
        assert!(!dec.is_complete());
    }

    #[test]
    fn complete_recoder_can_recover() {
        let src = data(3, 4);
        let enc = Encoder::new(0, src.clone()).unwrap();
        let mut rec = Recoder::new(0, 3, 4);
        let mut rng = StdRng::seed_from_u64(7);
        while !rec.is_complete() {
            rec.push(enc.encode(&mut rng)).unwrap();
        }
        assert_eq!(rec.recover().unwrap(), src);
    }

    #[test]
    fn validation_mirrors_decoder() {
        let mut rec = Recoder::new(1, 2, 4);
        let p = CodedPacket::new(9, vec![1, 0], Bytes::from(vec![0u8; 4]));
        assert!(matches!(rec.push(p), Err(RlncError::GenerationMismatch { .. })));
    }
}
