//! The intermediate node: buffer received packets, forward fresh mixtures.

use std::sync::Arc;

use curtain_telemetry::{Event, SharedRecorder};
use rand::Rng;

use crate::buffer::{BufPool, PacketBuf};
use crate::error::RlncError;
use crate::generation::GenerationId;
use crate::packet::CodedPacket;
use crate::rowspace::{random_combination_of, RowSpace};
use crate::stats::CodingStats;

/// Recoder state for one generation at an intermediate overlay node.
///
/// This is the "clip" of the curtain metaphor: packets from the node's `d`
/// parent streams are pushed in; each outgoing stream pulls fresh random
/// combinations out. Only innovative packets are buffered (the basis of the
/// received span), so memory is bounded by `g · symbol_len` regardless of
/// how much traffic passes through.
///
/// # Example
///
/// ```
/// use curtain_rlnc::{Encoder, Recoder};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let enc = Encoder::new(0, vec![vec![1u8; 4], vec![2u8; 4]]).unwrap();
/// let mut rec = Recoder::new(0, 2, 4);
/// rec.push(enc.encode(&mut rng)).unwrap();
/// let out = rec.recode(&mut rng).unwrap();
/// assert!(!out.is_vacuous());
/// ```
#[derive(Debug, Clone)]
pub struct Recoder {
    id: GenerationId,
    space: RowSpace,
    stats: CodingStats,
    /// Optional `(recorder, node label)` emitting per-packet
    /// innovative/redundant events; `None` costs one branch in `push`.
    telemetry: Option<(SharedRecorder, u64)>,
    /// Cached [`RecodeSnapshot`], invalidated on innovation. Serving
    /// threads clone the `Arc` under the lock (O(1)) and mix outside it.
    snapshot_cache: Option<Arc<RecodeSnapshot>>,
}

impl Recoder {
    /// Creates a recoder for generation `id` with `g` packets of
    /// `symbol_len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `g == 0`.
    #[must_use]
    pub fn new(id: GenerationId, g: usize, symbol_len: usize) -> Self {
        Recoder {
            id,
            space: RowSpace::new(g, symbol_len),
            stats: CodingStats::default(),
            telemetry: None,
            snapshot_cache: None,
        }
    }

    /// Like [`Recoder::new`], drawing row storage from a shared [`BufPool`].
    ///
    /// # Panics
    ///
    /// Panics if `g == 0`.
    #[must_use]
    pub fn with_pool(id: GenerationId, g: usize, symbol_len: usize, pool: BufPool) -> Self {
        Recoder {
            id,
            space: RowSpace::with_pool(g, symbol_len, pool),
            stats: CodingStats::default(),
            telemetry: None,
            snapshot_cache: None,
        }
    }

    /// Attaches a telemetry recorder; [`Recoder::push`] then emits a
    /// `PacketInnovative` / `PacketRedundant` event per packet, labelled
    /// with `node` (the forwarding host's id).
    pub fn set_telemetry(&mut self, recorder: SharedRecorder, node: u64) {
        self.telemetry = Some((recorder, node));
    }

    /// Generation id this recoder handles.
    #[must_use]
    pub fn generation(&self) -> GenerationId {
        self.id
    }

    /// Rank of the buffered span — the most this node can pass on.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.space.rank()
    }

    /// True iff the node has the full generation (can act as a secondary
    /// source).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.space.is_complete()
    }

    /// Counters of innovative / redundant packets seen so far.
    #[must_use]
    pub fn stats(&self) -> &CodingStats {
        &self.stats
    }

    /// Offers a received packet. Returns `true` iff it was innovative.
    ///
    /// # Errors
    ///
    /// Same validation as [`crate::Decoder::push`].
    pub fn push(&mut self, packet: CodedPacket) -> Result<bool, RlncError> {
        if packet.generation() != self.id {
            return Err(RlncError::GenerationMismatch { expected: self.id, got: packet.generation() });
        }
        if packet.coefficients().len() != self.space.generation_size() {
            return Err(RlncError::CoefficientLengthMismatch {
                expected: self.space.generation_size(),
                got: packet.coefficients().len(),
            });
        }
        if packet.payload().len() != self.space.symbol_len() {
            return Err(RlncError::PayloadLengthMismatch {
                expected: self.space.symbol_len(),
                got: packet.payload().len(),
            });
        }
        // Zero-copy ingest: take the packet's buffers; a uniquely-owned
        // packet (the wire path) is eliminated in place.
        let timer = self.telemetry.as_ref().map(|_| std::time::Instant::now());
        let (_, coeffs, payload) = packet.into_parts();
        let innovative = self.space.insert(coeffs, payload);
        self.stats.record(innovative);
        if innovative {
            // The basis changed: outstanding snapshots are stale.
            self.snapshot_cache = None;
        }
        if let Some((recorder, node)) = &self.telemetry {
            if let Some(t) = timer {
                recorder.histogram("decode_ns", t.elapsed().as_nanos() as f64);
            }
            recorder.record(&if innovative {
                Event::PacketInnovative {
                    node: *node,
                    generation: self.id,
                    rank: self.space.rank() as u32,
                }
            } else {
                Event::PacketRedundant { node: *node, generation: self.id }
            });
            if innovative && self.space.is_complete() {
                recorder.record(&Event::GenerationComplete {
                    node: *node,
                    generation: self.id,
                    innovative: self.stats.innovative(),
                    redundant: self.stats.redundant(),
                });
                recorder.counter("generations_decoded", 1);
            }
        }
        Ok(innovative)
    }

    /// Emits a fresh random combination of everything received so far, or
    /// `None` if nothing has been received yet.
    #[must_use]
    pub fn recode<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<CodedPacket> {
        let timer = self.telemetry.as_ref().map(|_| std::time::Instant::now());
        let (coeffs, payload) = self.space.random_combination(rng)?;
        if let (Some((recorder, _)), Some(t)) = (&self.telemetry, timer) {
            recorder.histogram("recode_ns", t.elapsed().as_nanos() as f64);
        }
        Some(CodedPacket::new(self.id, coeffs, payload))
    }

    /// Epoch of the buffered basis: advances exactly when an innovative
    /// packet lands. A [`RecodeSnapshot`] whose
    /// [`epoch`](RecodeSnapshot::epoch) matches is current.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.space.epoch()
    }

    /// Shares the current basis as an immutable [`RecodeSnapshot`].
    ///
    /// The snapshot is cached and re-shared until the next innovative
    /// packet, so the per-emit cost under a lock is one `Arc` clone —
    /// O(1), no row copying, no `Recoder` clone. Mixing then happens
    /// against the snapshot with no lock held; later inserts copy-on-write
    /// around the shared rows.
    #[must_use]
    pub fn snapshot(&mut self) -> Arc<RecodeSnapshot> {
        if let Some(s) = &self.snapshot_cache {
            return Arc::clone(s);
        }
        let snap = Arc::new(RecodeSnapshot {
            generation: self.id,
            g: self.space.generation_size(),
            symbol_len: self.space.symbol_len(),
            epoch: self.space.epoch(),
            rows: self.space.snapshot_rows(),
            pool: self.space.pool().clone(),
        });
        self.snapshot_cache = Some(Arc::clone(&snap));
        snap
    }

    /// Once complete, recovers the source packets (a complete recoder is
    /// also a decoder).
    #[must_use]
    pub fn recover(&self) -> Option<Vec<Vec<u8>>> {
        self.space.recover()
    }
}

/// An immutable view of a [`Recoder`]'s basis at one epoch, for lock-free
/// recoding.
///
/// The rows are refcounted [`PacketBuf`]s shared with the live row space:
/// taking a snapshot copies no bytes, and the space's later mutations
/// copy-on-write around it. A serving thread clones the `Arc` under its
/// state lock, releases the lock, and mixes packets from the snapshot for
/// as long as [`RecodeSnapshot::epoch`] matches the recoder's —
/// the seqlock-style emit path of the peer pipeline.
#[derive(Debug, Clone)]
pub struct RecodeSnapshot {
    generation: GenerationId,
    g: usize,
    symbol_len: usize,
    epoch: u64,
    rows: Vec<(PacketBuf, PacketBuf)>,
    pool: BufPool,
}

impl RecodeSnapshot {
    /// Generation the snapshot mixes.
    #[must_use]
    pub fn generation(&self) -> GenerationId {
        self.generation
    }

    /// Rank of the snapshot (number of basis rows).
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rows.len()
    }

    /// True iff there is nothing to mix.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The row-space epoch this snapshot was taken at.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Iterates the basis rows as `(coefficients, payload)` slices, in
    /// insertion order. For inspection and benchmarking; mixing should go
    /// through [`RecodeSnapshot::recode`].
    pub fn rows(&self) -> impl Iterator<Item = (&[u8], &[u8])> {
        self.rows.iter().map(|(c, p)| (&c[..], &p[..]))
    }

    /// Emits a fresh random combination of the snapshot's rows, or `None`
    /// if the snapshot is empty. Holds no locks and copies no rows; output
    /// buffers come from the recoder's pool.
    #[must_use]
    pub fn recode<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<CodedPacket> {
        let (coeffs, payload) = random_combination_of(
            self.rows.iter().map(|(c, p)| (&c[..], &p[..])),
            self.g,
            self.symbol_len,
            &self.pool,
            rng,
        )?;
        Some(CodedPacket::new(self.generation, coeffs, payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::Decoder;
    use crate::encoder::Encoder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data(g: usize, s: usize) -> Vec<Vec<u8>> {
        (0..g).map(|i| (0..s).map(|j| (i * 7 + j * 3) as u8).collect()).collect()
    }

    #[test]
    fn recode_before_any_input_is_none() {
        let rec = Recoder::new(0, 3, 4);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(rec.recode(&mut rng).is_none());
    }

    #[test]
    fn chain_of_recoders_preserves_decodability() {
        // source -> r1 -> r2 -> r3 -> sink, one packet at a time.
        let src = data(4, 10);
        let enc = Encoder::new(0, src.clone()).unwrap();
        let mut chain = [Recoder::new(0, 4, 10), Recoder::new(0, 4, 10), Recoder::new(0, 4, 10)];
        let mut sink = Decoder::new(0, 4, 10);
        let mut rng = StdRng::seed_from_u64(5);
        let mut rounds = 0;
        while !sink.is_complete() {
            chain[0].push(enc.encode(&mut rng)).unwrap();
            for i in 1..chain.len() {
                if let Some(p) = chain[i - 1].recode(&mut rng) {
                    chain[i].push(p).unwrap();
                }
            }
            if let Some(p) = chain.last().unwrap().recode(&mut rng) {
                sink.push(p).unwrap();
            }
            rounds += 1;
            assert!(rounds < 500, "chain transfer did not converge");
        }
        assert_eq!(sink.recover().unwrap(), src);
    }

    #[test]
    fn recoder_rank_never_exceeds_input_rank() {
        let src = data(6, 4);
        let enc = Encoder::new(0, src).unwrap();
        let mut rec = Recoder::new(0, 6, 4);
        let mut rng = StdRng::seed_from_u64(6);
        // Feed only 3 innovative packets.
        let mut fed = 0;
        while fed < 3 {
            if rec.push(enc.encode(&mut rng)).unwrap() {
                fed += 1;
            }
        }
        assert_eq!(rec.rank(), 3);
        // A downstream decoder can never learn more than rank 3 from us.
        let mut dec = Decoder::new(0, 6, 4);
        for _ in 0..200 {
            dec.push(rec.recode(&mut rng).unwrap()).unwrap();
        }
        assert_eq!(dec.rank(), 3);
        assert!(!dec.is_complete());
    }

    #[test]
    fn complete_recoder_can_recover() {
        let src = data(3, 4);
        let enc = Encoder::new(0, src.clone()).unwrap();
        let mut rec = Recoder::new(0, 3, 4);
        let mut rng = StdRng::seed_from_u64(7);
        while !rec.is_complete() {
            rec.push(enc.encode(&mut rng)).unwrap();
        }
        assert_eq!(rec.recover().unwrap(), src);
    }

    #[test]
    fn validation_mirrors_decoder() {
        let mut rec = Recoder::new(1, 2, 4);
        let p = CodedPacket::new(9, vec![1, 0], vec![0u8; 4]);
        assert!(matches!(rec.push(p), Err(RlncError::GenerationMismatch { .. })));
    }

    #[test]
    fn snapshot_is_cached_until_innovation() {
        let src = data(3, 8);
        let enc = Encoder::new(0, src).unwrap();
        let mut rec = Recoder::new(0, 3, 8);
        let mut rng = StdRng::seed_from_u64(11);
        rec.push(enc.encode(&mut rng)).unwrap();
        let s1 = rec.snapshot();
        let s2 = rec.snapshot();
        assert!(Arc::ptr_eq(&s1, &s2), "unchanged basis re-shares the same snapshot");
        assert_eq!(s1.rank(), 1);
        assert_eq!(s1.epoch(), rec.epoch());
        // Feed until the rank grows, then the cache must be invalidated.
        while !rec.push(enc.encode(&mut rng)).unwrap() {}
        let s3 = rec.snapshot();
        assert!(!Arc::ptr_eq(&s1, &s3), "innovation invalidates the cached snapshot");
        assert!(s3.epoch() > s1.epoch());
        assert_eq!(s3.rank(), 2);
        // The old snapshot still works and still mixes only its own rows.
        let old = s1.recode(&mut rng).unwrap();
        assert_eq!(old.coefficients().len(), 3);
    }

    #[test]
    fn snapshot_recode_is_decodable() {
        let src = data(4, 16);
        let enc = Encoder::new(0, src.clone()).unwrap();
        let mut rec = Recoder::new(0, 4, 16);
        let mut rng = StdRng::seed_from_u64(21);
        while !rec.is_complete() {
            rec.push(enc.encode(&mut rng)).unwrap();
        }
        let snap = rec.snapshot();
        assert_eq!(snap.generation(), 0);
        assert!(!snap.is_empty());
        let mut dec = Decoder::new(0, 4, 16);
        let mut guard = 0;
        while !dec.is_complete() {
            dec.push(snap.recode(&mut rng).unwrap()).unwrap();
            guard += 1;
            assert!(guard < 400, "snapshot transfer did not converge");
        }
        assert_eq!(dec.recover().unwrap(), src);
    }

    #[test]
    fn empty_snapshot_recodes_none() {
        let mut rec = Recoder::new(0, 2, 4);
        let snap = rec.snapshot();
        assert!(snap.is_empty());
        let mut rng = StdRng::seed_from_u64(1);
        assert!(snap.recode(&mut rng).is_none());
    }
}
