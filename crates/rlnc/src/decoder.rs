//! The receiver: progressive Gaussian elimination and recovery.

use curtain_telemetry::{Event, SharedRecorder};

use crate::buffer::BufPool;
use crate::error::RlncError;
use crate::generation::GenerationId;
use crate::packet::CodedPacket;
use crate::rowspace::RowSpace;
use crate::stats::CodingStats;

/// Decoder for one generation.
///
/// Packets are reduced on arrival (*progressive* decoding), so the cost of
/// the final recovery is amortized across the transfer and the current
/// [`Decoder::rank`] always equals the dimension of the received span —
/// which, by the main theorem of network coding, converges to the node's
/// min-cut from the server.
///
/// # Example
///
/// ```
/// use curtain_rlnc::{Decoder, Encoder};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(2);
/// let data = vec![vec![0xAA; 4], vec![0xBB; 4]];
/// let enc = Encoder::new(0, data.clone()).unwrap();
/// let mut dec = Decoder::new(0, 2, 4);
/// while !dec.is_complete() {
///     dec.push(enc.encode(&mut rng)).unwrap();
/// }
/// assert_eq!(dec.recover().unwrap(), data);
/// ```
#[derive(Debug, Clone)]
pub struct Decoder {
    id: GenerationId,
    space: RowSpace,
    stats: CodingStats,
    /// Optional `(recorder, node label)` emitting per-packet
    /// innovative/redundant events; `None` costs one branch in `push`.
    telemetry: Option<(SharedRecorder, u64)>,
}

impl Decoder {
    /// Creates a decoder for generation `id` with `g` packets of
    /// `symbol_len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `g == 0`.
    #[must_use]
    pub fn new(id: GenerationId, g: usize, symbol_len: usize) -> Self {
        Decoder {
            id,
            space: RowSpace::new(g, symbol_len),
            stats: CodingStats::default(),
            telemetry: None,
        }
    }

    /// Like [`Decoder::new`], drawing row storage from a shared [`BufPool`]
    /// (one pool per peer keeps all generations allocation-free at steady
    /// state).
    ///
    /// # Panics
    ///
    /// Panics if `g == 0`.
    #[must_use]
    pub fn with_pool(id: GenerationId, g: usize, symbol_len: usize, pool: BufPool) -> Self {
        Decoder {
            id,
            space: RowSpace::with_pool(g, symbol_len, pool),
            stats: CodingStats::default(),
            telemetry: None,
        }
    }

    /// Attaches a telemetry recorder; [`Decoder::push`] then emits a
    /// `PacketInnovative` / `PacketRedundant` event per packet, labelled
    /// with `node` (the receiving host's id).
    pub fn set_telemetry(&mut self, recorder: SharedRecorder, node: u64) {
        self.telemetry = Some((recorder, node));
    }

    /// Generation id this decoder accepts.
    #[must_use]
    pub fn generation(&self) -> GenerationId {
        self.id
    }

    /// Generation size `g`.
    #[must_use]
    pub fn generation_size(&self) -> usize {
        self.space.generation_size()
    }

    /// Current rank (number of linearly independent packets received).
    #[must_use]
    pub fn rank(&self) -> usize {
        self.space.rank()
    }

    /// True iff the generation is fully decodable.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.space.is_complete()
    }

    /// Counters of innovative / redundant packets seen so far.
    #[must_use]
    pub fn stats(&self) -> &CodingStats {
        &self.stats
    }

    /// Offers a packet. Returns `true` iff it was innovative (rank grew).
    ///
    /// # Errors
    ///
    /// * [`RlncError::GenerationMismatch`] for a foreign generation.
    /// * [`RlncError::CoefficientLengthMismatch`] / [`RlncError::PayloadLengthMismatch`]
    ///   on malformed packets.
    pub fn push(&mut self, packet: CodedPacket) -> Result<bool, RlncError> {
        self.validate(&packet)?;
        // Zero-copy ingest: take the packet's buffers; a uniquely-owned
        // packet (the wire path) is eliminated in place.
        let timer = self.telemetry.as_ref().map(|_| std::time::Instant::now());
        let (_, coeffs, payload) = packet.into_parts();
        let innovative = self.space.insert(coeffs, payload);
        self.stats.record(innovative);
        if let Some((recorder, node)) = &self.telemetry {
            if let Some(t) = timer {
                recorder.histogram("decode_ns", t.elapsed().as_nanos() as f64);
            }
            recorder.record(&if innovative {
                Event::PacketInnovative {
                    node: *node,
                    generation: self.id,
                    rank: self.space.rank() as u32,
                }
            } else {
                Event::PacketRedundant { node: *node, generation: self.id }
            });
            if innovative && self.space.is_complete() {
                recorder.record(&Event::GenerationComplete {
                    node: *node,
                    generation: self.id,
                    innovative: self.stats.innovative(),
                    redundant: self.stats.redundant(),
                });
                recorder.counter("generations_decoded", 1);
            }
        }
        Ok(innovative)
    }

    /// Returns `true` iff pushing `packet` would be innovative, without
    /// consuming it (used by forwarding policies to avoid wasted sends).
    ///
    /// Rank growth depends only on the coefficient vector, so this probes
    /// by eliminating a `g`-byte scratch row against the basis — it no
    /// longer clones the whole row space.
    ///
    /// # Errors
    ///
    /// Same validation as [`Decoder::push`].
    pub fn would_be_innovative(&self, packet: &CodedPacket) -> Result<bool, RlncError> {
        self.validate(packet)?;
        Ok(self.space.would_accept(packet.coefficients()))
    }

    /// Recovers the source packets once complete; `None` before that.
    #[must_use]
    pub fn recover(&self) -> Option<Vec<Vec<u8>>> {
        self.space.recover()
    }

    fn validate(&self, packet: &CodedPacket) -> Result<(), RlncError> {
        if packet.generation() != self.id {
            return Err(RlncError::GenerationMismatch { expected: self.id, got: packet.generation() });
        }
        if packet.coefficients().len() != self.space.generation_size() {
            return Err(RlncError::CoefficientLengthMismatch {
                expected: self.space.generation_size(),
                got: packet.coefficients().len(),
            });
        }
        if packet.payload().len() != self.space.symbol_len() {
            return Err(RlncError::PayloadLengthMismatch {
                expected: self.space.symbol_len(),
                got: packet.payload().len(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Encoder;
    use bytes::Bytes;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data(g: usize, s: usize) -> Vec<Vec<u8>> {
        (0..g).map(|i| (0..s).map(|j| (i * 31 + j) as u8).collect()).collect()
    }

    #[test]
    fn decodes_after_exactly_g_innovative_packets() {
        let src = data(5, 12);
        let enc = Encoder::new(0, src.clone()).unwrap();
        let mut dec = Decoder::new(0, 5, 12);
        let mut rng = StdRng::seed_from_u64(4);
        let mut innovative = 0;
        while !dec.is_complete() {
            if dec.push(enc.encode(&mut rng)).unwrap() {
                innovative += 1;
            }
        }
        assert_eq!(innovative, 5);
        assert_eq!(dec.recover().unwrap(), src);
    }

    #[test]
    fn rejects_foreign_generation() {
        let mut dec = Decoder::new(1, 2, 4);
        let p = CodedPacket::new(2, vec![1, 0], Bytes::from(vec![0u8; 4]));
        assert_eq!(
            dec.push(p).unwrap_err(),
            RlncError::GenerationMismatch { expected: 1, got: 2 }
        );
    }

    #[test]
    fn rejects_bad_coefficient_length() {
        let mut dec = Decoder::new(0, 3, 4);
        let p = CodedPacket::new(0, vec![1, 0], Bytes::from(vec![0u8; 4]));
        assert_eq!(
            dec.push(p).unwrap_err(),
            RlncError::CoefficientLengthMismatch { expected: 3, got: 2 }
        );
    }

    #[test]
    fn rejects_bad_payload_length() {
        let mut dec = Decoder::new(0, 2, 4);
        let p = CodedPacket::new(0, vec![1, 0], Bytes::from(vec![0u8; 3]));
        assert_eq!(
            dec.push(p).unwrap_err(),
            RlncError::PayloadLengthMismatch { expected: 4, got: 3 }
        );
    }

    #[test]
    fn vacuous_packet_not_innovative() {
        let mut dec = Decoder::new(0, 2, 2);
        let p = CodedPacket::new(0, vec![0, 0], Bytes::from(vec![0u8; 2]));
        assert!(!dec.push(p).unwrap());
        assert_eq!(dec.stats().redundant(), 1);
    }

    #[test]
    fn would_be_innovative_does_not_mutate() {
        let src = data(3, 4);
        let enc = Encoder::new(0, src).unwrap();
        let dec0 = Decoder::new(0, 3, 4);
        let mut rng = StdRng::seed_from_u64(8);
        let p = enc.encode(&mut rng);
        assert!(dec0.would_be_innovative(&p).unwrap());
        assert_eq!(dec0.rank(), 0, "probe must not change state");
    }

    #[test]
    fn telemetry_labels_innovative_and_redundant_packets() {
        use curtain_telemetry::{Event, MemorySink, SharedRecorder};

        let src = data(2, 4);
        let enc = Encoder::new(0, src).unwrap();
        let mut dec = Decoder::new(0, 2, 4);
        let sink = MemorySink::new();
        dec.set_telemetry(SharedRecorder::new(sink.clone()), 42);
        let mut rng = StdRng::seed_from_u64(13);
        while !dec.is_complete() {
            dec.push(enc.encode(&mut rng)).unwrap();
        }
        // A full decode plus one guaranteed-redundant extra.
        dec.push(enc.encode(&mut rng)).unwrap();
        let events = sink.events();
        let innovative = events
            .iter()
            .filter(|(_, e)| matches!(e, Event::PacketInnovative { node: 42, .. }))
            .count();
        let redundant = events
            .iter()
            .filter(|(_, e)| matches!(e, Event::PacketRedundant { node: 42, .. }))
            .count();
        assert_eq!(innovative, 2);
        assert_eq!(innovative as u64, dec.stats().innovative());
        assert_eq!(redundant as u64, dec.stats().redundant());
        assert!(redundant >= 1);
        // The final innovative event carries the full rank.
        let last_rank = events.iter().rev().find_map(|(_, e)| match e {
            Event::PacketInnovative { rank, .. } => Some(*rank),
            _ => None,
        });
        assert_eq!(last_rank, Some(2));
        // Exactly one completion event, carrying the packet economics.
        let completions: Vec<_> = events
            .iter()
            .filter_map(|(_, e)| match e {
                Event::GenerationComplete { node, generation, innovative, redundant } => {
                    Some((*node, *generation, *innovative, *redundant))
                }
                _ => None,
            })
            .collect();
        assert_eq!(completions.len(), 1);
        let (node, generation, innov, _red) = completions[0];
        assert_eq!((node, generation, innov), (42, 0, 2));
        // ...and the counter reaches the Prometheus exposition path.
        let snapshot = sink.metrics().snapshot();
        assert_eq!(snapshot.counters.get("generations_decoded"), Some(&1));
        let page = curtain_telemetry::expose::render_prometheus(&snapshot);
        assert!(page.contains("generations_decoded 1"), "{page}");
    }

    #[test]
    fn systematic_then_coded_mix_decodes() {
        let src = data(4, 6);
        let enc = Encoder::new(0, src.clone()).unwrap();
        let mut dec = Decoder::new(0, 4, 6);
        let mut rng = StdRng::seed_from_u64(3);
        // Two systematic, then coded.
        dec.push(enc.systematic(0)).unwrap();
        dec.push(enc.systematic(2)).unwrap();
        while !dec.is_complete() {
            dec.push(enc.encode(&mut rng)).unwrap();
        }
        assert_eq!(dec.recover().unwrap(), src);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn random_transfer_always_recovers(seed: u64, g in 1usize..10, s in 1usize..32) {
            let src = data(g, s);
            let enc = Encoder::new(7, src.clone()).unwrap();
            let mut dec = Decoder::new(7, g, s);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut sent = 0;
            while !dec.is_complete() {
                dec.push(enc.encode(&mut rng)).unwrap();
                sent += 1;
                prop_assert!(sent < 100 * g, "transfer did not converge");
            }
            prop_assert_eq!(dec.recover().unwrap(), src);
        }
    }
}
