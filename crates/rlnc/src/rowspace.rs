//! Progressive Gaussian elimination over GF(2⁸) byte rows.
//!
//! `RowSpace` is the shared engine behind [`crate::Decoder`] (which needs
//! full recovery) and [`crate::Recoder`] (which only needs a basis of the
//! received span to mix from). Rows are kept in *reduced row-echelon form*
//! at all times: each accepted row has a pivot column, a unit pivot entry,
//! and zeros in every other row's pivot column, so completion means the
//! payload rows literally are the source packets.
//!
//! Since the data-plane refactor, rows live in pool-recycled
//! [`PacketBuf`]s: ingest steals the packet's buffers instead of copying,
//! elimination mutates rows in place (copy-on-write only when an outstanding
//! [`snapshot`](RowSpace::snapshot_rows) still references the old bytes),
//! and every accepted row bumps an **epoch** counter that lets lock-free
//! emit paths detect staleness without holding any lock.

use curtain_gf::vec_ops;
use curtain_gf::{Field, Gf256};

use crate::buffer::{BufPool, PacketBuf};

/// One reduced row: coefficient vector + the identically-transformed payload.
#[derive(Debug, Clone)]
pub(crate) struct Row {
    pub coeffs: PacketBuf,
    pub payload: PacketBuf,
    pub pivot: usize,
}

/// An incrementally maintained row space (rref basis) of coded packets.
#[derive(Debug, Clone)]
pub(crate) struct RowSpace {
    g: usize,
    symbol_len: usize,
    /// Rows sorted by pivot column, in rref.
    rows: Vec<Row>,
    /// Backing allocator for rows and scratch buffers.
    pool: BufPool,
    /// Incremented on every rank growth; snapshots are valid while their
    /// epoch matches.
    epoch: u64,
}

impl RowSpace {
    pub(crate) fn new(g: usize, symbol_len: usize) -> Self {
        Self::with_pool(g, symbol_len, BufPool::default())
    }

    pub(crate) fn with_pool(g: usize, symbol_len: usize, pool: BufPool) -> Self {
        assert!(g > 0, "generation size must be positive");
        RowSpace { g, symbol_len, rows: Vec::with_capacity(g), pool, epoch: 0 }
    }

    pub(crate) fn generation_size(&self) -> usize {
        self.g
    }

    pub(crate) fn symbol_len(&self) -> usize {
        self.symbol_len
    }

    pub(crate) fn rank(&self) -> usize {
        self.rows.len()
    }

    pub(crate) fn is_complete(&self) -> bool {
        self.rows.len() == self.g
    }

    /// Current epoch: changes exactly when the row set changes.
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The buffer pool rows are drawn from (shared, cheap to clone).
    pub(crate) fn pool(&self) -> &BufPool {
        &self.pool
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Reduces `(coeffs, payload)` against the basis and inserts it if
    /// innovative. Returns `true` iff the rank grew.
    ///
    /// Accepts anything convertible to [`PacketBuf`]; a uniquely-owned
    /// buffer (the common ingest case) is mutated in place with no copy.
    ///
    /// # Panics
    ///
    /// Panics if the lengths disagree with the space's configuration
    /// (callers validate first and return typed errors).
    pub(crate) fn insert(
        &mut self,
        coeffs: impl Into<PacketBuf>,
        payload: impl Into<PacketBuf>,
    ) -> bool {
        let mut coeffs = coeffs.into().into_mut(&self.pool);
        let mut payload = payload.into().into_mut(&self.pool);
        assert_eq!(coeffs.len(), self.g, "coefficient length");
        assert_eq!(payload.len(), self.symbol_len, "payload length");
        // Forward-eliminate against existing pivots.
        for row in &self.rows {
            let c = coeffs[row.pivot];
            if c != 0 {
                vec_ops::axpy(&mut coeffs, c, &row.coeffs);
                vec_ops::axpy(&mut payload, c, &row.payload);
            }
        }
        // Find the new pivot.
        let Some(pivot) = coeffs.iter().position(|&c| c != 0) else {
            return false; // linearly dependent
        };
        // Normalize to a unit pivot.
        let inv = Gf256::new(coeffs[pivot]).inv().value();
        vec_ops::scale_assign(&mut coeffs, inv);
        vec_ops::scale_assign(&mut payload, inv);
        // Back-eliminate the new pivot column from existing rows. Rows are
        // shared with any outstanding snapshots; `make_mut` mutates in
        // place when unshared and copies out otherwise, so snapshots keep
        // reading a consistent basis.
        for row in &mut self.rows {
            let c = row.coeffs[pivot];
            if c != 0 {
                vec_ops::axpy(row.coeffs.make_mut(&self.pool), c, &coeffs);
                vec_ops::axpy(row.payload.make_mut(&self.pool), c, &payload);
            }
        }
        // Insert keeping rows sorted by pivot.
        let at = self.rows.partition_point(|r| r.pivot < pivot);
        self.rows.insert(at, Row { coeffs: coeffs.freeze(), payload: payload.freeze(), pivot });
        self.epoch += 1;
        true
    }

    /// Returns `true` iff inserting a row with these coefficients would
    /// grow the rank — *without* touching the payload or cloning the space.
    ///
    /// Rank growth depends only on the coefficient vector: the probe
    /// forward-eliminates a `g`-byte scratch copy against the pivots and
    /// checks for a surviving non-zero entry. Cost is O(rank · g) bytes of
    /// axpy versus the old full-space clone's O(rank · (g + s)) copy plus
    /// the same elimination.
    pub(crate) fn would_accept(&self, coeffs: &[u8]) -> bool {
        assert_eq!(coeffs.len(), self.g, "coefficient length");
        let mut scratch = self.pool.alloc_copy(coeffs);
        for row in &self.rows {
            let c = scratch[row.pivot];
            if c != 0 {
                vec_ops::axpy(&mut scratch, c, &row.coeffs);
            }
        }
        scratch.iter().any(|&c| c != 0)
    }

    /// If complete, returns the decoded source packets in order.
    pub(crate) fn recover(&self) -> Option<Vec<Vec<u8>>> {
        if !self.is_complete() {
            return None;
        }
        // In rref with full rank, row i has pivot i and unit coefficient
        // vector e_i, so its payload is source packet i.
        debug_assert!(self.rows.iter().enumerate().all(|(i, r)| r.pivot == i));
        Some(self.rows.iter().map(|r| r.payload.to_vec()).collect())
    }

    /// Shares the current basis as refcounted buffers: O(rank) refcount
    /// bumps, no byte copying. Paired with [`RowSpace::epoch`] this is the
    /// building block of the lock-free recode path — a reader combines rows
    /// from the snapshot with no lock held, and refreshes when the epoch
    /// moves on.
    pub(crate) fn snapshot_rows(&self) -> Vec<(PacketBuf, PacketBuf)> {
        self.rows.iter().map(|r| (r.coeffs.clone(), r.payload.clone())).collect()
    }

    /// Emits a random linear combination of the basis rows:
    /// the recoding operation. Returns `None` if the space is empty.
    pub(crate) fn random_combination<R: rand::Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Option<(PacketBuf, PacketBuf)> {
        random_combination_of(
            self.rows.iter().map(|r| (&r.coeffs[..], &r.payload[..])),
            self.g,
            self.symbol_len,
            &self.pool,
            rng,
        )
    }
}

/// Mixes a random GF(2⁸) combination of `(coeffs, payload)` rows into
/// pool-allocated output buffers. Shared by [`RowSpace::random_combination`]
/// and the lock-free [`crate::RecodeSnapshot`] emit path so both draw
/// coefficients identically.
pub(crate) fn random_combination_of<'a, R: rand::Rng + ?Sized>(
    rows: impl Iterator<Item = (&'a [u8], &'a [u8])> + Clone,
    g: usize,
    symbol_len: usize,
    pool: &BufPool,
    rng: &mut R,
) -> Option<(PacketBuf, PacketBuf)> {
    let first = rows.clone().next()?;
    let mut coeffs = pool.alloc_zeroed(g);
    let mut payload = pool.alloc_zeroed(symbol_len);
    let mut any = false;
    for (rc, rp) in rows {
        let c = Gf256::random(rng).value();
        if c != 0 {
            any = true;
            vec_ops::axpy(&mut coeffs, c, rc);
            vec_ops::axpy(&mut payload, c, rp);
        }
    }
    if !any {
        // All-zero draw (probability 256^-rank); force a copy of an
        // arbitrary basis row rather than emit a vacuous packet.
        coeffs.as_mut_slice().copy_from_slice(first.0);
        payload.as_mut_slice().copy_from_slice(first.1);
    }
    Some((coeffs.freeze(), payload.freeze()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt as _, SeedableRng};

    fn unit(g: usize, i: usize) -> Vec<u8> {
        let mut v = vec![0u8; g];
        v[i] = 1;
        v
    }

    #[test]
    fn inserts_unit_vectors_and_recovers() {
        let mut rs = RowSpace::new(3, 4);
        let payloads = [vec![1u8; 4], vec![2u8; 4], vec![3u8; 4]];
        for i in [2usize, 0, 1] {
            assert!(rs.insert(unit(3, i), payloads[i].clone()));
        }
        assert_eq!(rs.recover().unwrap(), payloads.to_vec());
    }

    #[test]
    fn duplicate_row_is_not_innovative() {
        let mut rs = RowSpace::new(2, 2);
        assert!(rs.insert(vec![1, 1], vec![5, 5]));
        assert!(!rs.insert(vec![1, 1], vec![5, 5]));
        assert_eq!(rs.rank(), 1);
    }

    #[test]
    fn scaled_row_is_not_innovative() {
        let mut rs = RowSpace::new(2, 2);
        assert!(rs.insert(vec![3, 7], vec![5, 5]));
        // 2 * (3,7) in GF(2^8) is (6,14); payload scaled the same way.
        let two = Gf256::new(2);
        let coeffs = vec![
            two.mul(Gf256::new(3)).value(),
            two.mul(Gf256::new(7)).value(),
        ];
        let payload = vec![two.mul(Gf256::new(5)).value(); 2];
        assert!(!rs.insert(coeffs, payload));
    }

    #[test]
    fn zero_vector_rejected() {
        let mut rs = RowSpace::new(3, 1);
        assert!(!rs.insert(vec![0, 0, 0], vec![9]));
        assert_eq!(rs.rank(), 0);
    }

    #[test]
    fn epoch_tracks_rank_growth_only() {
        let mut rs = RowSpace::new(2, 2);
        assert_eq!(rs.epoch(), 0);
        rs.insert(vec![1, 0], vec![1, 1]);
        assert_eq!(rs.epoch(), 1);
        rs.insert(vec![1, 0], vec![1, 1]); // redundant
        assert_eq!(rs.epoch(), 1, "redundant packets must not move the epoch");
        rs.insert(vec![0, 1], vec![2, 2]);
        assert_eq!(rs.epoch(), 2);
    }

    #[test]
    fn would_accept_agrees_with_insert() {
        let mut rng = StdRng::seed_from_u64(77);
        let g = 5;
        let mut rs = RowSpace::new(g, 3);
        for _ in 0..200 {
            let coeffs: Vec<u8> = (0..g).map(|_| rng.random()).collect();
            let payload: Vec<u8> = (0..3).map(|_| rng.random()).collect();
            let predicted = rs.would_accept(&coeffs);
            let actual = rs.insert(coeffs, payload);
            assert_eq!(predicted, actual, "probe must agree with insertion");
            if rs.is_complete() {
                break;
            }
        }
        assert!(rs.is_complete());
        // Against a full space, nothing is innovative.
        assert!(!rs.would_accept(&unit(g, 0)));
    }

    #[test]
    fn snapshot_is_immutable_under_later_inserts() {
        let mut rs = RowSpace::new(3, 2);
        rs.insert(vec![1, 2, 3], vec![7, 7]);
        let snap = rs.snapshot_rows();
        let frozen: Vec<(Vec<u8>, Vec<u8>)> =
            snap.iter().map(|(c, p)| (c.to_vec(), p.to_vec())).collect();
        let epoch = rs.epoch();
        // These inserts back-eliminate into the existing row.
        rs.insert(vec![0, 1, 0], vec![1, 1]);
        rs.insert(vec![0, 0, 1], vec![2, 2]);
        assert_ne!(rs.epoch(), epoch, "epoch must advance");
        for ((c, p), (fc, fp)) in snap.iter().zip(&frozen) {
            assert_eq!(&c.to_vec(), fc, "snapshot coefficients changed under CoW");
            assert_eq!(&p.to_vec(), fp, "snapshot payload changed under CoW");
        }
    }

    #[test]
    fn pool_recycles_row_traffic() {
        let pool = BufPool::default();
        let mut rs = RowSpace::with_pool(2, 8, pool.clone());
        // Pool-backed redundant inserts retire their buffers into the pool.
        for _ in 0..3 {
            rs.insert(
                pool.alloc_copy(&[1, 1]).freeze(),
                pool.alloc_copy(&[5u8; 8]).freeze(),
            );
        }
        assert!(pool.stats().recycled > 0, "dependent rows must recycle");
        // Probe scratch buffers recycle too.
        let before = pool.stats().recycled;
        assert!(rs.would_accept(&[0, 1]));
        assert!(pool.stats().recycled > before, "probe scratch must recycle");
    }

    #[test]
    fn random_combination_spans_inserted_space() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = 4;
        let src: Vec<Vec<u8>> = (0..g).map(|i| vec![i as u8 + 1; 8]).collect();
        let mut rs = RowSpace::new(g, 8);
        for (i, p) in src.iter().enumerate() {
            rs.insert(unit(g, i), p.clone());
        }
        // Any recoded packet must decode consistently: feed a fresh space.
        let mut sink = RowSpace::new(g, 8);
        let mut guard = 0;
        while !sink.is_complete() {
            let (c, p) = rs.random_combination(&mut rng).unwrap();
            sink.insert(c, p);
            guard += 1;
            assert!(guard < 100, "failed to complete from recoded packets");
        }
        assert_eq!(sink.recover().unwrap(), src);
    }

    #[test]
    fn random_combination_of_empty_space_is_none() {
        let rs = RowSpace::new(2, 2);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(rs.random_combination(&mut rng).is_none());
    }

    #[test]
    fn partial_rank_recover_is_none() {
        let mut rs = RowSpace::new(3, 2);
        rs.insert(unit(3, 0), vec![1, 1]);
        assert!(rs.recover().is_none());
    }

    #[test]
    fn handles_random_dense_rows() {
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..20 {
            let g = 6;
            let mut rs = RowSpace::new(g, 4);
            let mut inserted = 0;
            let mut rounds = 0;
            while !rs.is_complete() && rounds < 200 {
                let coeffs: Vec<u8> = (0..g).map(|_| rng.random()).collect();
                let payload: Vec<u8> = (0..4).map(|_| rng.random()).collect();
                if rs.insert(coeffs, payload) {
                    inserted += 1;
                }
                rounds += 1;
            }
            assert!(rs.is_complete(), "trial {trial} never completed");
            assert_eq!(inserted, g);
            // rref invariant: pivots are exactly 0..g and unit columns.
            for (i, row) in rs.rows().iter().enumerate() {
                assert_eq!(row.pivot, i);
                assert_eq!(row.coeffs[i], 1);
                for other in rs.rows() {
                    if other.pivot != i {
                        assert_eq!(other.coeffs[i], 0, "column {i} not eliminated");
                    }
                }
            }
        }
    }
}
