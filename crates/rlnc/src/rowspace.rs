//! Progressive Gaussian elimination over GF(2⁸) byte rows.
//!
//! `RowSpace` is the shared engine behind [`crate::Decoder`] (which needs
//! full recovery) and [`crate::Recoder`] (which only needs a basis of the
//! received span to mix from). Rows are kept in *reduced row-echelon form*
//! at all times: each accepted row has a pivot column, a unit pivot entry,
//! and zeros in every other row's pivot column, so completion means the
//! payload rows literally are the source packets.

use curtain_gf::vec_ops;
use curtain_gf::{Field, Gf256};

/// One reduced row: coefficient vector + the identically-transformed payload.
#[derive(Debug, Clone)]
pub(crate) struct Row {
    pub coeffs: Vec<u8>,
    pub payload: Vec<u8>,
    pub pivot: usize,
}

/// An incrementally maintained row space (rref basis) of coded packets.
#[derive(Debug, Clone)]
pub(crate) struct RowSpace {
    g: usize,
    symbol_len: usize,
    /// Rows sorted by pivot column, in rref.
    rows: Vec<Row>,
}

impl RowSpace {
    pub(crate) fn new(g: usize, symbol_len: usize) -> Self {
        assert!(g > 0, "generation size must be positive");
        RowSpace { g, symbol_len, rows: Vec::with_capacity(g) }
    }

    pub(crate) fn generation_size(&self) -> usize {
        self.g
    }

    pub(crate) fn symbol_len(&self) -> usize {
        self.symbol_len
    }

    pub(crate) fn rank(&self) -> usize {
        self.rows.len()
    }

    pub(crate) fn is_complete(&self) -> bool {
        self.rows.len() == self.g
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Reduces `(coeffs, payload)` against the basis and inserts it if
    /// innovative. Returns `true` iff the rank grew.
    ///
    /// # Panics
    ///
    /// Panics if the lengths disagree with the space's configuration
    /// (callers validate first and return typed errors).
    pub(crate) fn insert(&mut self, mut coeffs: Vec<u8>, mut payload: Vec<u8>) -> bool {
        assert_eq!(coeffs.len(), self.g, "coefficient length");
        assert_eq!(payload.len(), self.symbol_len, "payload length");
        // Forward-eliminate against existing pivots.
        for row in &self.rows {
            let c = coeffs[row.pivot];
            if c != 0 {
                vec_ops::axpy(&mut coeffs, c, &row.coeffs);
                vec_ops::axpy(&mut payload, c, &row.payload);
            }
        }
        // Find the new pivot.
        let Some(pivot) = coeffs.iter().position(|&c| c != 0) else {
            return false; // linearly dependent
        };
        // Normalize to a unit pivot.
        let inv = Gf256::new(coeffs[pivot]).inv().value();
        vec_ops::scale_assign(&mut coeffs, inv);
        vec_ops::scale_assign(&mut payload, inv);
        // Back-eliminate the new pivot column from existing rows.
        for row in &mut self.rows {
            let c = row.coeffs[pivot];
            if c != 0 {
                vec_ops::axpy(&mut row.coeffs, c, &coeffs);
                vec_ops::axpy(&mut row.payload, c, &payload);
            }
        }
        // Insert keeping rows sorted by pivot.
        let at = self.rows.partition_point(|r| r.pivot < pivot);
        self.rows.insert(at, Row { coeffs, payload, pivot });
        true
    }

    /// If complete, returns the decoded source packets in order.
    pub(crate) fn recover(&self) -> Option<Vec<Vec<u8>>> {
        if !self.is_complete() {
            return None;
        }
        // In rref with full rank, row i has pivot i and unit coefficient
        // vector e_i, so its payload is source packet i.
        debug_assert!(self.rows.iter().enumerate().all(|(i, r)| r.pivot == i));
        Some(self.rows.iter().map(|r| r.payload.clone()).collect())
    }

    /// Emits a random linear combination of the basis rows:
    /// the recoding operation. Returns `None` if the space is empty.
    pub(crate) fn random_combination<R: rand::Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Option<(Vec<u8>, Vec<u8>)> {
        if self.rows.is_empty() {
            return None;
        }
        let mut coeffs = vec![0u8; self.g];
        let mut payload = vec![0u8; self.symbol_len];
        let mut any = false;
        for row in &self.rows {
            let c = Gf256::random(rng).value();
            if c != 0 {
                any = true;
                vec_ops::axpy(&mut coeffs, c, &row.coeffs);
                vec_ops::axpy(&mut payload, c, &row.payload);
            }
        }
        if !any {
            // All-zero draw (probability 256^-rank); force a copy of an
            // arbitrary basis row rather than emit a vacuous packet.
            let row = &self.rows[0];
            coeffs.copy_from_slice(&row.coeffs);
            payload.copy_from_slice(&row.payload);
        }
        Some((coeffs, payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt as _, SeedableRng};

    fn unit(g: usize, i: usize) -> Vec<u8> {
        let mut v = vec![0u8; g];
        v[i] = 1;
        v
    }

    #[test]
    fn inserts_unit_vectors_and_recovers() {
        let mut rs = RowSpace::new(3, 4);
        let payloads = [vec![1u8; 4], vec![2u8; 4], vec![3u8; 4]];
        for i in [2usize, 0, 1] {
            assert!(rs.insert(unit(3, i), payloads[i].clone()));
        }
        assert_eq!(rs.recover().unwrap(), payloads.to_vec());
    }

    #[test]
    fn duplicate_row_is_not_innovative() {
        let mut rs = RowSpace::new(2, 2);
        assert!(rs.insert(vec![1, 1], vec![5, 5]));
        assert!(!rs.insert(vec![1, 1], vec![5, 5]));
        assert_eq!(rs.rank(), 1);
    }

    #[test]
    fn scaled_row_is_not_innovative() {
        let mut rs = RowSpace::new(2, 2);
        assert!(rs.insert(vec![3, 7], vec![5, 5]));
        // 2 * (3,7) in GF(2^8) is (6,14); payload scaled the same way.
        let two = Gf256::new(2);
        let coeffs = vec![
            two.mul(Gf256::new(3)).value(),
            two.mul(Gf256::new(7)).value(),
        ];
        let payload = vec![two.mul(Gf256::new(5)).value(); 2];
        assert!(!rs.insert(coeffs, payload));
    }

    #[test]
    fn zero_vector_rejected() {
        let mut rs = RowSpace::new(3, 1);
        assert!(!rs.insert(vec![0, 0, 0], vec![9]));
        assert_eq!(rs.rank(), 0);
    }

    #[test]
    fn random_combination_spans_inserted_space() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = 4;
        let src: Vec<Vec<u8>> = (0..g).map(|i| vec![i as u8 + 1; 8]).collect();
        let mut rs = RowSpace::new(g, 8);
        for (i, p) in src.iter().enumerate() {
            rs.insert(unit(g, i), p.clone());
        }
        // Any recoded packet must decode consistently: feed a fresh space.
        let mut sink = RowSpace::new(g, 8);
        let mut guard = 0;
        while !sink.is_complete() {
            let (c, p) = rs.random_combination(&mut rng).unwrap();
            sink.insert(c, p);
            guard += 1;
            assert!(guard < 100, "failed to complete from recoded packets");
        }
        assert_eq!(sink.recover().unwrap(), src);
    }

    #[test]
    fn random_combination_of_empty_space_is_none() {
        let rs = RowSpace::new(2, 2);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(rs.random_combination(&mut rng).is_none());
    }

    #[test]
    fn partial_rank_recover_is_none() {
        let mut rs = RowSpace::new(3, 2);
        rs.insert(unit(3, 0), vec![1, 1]);
        assert!(rs.recover().is_none());
    }

    #[test]
    fn handles_random_dense_rows() {
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..20 {
            let g = 6;
            let mut rs = RowSpace::new(g, 4);
            let mut inserted = 0;
            let mut rounds = 0;
            while !rs.is_complete() && rounds < 200 {
                let coeffs: Vec<u8> = (0..g).map(|_| rng.random()).collect();
                let payload: Vec<u8> = (0..4).map(|_| rng.random()).collect();
                if rs.insert(coeffs, payload) {
                    inserted += 1;
                }
                rounds += 1;
            }
            assert!(rs.is_complete(), "trial {trial} never completed");
            assert_eq!(inserted, g);
            // rref invariant: pivots are exactly 0..g and unit columns.
            for (i, row) in rs.rows().iter().enumerate() {
                assert_eq!(row.pivot, i);
                assert_eq!(row.coeffs[i], 1);
                for other in rs.rows() {
                    if other.pivot != i {
                        assert_eq!(other.coeffs[i], 0, "column {i} not eliminated");
                    }
                }
            }
        }
    }
}
