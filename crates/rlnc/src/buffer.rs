//! Pooled, reference-counted, alignment-aware symbol buffers.
//!
//! The data plane used to move every coefficient vector and payload through
//! fresh `Vec<u8>` allocations — one `to_vec()` per ingest, one `Vec` per
//! emitted packet, one full clone per innovation probe. This module replaces
//! that plumbing with two types:
//!
//! * [`PacketBuf`] — an immutable, cheaply-cloneable (`Arc`) view of a byte
//!   buffer. Packets, row-space rows, and recode snapshots all share these
//!   without copying. Copy-on-write mutation ([`PacketBuf::make_mut`]) and
//!   steal-if-unique conversion ([`PacketBuf::into_mut`]) mean the common
//!   case (no outstanding snapshot) mutates in place with zero copies.
//! * [`BufPool`] — a free-list of retired backing allocations. Dropping the
//!   last reference to a pooled buffer returns its storage to the pool;
//!   the next allocation of a compatible size reuses it (zeroed) instead of
//!   hitting the allocator. Packet ingest/emit at steady state therefore
//!   allocates nothing.
//!
//! Buffers are *alignment-aware*: the payload view starts at a 64-byte
//! boundary within the backing allocation, so the SIMD kernels in
//! `curtain_gf::kernels` see cache-line-aligned rows (the kernels tolerate
//! any alignment via unaligned loads; aligned rows are simply faster).
//!
//! Everything here is safe Rust: alignment is achieved by over-allocating
//! and offsetting, sharing by `Arc`, and recycling by a `Drop` impl with a
//! `Weak` back-reference to the pool (so buffers outliving their pool just
//! deallocate normally).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// Rows are offset to start on a 64-byte boundary inside their backing
/// allocation: one cache line, and ≥ the widest SIMD vector we dispatch.
const ALIGN: usize = 64;

/// Upper bound on idle backing buffers a pool retains; beyond this, retired
/// storage is simply dropped. Bounds worst-case memory at
/// `max_idle × largest-buffer` while keeping steady-state traffic
/// allocation-free.
const DEFAULT_MAX_IDLE: usize = 256;

/// Counters describing pool effectiveness (for tests and bench output).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Allocations served from the free list.
    pub hits: u64,
    /// Allocations that had to go to the system allocator.
    pub misses: u64,
    /// Buffers returned to the free list on drop.
    pub recycled: u64,
    /// Buffers dropped because the free list was full.
    pub discarded: u64,
}

#[derive(Debug, Default)]
struct PoolShared {
    free: Mutex<Vec<Vec<u8>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    recycled: AtomicU64,
    discarded: AtomicU64,
    max_idle: usize,
}

impl PoolShared {
    fn recycle(&self, storage: Vec<u8>) {
        let mut free = self.free.lock().expect("pool mutex poisoned");
        if free.len() < self.max_idle {
            free.push(storage);
            self.recycled.fetch_add(1, Ordering::Relaxed);
        } else {
            self.discarded.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A recycling allocator for [`PacketBuf`] backing storage.
///
/// Cloning a `BufPool` is cheap and shares the same free list; threads of a
/// peer all hand out of one pool.
#[derive(Debug, Clone)]
pub struct BufPool {
    shared: Arc<PoolShared>,
}

impl Default for BufPool {
    fn default() -> Self {
        Self::new(DEFAULT_MAX_IDLE)
    }
}

impl BufPool {
    /// Creates a pool retaining at most `max_idle` idle backing buffers.
    #[must_use]
    pub fn new(max_idle: usize) -> Self {
        BufPool { shared: Arc::new(PoolShared { max_idle, ..PoolShared::default() }) }
    }

    /// Allocates a zero-filled buffer of `len` bytes, reusing retired
    /// storage when a large-enough allocation is idle in the pool.
    #[must_use]
    pub fn alloc_zeroed(&self, len: usize) -> PacketBufMut {
        let need = len + ALIGN - 1;
        let reused = {
            let mut free = self.shared.free.lock().expect("pool mutex poisoned");
            let at = free.iter().position(|s| s.len() >= need);
            at.map(|i| free.swap_remove(i))
        };
        let storage = match reused {
            Some(mut s) => {
                self.shared.hits.fetch_add(1, Ordering::Relaxed);
                // Zeroing semantics: a recycled buffer must be
                // indistinguishable from a fresh allocation.
                s.fill(0);
                s
            }
            None => {
                self.shared.misses.fetch_add(1, Ordering::Relaxed);
                vec![0u8; need.max(1)]
            }
        };
        let offset = aligned_offset(&storage);
        debug_assert!(offset + len <= storage.len());
        PacketBufMut {
            buf: PacketBuf {
                inner: Arc::new(Inner {
                    storage,
                    offset,
                    len,
                    pool: Arc::downgrade(&self.shared),
                }),
            },
        }
    }

    /// Allocates a buffer initialized with a copy of `data`.
    #[must_use]
    pub fn alloc_copy(&self, data: &[u8]) -> PacketBufMut {
        let mut buf = self.alloc_zeroed(data.len());
        buf.as_mut_slice().copy_from_slice(data);
        buf
    }

    /// Number of idle backing buffers currently held.
    #[must_use]
    pub fn idle(&self) -> usize {
        self.shared.free.lock().expect("pool mutex poisoned").len()
    }

    /// Snapshot of the pool's hit/miss/recycle counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.shared.hits.load(Ordering::Relaxed),
            misses: self.shared.misses.load(Ordering::Relaxed),
            recycled: self.shared.recycled.load(Ordering::Relaxed),
            discarded: self.shared.discarded.load(Ordering::Relaxed),
        }
    }
}

/// Byte offset at which a 64-byte-aligned view starts inside `storage`.
///
/// `Vec` never moves its allocation unless it grows, and pooled storage is
/// never grown, so the offset stays valid for the storage's lifetime.
fn aligned_offset(storage: &[u8]) -> usize {
    let addr = storage.as_ptr() as usize;
    addr.wrapping_neg() % ALIGN
}

#[derive(Debug)]
struct Inner {
    storage: Vec<u8>,
    offset: usize,
    len: usize,
    /// Back-reference to the owning pool; `Weak` so a buffer outliving its
    /// pool simply deallocates.
    pool: Weak<PoolShared>,
}

impl Inner {
    fn slice(&self) -> &[u8] {
        &self.storage[self.offset..self.offset + self.len]
    }

    fn slice_mut(&mut self) -> &mut [u8] {
        let (o, l) = (self.offset, self.len);
        &mut self.storage[o..o + l]
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.upgrade() {
            pool.recycle(std::mem::take(&mut self.storage));
        }
    }
}

/// An immutable, reference-counted byte buffer, optionally pool-backed.
///
/// Cloning bumps a refcount; the bytes are shared. Use
/// [`PacketBuf::into_mut`] / [`PacketBuf::make_mut`] for copy-on-write
/// mutation. Dereferences to `[u8]`.
#[derive(Clone)]
pub struct PacketBuf {
    inner: Arc<Inner>,
}

impl PacketBuf {
    /// An empty buffer (no allocation beyond the `Arc`).
    #[must_use]
    pub fn empty() -> Self {
        PacketBuf {
            inner: Arc::new(Inner { storage: Vec::new(), offset: 0, len: 0, pool: Weak::new() }),
        }
    }

    /// Wraps an owned `Vec` without copying (unpooled, possibly unaligned).
    #[must_use]
    pub fn from_vec(v: Vec<u8>) -> Self {
        let len = v.len();
        PacketBuf { inner: Arc::new(Inner { storage: v, offset: 0, len, pool: Weak::new() }) }
    }

    /// Copies a slice into a fresh unpooled buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from_vec(data.to_vec())
    }

    /// The bytes.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        self.inner.slice()
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len
    }

    /// True iff the view is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.len == 0
    }

    /// Number of live references to the backing allocation (tests use this
    /// to prove no aliasing of buffers handed out as mutable).
    #[must_use]
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }

    /// Converts to a mutable buffer, stealing the allocation if this is the
    /// only reference (zero-copy) and copying via `pool` otherwise.
    #[must_use]
    pub fn into_mut(self, pool: &BufPool) -> PacketBufMut {
        if Arc::strong_count(&self.inner) == 1 {
            PacketBufMut { buf: self }
        } else {
            pool.alloc_copy(self.as_slice())
        }
    }

    /// Copy-on-write mutable access: in-place when this is the only
    /// reference, otherwise the contents move to a fresh pooled buffer
    /// first. This is what lets row-space elimination mutate rows in place
    /// in the steady state while outstanding recode snapshots keep reading
    /// the old bytes.
    pub fn make_mut(&mut self, pool: &BufPool) -> &mut [u8] {
        if Arc::get_mut(&mut self.inner).is_none() {
            *self = pool.alloc_copy(self.as_slice()).freeze();
        }
        Arc::get_mut(&mut self.inner).expect("reference is unique after copy-out").slice_mut()
    }
}

impl std::ops::Deref for PacketBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for PacketBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for PacketBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PacketBuf({} bytes)", self.len())
    }
}

impl PartialEq for PacketBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for PacketBuf {}

impl From<Vec<u8>> for PacketBuf {
    fn from(v: Vec<u8>) -> Self {
        Self::from_vec(v)
    }
}

impl From<&[u8]> for PacketBuf {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl<const N: usize> From<[u8; N]> for PacketBuf {
    fn from(v: [u8; N]) -> Self {
        Self::copy_from_slice(&v)
    }
}

impl From<bytes::Bytes> for PacketBuf {
    fn from(v: bytes::Bytes) -> Self {
        Self::from_vec(v.to_vec())
    }
}

impl From<PacketBufMut> for PacketBuf {
    fn from(v: PacketBufMut) -> Self {
        v.freeze()
    }
}

/// A uniquely-owned, writable buffer; freeze into a [`PacketBuf`] to share.
///
/// Invariant: the wrapped `Arc` has exactly one strong reference, so mutable
/// access through `Arc::get_mut` always succeeds — aliasing of a live
/// mutable buffer is impossible by construction.
#[derive(Debug)]
pub struct PacketBufMut {
    buf: PacketBuf,
}

impl PacketBufMut {
    /// A zero-filled unpooled buffer (pool-miss fallback used by callers
    /// that have no pool in scope).
    #[must_use]
    pub fn zeroed(len: usize) -> Self {
        PacketBufMut { buf: PacketBuf::from_vec(vec![0u8; len]) }
    }

    /// The bytes, writable.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        Arc::get_mut(&mut self.buf.inner)
            .expect("PacketBufMut invariant: unique reference")
            .slice_mut()
    }

    /// The bytes, read-only.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        self.buf.as_slice()
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True iff the view is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Ends the write phase; the result can be cloned and shared.
    #[must_use]
    pub fn freeze(self) -> PacketBuf {
        self.buf
    }
}

impl std::ops::Deref for PacketBufMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for PacketBufMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        self.as_mut_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_zeroed_and_aligned() {
        let pool = BufPool::default();
        let buf = pool.alloc_zeroed(100);
        assert_eq!(buf.len(), 100);
        assert!(buf.iter().all(|&b| b == 0));
        assert_eq!(buf.as_slice().as_ptr() as usize % ALIGN, 0, "view must be 64-byte aligned");
    }

    #[test]
    fn recycle_after_drop_and_hit_on_reuse() {
        let pool = BufPool::default();
        let buf = pool.alloc_zeroed(512);
        assert_eq!(pool.stats().misses, 1);
        assert_eq!(pool.idle(), 0);
        drop(buf);
        assert_eq!(pool.idle(), 1);
        assert_eq!(pool.stats().recycled, 1);
        let again = pool.alloc_zeroed(512);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(pool.idle(), 0);
        drop(again);
    }

    #[test]
    fn reused_buffer_is_zeroed() {
        let pool = BufPool::default();
        let mut buf = pool.alloc_zeroed(64);
        buf.as_mut_slice().fill(0xAB);
        drop(buf);
        let again = pool.alloc_zeroed(32);
        assert!(again.iter().all(|&b| b == 0), "recycled storage must be zeroed");
    }

    #[test]
    fn pool_miss_fallback_when_no_fit() {
        let pool = BufPool::default();
        drop(pool.alloc_zeroed(16)); // small idle buffer
        assert_eq!(pool.idle(), 1);
        // Too big for the idle storage: must fall back to fresh allocation.
        let big = pool.alloc_zeroed(4096);
        assert_eq!(pool.stats().misses, 2);
        assert_eq!(pool.idle(), 1, "unfit idle buffer stays in the pool");
        drop(big);
    }

    #[test]
    fn max_idle_bounds_the_free_list() {
        let pool = BufPool::new(2);
        let bufs: Vec<_> = (0..4).map(|_| pool.alloc_zeroed(8)).collect();
        drop(bufs);
        assert_eq!(pool.idle(), 2);
        assert_eq!(pool.stats().discarded, 2);
    }

    #[test]
    fn live_buffers_never_alias() {
        let pool = BufPool::default();
        let mut a = pool.alloc_zeroed(64);
        let frozen = {
            let mut b = pool.alloc_zeroed(64);
            b.as_mut_slice().fill(7);
            b.freeze()
        };
        a.as_mut_slice().fill(9);
        // The frozen buffer must be unaffected by writes through `a`, and
        // each backing allocation has exactly the expected reference count.
        assert!(frozen.iter().all(|&b| b == 7));
        assert_eq!(frozen.ref_count(), 1);
        let clone = frozen.clone();
        assert_eq!(frozen.ref_count(), 2);
        assert_eq!(clone.as_slice(), frozen.as_slice());
    }

    #[test]
    fn into_mut_steals_when_unique() {
        let pool = BufPool::default();
        let frozen = pool.alloc_copy(b"hello").freeze();
        let before = pool.stats();
        let ptr = frozen.as_slice().as_ptr();
        let stolen = frozen.into_mut(&pool);
        assert_eq!(stolen.as_slice(), b"hello");
        assert_eq!(stolen.as_slice().as_ptr(), ptr, "unique buffer must be stolen, not copied");
        assert_eq!(pool.stats(), before, "no pool traffic for the steal");
    }

    #[test]
    fn into_mut_copies_when_shared() {
        let pool = BufPool::default();
        let frozen = pool.alloc_copy(b"shared").freeze();
        let keep = frozen.clone();
        let copy = frozen.into_mut(&pool);
        assert_eq!(copy.as_slice(), b"shared");
        assert_ne!(copy.as_slice().as_ptr(), keep.as_slice().as_ptr());
        assert_eq!(keep.ref_count(), 1, "original reference released");
    }

    #[test]
    fn make_mut_is_in_place_when_unique_and_cow_when_shared() {
        let pool = BufPool::default();
        let mut buf = pool.alloc_copy(&[1, 2, 3]).freeze();
        let ptr = buf.as_slice().as_ptr();
        buf.make_mut(&pool)[0] = 9;
        assert_eq!(buf.as_slice(), &[9, 2, 3]);
        assert_eq!(buf.as_slice().as_ptr(), ptr, "unique make_mut must be in place");

        let snapshot = buf.clone();
        buf.make_mut(&pool)[0] = 7;
        assert_eq!(buf.as_slice(), &[7, 2, 3]);
        assert_eq!(snapshot.as_slice(), &[9, 2, 3], "snapshot must keep old bytes");
        assert_eq!(snapshot.ref_count(), 1);
    }

    #[test]
    fn unpooled_buffers_skip_the_pool() {
        let pool = BufPool::default();
        let v: PacketBuf = vec![1u8, 2, 3].into();
        assert_eq!(v.as_slice(), &[1, 2, 3]);
        drop(v);
        assert_eq!(pool.idle(), 0);
        let m = PacketBufMut::zeroed(4);
        assert_eq!(m.as_slice(), &[0u8; 4]);
    }

    #[test]
    fn buffers_survive_their_pool() {
        let pool = BufPool::default();
        let buf = pool.alloc_copy(b"outlive").freeze();
        drop(pool);
        assert_eq!(buf.as_slice(), b"outlive");
        drop(buf); // recycle target is gone; must simply deallocate
    }

    #[test]
    fn from_bytes_and_empty() {
        let b: PacketBuf = bytes::Bytes::from(vec![5u8, 6]).into();
        assert_eq!(b.as_slice(), &[5, 6]);
        assert!(PacketBuf::empty().is_empty());
        assert_eq!(PacketBuf::empty(), PacketBuf::from_vec(Vec::new()));
    }

    #[test]
    fn pool_is_shared_across_clones() {
        let pool = BufPool::default();
        let handle = pool.clone();
        drop(handle.alloc_zeroed(10));
        assert_eq!(pool.idle(), 1);
        assert_eq!(pool.stats().recycled, 1);
    }
}
