//! The coded packet: coefficient vector + payload, with a wire format.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::buffer::{BufPool, PacketBuf};
use crate::error::RlncError;
use crate::generation::GenerationId;

/// A network-coded packet.
///
/// Carries the generation it belongs to, the GF(2⁸) coefficient vector that
/// expresses its payload as a linear combination of the generation's source
/// packets, and the (equally combined) payload itself. Because the
/// coefficients travel inside the packet, any node can decode or recode
/// without knowledge of the network topology — the property the overlay
/// paper relies on to tolerate churn (its §1, citing [CWJ03]).
///
/// Both parts are [`PacketBuf`]s: cloning a packet bumps refcounts instead
/// of copying, and ingest paths can take the buffers without `to_vec()`.
///
/// # Example
///
/// ```
/// use curtain_rlnc::CodedPacket;
///
/// let p = CodedPacket::new(7, vec![1, 0, 0], vec![0xde, 0xad]);
/// let wire = p.to_wire();
/// assert_eq!(CodedPacket::from_wire(&wire).unwrap(), p);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodedPacket {
    generation: GenerationId,
    coefficients: PacketBuf,
    payload: PacketBuf,
}

impl CodedPacket {
    /// Assembles a packet from parts. Accepts anything convertible to a
    /// [`PacketBuf`] (`Vec<u8>`, slices, `Bytes`, pooled buffers), so
    /// existing call sites keep working while hot paths hand over buffers
    /// without copying.
    #[must_use]
    pub fn new(
        generation: GenerationId,
        coefficients: impl Into<PacketBuf>,
        payload: impl Into<PacketBuf>,
    ) -> Self {
        CodedPacket {
            generation,
            coefficients: coefficients.into(),
            payload: payload.into(),
        }
    }

    /// The generation this packet belongs to.
    #[must_use]
    pub fn generation(&self) -> GenerationId {
        self.generation
    }

    /// The GF(2⁸) coefficient vector (length = generation size `g`).
    #[must_use]
    pub fn coefficients(&self) -> &[u8] {
        &self.coefficients
    }

    /// The coded payload.
    #[must_use]
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Decomposes into `(generation, coefficients, payload)` without
    /// copying — the ingest path of [`crate::Decoder`] / [`crate::Recoder`].
    #[must_use]
    pub fn into_parts(self) -> (GenerationId, PacketBuf, PacketBuf) {
        (self.generation, self.coefficients, self.payload)
    }

    /// True iff the coefficient vector is all-zero (a vacuous packet that
    /// carries no information; entropy-destruction attackers love these).
    #[must_use]
    pub fn is_vacuous(&self) -> bool {
        self.coefficients.iter().all(|&c| c == 0)
    }

    /// Number of non-zero coefficients (mixing degree).
    #[must_use]
    pub fn degree(&self) -> usize {
        self.coefficients.iter().filter(|&&c| c != 0).count()
    }

    /// Total size on the wire in bytes, including the header overhead that
    /// the coefficient vector costs — the quantity traded off against
    /// generation size in experiment E09.
    #[must_use]
    pub fn wire_len(&self) -> usize {
        4 + 2 + 4 + self.coefficients.len() + self.payload.len()
    }

    /// Serializes to the wire format:
    /// `[generation: u32 LE][g: u16 LE][payload_len: u32 LE][coeffs][payload]`.
    #[must_use]
    pub fn to_wire(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_len());
        buf.put_u32_le(self.generation);
        buf.put_u16_le(self.coefficients.len() as u16);
        buf.put_u32_le(self.payload.len() as u32);
        buf.put_slice(&self.coefficients);
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Appends the wire format to `out` without any intermediate
    /// allocation; senders reuse one `Vec` across packets.
    pub fn to_wire_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.wire_len());
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&(self.coefficients.len() as u16).to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.coefficients);
        out.extend_from_slice(&self.payload);
    }

    /// Parses a packet from its wire format.
    ///
    /// # Errors
    ///
    /// Returns [`RlncError::MalformedWirePacket`] if the buffer is truncated
    /// or the lengths are inconsistent.
    pub fn from_wire(buf: &[u8]) -> Result<Self, RlncError> {
        let (generation, g) = Self::parse_header(buf)?;
        Ok(CodedPacket {
            generation,
            coefficients: PacketBuf::copy_from_slice(&buf[10..10 + g]),
            payload: PacketBuf::copy_from_slice(&buf[10 + g..]),
        })
    }

    /// Parses a packet from its wire format into pool-recycled buffers —
    /// the receive path allocates nothing at steady state.
    ///
    /// # Errors
    ///
    /// Same validation as [`CodedPacket::from_wire`].
    pub fn from_wire_pooled(buf: &[u8], pool: &BufPool) -> Result<Self, RlncError> {
        let (generation, g) = Self::parse_header(buf)?;
        Ok(CodedPacket {
            generation,
            coefficients: pool.alloc_copy(&buf[10..10 + g]).freeze(),
            payload: pool.alloc_copy(&buf[10 + g..]).freeze(),
        })
    }

    /// Validates the header and body length; returns `(generation, g)`.
    fn parse_header(mut buf: &[u8]) -> Result<(GenerationId, usize), RlncError> {
        if buf.len() < 10 {
            return Err(RlncError::MalformedWirePacket("header truncated"));
        }
        let generation = buf.get_u32_le();
        let g = buf.get_u16_le() as usize;
        let payload_len = buf.get_u32_le() as usize;
        if buf.len() != g + payload_len {
            return Err(RlncError::MalformedWirePacket("body length mismatch"));
        }
        Ok((generation, g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn vacuous_and_degree() {
        let p = CodedPacket::new(0, vec![0, 0, 0], Bytes::from_static(b"xyz"));
        assert!(p.is_vacuous());
        assert_eq!(p.degree(), 0);
        let q = CodedPacket::new(0, vec![0, 5, 9], Bytes::from_static(b"xyz"));
        assert!(!q.is_vacuous());
        assert_eq!(q.degree(), 2);
    }

    #[test]
    fn wire_round_trip() {
        let p = CodedPacket::new(42, vec![1, 2, 3, 4], Bytes::from(vec![9u8; 100]));
        let wire = p.to_wire();
        assert_eq!(wire.len(), p.wire_len());
        assert_eq!(CodedPacket::from_wire(&wire).unwrap(), p);
    }

    #[test]
    fn to_wire_into_matches_to_wire_and_appends() {
        let p = CodedPacket::new(3, vec![7, 0, 1], vec![4u8; 17]);
        let mut out = vec![0xEE];
        p.to_wire_into(&mut out);
        assert_eq!(out[0], 0xEE, "must append, not overwrite");
        assert_eq!(&out[1..], &p.to_wire()[..]);
        // Reuse the same Vec for a second packet.
        out.clear();
        let q = CodedPacket::new(4, vec![1], vec![2u8; 3]);
        q.to_wire_into(&mut out);
        assert_eq!(CodedPacket::from_wire(&out).unwrap(), q);
    }

    #[test]
    fn from_wire_pooled_round_trips_and_recycles() {
        let pool = BufPool::default();
        let p = CodedPacket::new(9, vec![5, 6], vec![1u8; 64]);
        let wire = p.to_wire();
        let parsed = CodedPacket::from_wire_pooled(&wire, &pool).unwrap();
        assert_eq!(parsed, p);
        drop(parsed);
        assert_eq!(pool.idle(), 2, "coeff + payload buffers return to the pool");
        let again = CodedPacket::from_wire_pooled(&wire, &pool).unwrap();
        assert_eq!(again, p);
        assert!(pool.stats().hits >= 1, "second parse reuses pooled storage");
    }

    #[test]
    fn truncated_header_rejected() {
        assert_eq!(
            CodedPacket::from_wire(&[0u8; 5]).unwrap_err(),
            RlncError::MalformedWirePacket("header truncated")
        );
    }

    #[test]
    fn inconsistent_body_rejected() {
        let p = CodedPacket::new(1, vec![1, 2], Bytes::from_static(b"abc"));
        let mut wire = p.to_wire().to_vec();
        wire.pop();
        assert_eq!(
            CodedPacket::from_wire(&wire).unwrap_err(),
            RlncError::MalformedWirePacket("body length mismatch")
        );
    }

    proptest! {
        #[test]
        fn wire_round_trip_random(
            generation: u32,
            coeffs in proptest::collection::vec(any::<u8>(), 0..32),
            payload in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            let p = CodedPacket::new(generation, coeffs, payload);
            prop_assert_eq!(CodedPacket::from_wire(&p.to_wire()).unwrap(), p);
        }

        /// Round-trip through both parse paths plus truncation fuzzing: any
        /// strict prefix of a valid frame must be rejected, never panic.
        #[test]
        fn wire_truncation_never_panics(
            generation: u32,
            coeffs in proptest::collection::vec(any::<u8>(), 0..16),
            payload in proptest::collection::vec(any::<u8>(), 0..64),
            cut in 0usize..80,
        ) {
            let pool = BufPool::default();
            let p = CodedPacket::new(generation, coeffs, payload);
            let wire = p.to_wire();
            prop_assert_eq!(&CodedPacket::from_wire_pooled(&wire, &pool).unwrap(), &p);
            let cut = cut.min(wire.len().saturating_sub(1));
            let truncated = &wire[..cut];
            prop_assert!(CodedPacket::from_wire(truncated).is_err());
            prop_assert!(CodedPacket::from_wire_pooled(truncated, &pool).is_err());
        }
    }
}
