//! The coded packet: coefficient vector + payload, with a wire format.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::RlncError;
use crate::generation::GenerationId;

/// A network-coded packet.
///
/// Carries the generation it belongs to, the GF(2⁸) coefficient vector that
/// expresses its payload as a linear combination of the generation's source
/// packets, and the (equally combined) payload itself. Because the
/// coefficients travel inside the packet, any node can decode or recode
/// without knowledge of the network topology — the property the overlay
/// paper relies on to tolerate churn (its §1, citing [CWJ03]).
///
/// # Example
///
/// ```
/// use curtain_rlnc::CodedPacket;
///
/// let p = CodedPacket::new(7, vec![1, 0, 0], vec![0xde, 0xad].into());
/// let wire = p.to_wire();
/// assert_eq!(CodedPacket::from_wire(&wire).unwrap(), p);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodedPacket {
    generation: GenerationId,
    coefficients: Vec<u8>,
    payload: Bytes,
}

impl CodedPacket {
    /// Assembles a packet from parts.
    #[must_use]
    pub fn new(generation: GenerationId, coefficients: Vec<u8>, payload: Bytes) -> Self {
        CodedPacket { generation, coefficients, payload }
    }

    /// The generation this packet belongs to.
    #[must_use]
    pub fn generation(&self) -> GenerationId {
        self.generation
    }

    /// The GF(2⁸) coefficient vector (length = generation size `g`).
    #[must_use]
    pub fn coefficients(&self) -> &[u8] {
        &self.coefficients
    }

    /// The coded payload.
    #[must_use]
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Payload as shared bytes (cheap clone).
    #[must_use]
    pub fn payload_bytes(&self) -> Bytes {
        self.payload.clone()
    }

    /// True iff the coefficient vector is all-zero (a vacuous packet that
    /// carries no information; entropy-destruction attackers love these).
    #[must_use]
    pub fn is_vacuous(&self) -> bool {
        self.coefficients.iter().all(|&c| c == 0)
    }

    /// Number of non-zero coefficients (mixing degree).
    #[must_use]
    pub fn degree(&self) -> usize {
        self.coefficients.iter().filter(|&&c| c != 0).count()
    }

    /// Total size on the wire in bytes, including the header overhead that
    /// the coefficient vector costs — the quantity traded off against
    /// generation size in experiment E09.
    #[must_use]
    pub fn wire_len(&self) -> usize {
        4 + 2 + 4 + self.coefficients.len() + self.payload.len()
    }

    /// Serializes to the wire format:
    /// `[generation: u32 LE][g: u16 LE][payload_len: u32 LE][coeffs][payload]`.
    #[must_use]
    pub fn to_wire(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_len());
        buf.put_u32_le(self.generation);
        buf.put_u16_le(self.coefficients.len() as u16);
        buf.put_u32_le(self.payload.len() as u32);
        buf.put_slice(&self.coefficients);
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Parses a packet from its wire format.
    ///
    /// # Errors
    ///
    /// Returns [`RlncError::MalformedWirePacket`] if the buffer is truncated
    /// or the lengths are inconsistent.
    pub fn from_wire(mut buf: &[u8]) -> Result<Self, RlncError> {
        if buf.len() < 10 {
            return Err(RlncError::MalformedWirePacket("header truncated"));
        }
        let generation = buf.get_u32_le();
        let g = buf.get_u16_le() as usize;
        let payload_len = buf.get_u32_le() as usize;
        if buf.len() != g + payload_len {
            return Err(RlncError::MalformedWirePacket("body length mismatch"));
        }
        let coefficients = buf[..g].to_vec();
        let payload = Bytes::copy_from_slice(&buf[g..]);
        Ok(CodedPacket { generation, coefficients, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn vacuous_and_degree() {
        let p = CodedPacket::new(0, vec![0, 0, 0], Bytes::from_static(b"xyz"));
        assert!(p.is_vacuous());
        assert_eq!(p.degree(), 0);
        let q = CodedPacket::new(0, vec![0, 5, 9], Bytes::from_static(b"xyz"));
        assert!(!q.is_vacuous());
        assert_eq!(q.degree(), 2);
    }

    #[test]
    fn wire_round_trip() {
        let p = CodedPacket::new(42, vec![1, 2, 3, 4], Bytes::from(vec![9u8; 100]));
        let wire = p.to_wire();
        assert_eq!(wire.len(), p.wire_len());
        assert_eq!(CodedPacket::from_wire(&wire).unwrap(), p);
    }

    #[test]
    fn truncated_header_rejected() {
        assert_eq!(
            CodedPacket::from_wire(&[0u8; 5]).unwrap_err(),
            RlncError::MalformedWirePacket("header truncated")
        );
    }

    #[test]
    fn inconsistent_body_rejected() {
        let p = CodedPacket::new(1, vec![1, 2], Bytes::from_static(b"abc"));
        let mut wire = p.to_wire().to_vec();
        wire.pop();
        assert_eq!(
            CodedPacket::from_wire(&wire).unwrap_err(),
            RlncError::MalformedWirePacket("body length mismatch")
        );
    }

    proptest! {
        #[test]
        fn wire_round_trip_random(
            generation: u32,
            coeffs in proptest::collection::vec(any::<u8>(), 0..32),
            payload in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            let p = CodedPacket::new(generation, coeffs, payload.into());
            prop_assert_eq!(CodedPacket::from_wire(&p.to_wire()).unwrap(), p);
        }
    }
}
