//! Content segmentation into generations of fixed-size packets.

use crate::error::RlncError;

/// Identifies one generation of a transfer. Generations are numbered from 0.
pub type GenerationId = u32;

/// One generation: `g` source packets of `s` bytes each (last one padded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Generation {
    id: GenerationId,
    packets: Vec<Vec<u8>>,
    symbol_len: usize,
}

impl Generation {
    /// Creates a generation from pre-cut source packets.
    ///
    /// # Errors
    ///
    /// * [`RlncError::EmptyGeneration`] if `packets` is empty.
    /// * [`RlncError::InconsistentSourceLengths`] if packet lengths differ.
    pub fn new(id: GenerationId, packets: Vec<Vec<u8>>) -> Result<Self, RlncError> {
        if packets.is_empty() {
            return Err(RlncError::EmptyGeneration);
        }
        let symbol_len = packets[0].len();
        if packets.iter().any(|p| p.len() != symbol_len) {
            return Err(RlncError::InconsistentSourceLengths);
        }
        Ok(Generation { id, packets, symbol_len })
    }

    /// Generation id.
    #[must_use]
    pub fn id(&self) -> GenerationId {
        self.id
    }

    /// Number of source packets `g` in this generation.
    #[must_use]
    pub fn size(&self) -> usize {
        self.packets.len()
    }

    /// Packet payload length `s` in bytes.
    #[must_use]
    pub fn symbol_len(&self) -> usize {
        self.symbol_len
    }

    /// The source packets.
    #[must_use]
    pub fn packets(&self) -> &[Vec<u8>] {
        &self.packets
    }

    /// Consumes the generation, returning its packets.
    #[must_use]
    pub fn into_packets(self) -> Vec<Vec<u8>> {
        self.packets
    }
}

/// A whole object (file, stream segment…) cut into generations.
///
/// The split is the standard [CWJ03] layout: consecutive runs of
/// `generation_size` packets of `packet_len` bytes; the tail is zero-padded
/// and the original length retained for exact reassembly.
///
/// # Example
///
/// ```
/// use curtain_rlnc::Content;
///
/// let content = Content::split(b"hello world, this is a broadcast", 4, 8);
/// assert!(content.generations().len() >= 1);
/// let rejoined = content.clone().reassemble(
///     content.generations().iter().map(|g| g.packets().to_vec()).collect(),
/// );
/// assert_eq!(rejoined, b"hello world, this is a broadcast");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Content {
    generations: Vec<Generation>,
    original_len: usize,
    generation_size: usize,
    packet_len: usize,
}

impl Content {
    /// Splits `data` into generations of `generation_size` packets of
    /// `packet_len` bytes, zero-padding the tail.
    ///
    /// # Panics
    ///
    /// Panics if `generation_size == 0`, `generation_size > 65535` (the wire
    /// format carries `g` as `u16`), or `packet_len == 0`.
    #[must_use]
    pub fn split(data: &[u8], generation_size: usize, packet_len: usize) -> Self {
        assert!(generation_size > 0, "generation_size must be positive");
        assert!(generation_size <= u16::MAX as usize, "generation_size exceeds wire format");
        assert!(packet_len > 0, "packet_len must be positive");
        let gen_bytes = generation_size * packet_len;
        let n_gens = data.len().div_ceil(gen_bytes).max(1);
        let mut generations = Vec::with_capacity(n_gens);
        for gi in 0..n_gens {
            let mut packets = Vec::with_capacity(generation_size);
            for pi in 0..generation_size {
                let start = gi * gen_bytes + pi * packet_len;
                let mut pkt = vec![0u8; packet_len];
                if start < data.len() {
                    let end = (start + packet_len).min(data.len());
                    pkt[..end - start].copy_from_slice(&data[start..end]);
                }
                packets.push(pkt);
            }
            generations.push(
                Generation::new(gi as GenerationId, packets)
                    .expect("split produces non-empty, equal-length packets"),
            );
        }
        Content {
            generations,
            original_len: data.len(),
            generation_size,
            packet_len,
        }
    }

    /// The generations of this object, in order.
    #[must_use]
    pub fn generations(&self) -> &[Generation] {
        &self.generations
    }

    /// Original (unpadded) object length in bytes.
    #[must_use]
    pub fn original_len(&self) -> usize {
        self.original_len
    }

    /// Packets per generation.
    #[must_use]
    pub fn generation_size(&self) -> usize {
        self.generation_size
    }

    /// Total source packets across all generations (including tail padding).
    #[must_use]
    pub fn packet_count(&self) -> usize {
        self.generations.len() * self.generation_size
    }

    /// Bytes per packet.
    #[must_use]
    pub fn packet_len(&self) -> usize {
        self.packet_len
    }

    /// Reassembles the original bytes from per-generation decoded packets
    /// (as returned by [`crate::Decoder::recover`]), trimming the padding.
    ///
    /// # Panics
    ///
    /// Panics if the number of generations or their shapes disagree with the
    /// split parameters.
    #[must_use]
    pub fn reassemble(self, decoded: Vec<Vec<Vec<u8>>>) -> Vec<u8> {
        assert_eq!(decoded.len(), self.generations.len(), "generation count mismatch");
        let mut out = Vec::with_capacity(self.original_len);
        for gen_packets in &decoded {
            assert_eq!(gen_packets.len(), self.generation_size, "generation size mismatch");
            for p in gen_packets {
                assert_eq!(p.len(), self.packet_len, "packet length mismatch");
                out.extend_from_slice(p);
            }
        }
        out.truncate(self.original_len);
        out
    }
}

/// Overlapping-class layout over a run of source packets.
///
/// Partitions `total` source packets into classes of `class_size` packets
/// where consecutive classes share `overlap` packets, per Silva, Zeng &
/// Kschischang (arXiv:0905.2796). Classes start every `stride = class_size -
/// overlap` packets, so a coded packet for class `c` mixes source packets
/// `span(c)`, and a decoded class hands `overlap` known packets to its
/// neighbours for cheap cross-class repair. `overlap == 0` degenerates to the
/// disjoint [CWJ03] generations of [`Content::split`].
///
/// The plan is pure arithmetic — it owns no packet data — so encoders,
/// recoders, and decoders can all derive the same layout from `(total,
/// class_size, overlap)` carried in session metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassPlan {
    total: usize,
    class_size: usize,
    overlap: usize,
}

impl ClassPlan {
    /// Lays out `total` source packets into classes of `class_size` with
    /// `overlap` shared packets between consecutive classes.
    ///
    /// # Panics
    ///
    /// Panics if `class_size == 0`, `overlap >= class_size`, or `total == 0`.
    #[must_use]
    pub fn new(total: usize, class_size: usize, overlap: usize) -> Self {
        assert!(class_size > 0, "class_size must be positive");
        assert!(overlap < class_size, "overlap must be smaller than class_size");
        assert!(total > 0, "total packet count must be positive");
        ClassPlan { total, class_size, overlap }
    }

    /// Source packet count this plan covers (before padding).
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Packets per class (`g`).
    #[must_use]
    pub fn class_size(&self) -> usize {
        self.class_size
    }

    /// Packets shared between consecutive classes.
    #[must_use]
    pub fn overlap(&self) -> usize {
        self.overlap
    }

    /// Distance between consecutive class starts.
    #[must_use]
    pub fn stride(&self) -> usize {
        self.class_size - self.overlap
    }

    /// Number of classes needed to cover every source packet.
    #[must_use]
    pub fn class_count(&self) -> usize {
        if self.total <= self.class_size {
            1
        } else {
            1 + (self.total - self.class_size).div_ceil(self.stride())
        }
    }

    /// Packet count after padding the tail so the last class is full.
    #[must_use]
    pub fn padded_packets(&self) -> usize {
        (self.class_count() - 1) * self.stride() + self.class_size
    }

    /// The half-open range of source packet indices class `class` mixes.
    ///
    /// # Panics
    ///
    /// Panics if `class >= class_count()`.
    #[must_use]
    pub fn span(&self, class: usize) -> core::ops::Range<usize> {
        assert!(class < self.class_count(), "class index out of range");
        let start = class * self.stride();
        start..start + self.class_size
    }

    /// Packet indices shared by classes `boundary` and `boundary + 1` —
    /// the natural support for cross-class repair packets.
    ///
    /// Returns an empty range when `overlap == 0`.
    ///
    /// # Panics
    ///
    /// Panics if `boundary + 1 >= class_count()`.
    #[must_use]
    pub fn shared_span(&self, boundary: usize) -> core::ops::Range<usize> {
        assert!(boundary + 1 < self.class_count(), "boundary out of range");
        let start = (boundary + 1) * self.stride();
        start..start + self.overlap
    }

    /// The classes whose span contains source packet `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= padded_packets()`.
    #[must_use]
    pub fn classes_covering(&self, index: usize) -> core::ops::Range<usize> {
        assert!(index < self.padded_packets(), "packet index out of range");
        let stride = self.stride();
        let lo = if index + 1 > self.class_size {
            (index + 1 - self.class_size).div_ceil(stride)
        } else {
            0
        };
        let hi = (index / stride).min(self.class_count() - 1);
        lo..hi + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_generation_rejected() {
        assert_eq!(Generation::new(0, vec![]).unwrap_err(), RlncError::EmptyGeneration);
    }

    #[test]
    fn ragged_generation_rejected() {
        assert_eq!(
            Generation::new(0, vec![vec![1, 2], vec![3]]).unwrap_err(),
            RlncError::InconsistentSourceLengths
        );
    }

    #[test]
    fn split_shapes() {
        let c = Content::split(&[7u8; 100], 4, 16); // 64 bytes per generation
        assert_eq!(c.generations().len(), 2);
        for g in c.generations() {
            assert_eq!(g.size(), 4);
            assert_eq!(g.symbol_len(), 16);
        }
        assert_eq!(c.original_len(), 100);
    }

    #[test]
    fn split_empty_data_still_one_generation() {
        let c = Content::split(&[], 2, 4);
        assert_eq!(c.generations().len(), 1);
        assert_eq!(c.clone().reassemble(vec![c.generations()[0].packets().to_vec()]), b"");
    }

    #[test]
    fn reassemble_strips_tail_padding_for_non_multiple_sizes() {
        // g·s = 32 here; none of these lengths is a multiple of it.
        for &len in &[1usize, 5, 31, 33, 100, 257] {
            assert!(len % 32 != 0);
            let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8 + 1).collect();
            let c = Content::split(&data, 4, 8);
            let padded: usize = c.packet_count() * c.packet_len();
            assert!(padded > len, "tail must be padded");
            let decoded: Vec<Vec<Vec<u8>>> =
                c.generations().iter().map(|g| g.packets().to_vec()).collect();
            assert_eq!(c.reassemble(decoded), data, "len {len} round trip");
        }
    }

    #[test]
    fn class_plan_disjoint_matches_generations() {
        let plan = ClassPlan::new(12, 4, 0);
        assert_eq!(plan.stride(), 4);
        assert_eq!(plan.class_count(), 3);
        assert_eq!(plan.padded_packets(), 12);
        assert_eq!(plan.span(1), 4..8);
        assert_eq!(plan.classes_covering(5), 1..2);
    }

    #[test]
    fn class_plan_overlap_layout() {
        // 10 packets, classes of 4 sharing 2: starts at 0,2,4,6 → 4 classes.
        let plan = ClassPlan::new(10, 4, 2);
        assert_eq!(plan.stride(), 2);
        assert_eq!(plan.class_count(), 4);
        assert_eq!(plan.padded_packets(), 10);
        assert_eq!(plan.span(0), 0..4);
        assert_eq!(plan.span(3), 6..10);
        assert_eq!(plan.shared_span(0), 2..4);
        assert_eq!(plan.classes_covering(3), 0..2);
        assert_eq!(plan.classes_covering(0), 0..1);
        assert_eq!(plan.classes_covering(9), 3..4);
    }

    #[test]
    fn class_plan_single_class_when_small() {
        let plan = ClassPlan::new(3, 8, 4);
        assert_eq!(plan.class_count(), 1);
        assert_eq!(plan.padded_packets(), 8);
        assert_eq!(plan.classes_covering(7), 0..1);
    }

    proptest! {
        #[test]
        fn class_plan_covering_agrees_with_span(
            total in 1usize..200,
            g in 1usize..12,
            overlap_frac in 0usize..12,
        ) {
            let overlap = overlap_frac % g;
            let plan = ClassPlan::new(total, g, overlap);
            prop_assert!(plan.padded_packets() >= total);
            for idx in 0..plan.padded_packets() {
                let covering = plan.classes_covering(idx);
                prop_assert!(!covering.is_empty(), "packet {} uncovered", idx);
                for c in 0..plan.class_count() {
                    prop_assert_eq!(
                        covering.contains(&c),
                        plan.span(c).contains(&idx),
                        "plan {:?} packet {} class {}", plan, idx, c
                    );
                }
            }
        }

        #[test]
        fn split_reassemble_round_trip(
            data in proptest::collection::vec(any::<u8>(), 0..500),
            g in 1usize..6,
            s in 1usize..20,
        ) {
            let c = Content::split(&data, g, s);
            let decoded: Vec<Vec<Vec<u8>>> =
                c.generations().iter().map(|gen| gen.packets().to_vec()).collect();
            prop_assert_eq!(c.reassemble(decoded), data);
        }

        #[test]
        fn padding_is_zero(data in proptest::collection::vec(1u8.., 1..64)) {
            let c = Content::split(&data, 4, 8);
            let total: usize = 4 * 8 * c.generations().len();
            let flat: Vec<u8> = c
                .generations()
                .iter()
                .flat_map(|g| g.packets().iter().flatten().copied())
                .collect();
            prop_assert_eq!(flat.len(), total);
            for (i, &b) in flat.iter().enumerate() {
                if i >= data.len() {
                    prop_assert_eq!(b, 0, "padding byte {} non-zero", i);
                }
            }
        }
    }
}
