//! The source encoder: emits random linear combinations of a generation.

use curtain_gf::{vec_ops, Field, Gf256};
use rand::Rng;

use crate::error::RlncError;
use crate::generation::{Generation, GenerationId};
use crate::packet::CodedPacket;

/// Encoder for a single generation held at the source (the server).
///
/// The server in the curtain overlay emits `k` streams; each stream is a
/// sequence of packets produced by [`Encoder::encode`] — independent random
/// combinations of the generation, so any `g` of them (from any mix of
/// streams) decode with high probability.
///
/// # Example
///
/// ```
/// use curtain_rlnc::{Decoder, Encoder};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(9);
/// let data = vec![vec![1u8; 16], vec![2u8; 16], vec![3u8; 16]];
/// let enc = Encoder::new(0, data.clone()).unwrap();
/// let mut dec = Decoder::new(0, 3, 16);
/// while !dec.is_complete() {
///     dec.push(enc.encode(&mut rng)).unwrap();
/// }
/// assert_eq!(dec.recover().unwrap(), data);
/// ```
#[derive(Debug, Clone)]
pub struct Encoder {
    id: GenerationId,
    packets: Vec<Vec<u8>>,
    symbol_len: usize,
}

impl Encoder {
    /// Creates an encoder over the given source packets.
    ///
    /// # Errors
    ///
    /// * [`RlncError::EmptyGeneration`] if `packets` is empty.
    /// * [`RlncError::InconsistentSourceLengths`] if lengths differ.
    pub fn new(id: GenerationId, packets: Vec<Vec<u8>>) -> Result<Self, RlncError> {
        let generation = Generation::new(id, packets)?;
        let symbol_len = generation.symbol_len();
        Ok(Encoder { id, packets: generation.into_packets(), symbol_len })
    }

    /// Creates an encoder directly from a [`Generation`].
    #[must_use]
    pub fn from_generation(generation: Generation) -> Self {
        let id = generation.id();
        let symbol_len = generation.symbol_len();
        Encoder { id, packets: generation.into_packets(), symbol_len }
    }

    /// Generation id served by this encoder.
    #[must_use]
    pub fn generation(&self) -> GenerationId {
        self.id
    }

    /// Generation size `g`.
    #[must_use]
    pub fn generation_size(&self) -> usize {
        self.packets.len()
    }

    /// Payload length `s` in bytes.
    #[must_use]
    pub fn symbol_len(&self) -> usize {
        self.symbol_len
    }

    /// The source packets (crate-internal: the compact wire format mixes
    /// them directly).
    pub(crate) fn source_packets(&self) -> &[Vec<u8>] {
        &self.packets
    }

    /// Emits a fresh random linear combination of the generation.
    ///
    /// The coefficient vector is sampled uniformly; the all-zero draw is
    /// re-rolled so the packet always carries information.
    #[must_use]
    pub fn encode<R: Rng + ?Sized>(&self, rng: &mut R) -> CodedPacket {
        let g = self.packets.len();
        let mut coeffs = vec![0u8; g];
        loop {
            for c in coeffs.iter_mut() {
                *c = Gf256::random(rng).value();
            }
            if coeffs.iter().any(|&c| c != 0) {
                break;
            }
        }
        let mut payload = vec![0u8; self.symbol_len];
        for (c, src) in coeffs.iter().zip(&self.packets) {
            vec_ops::axpy(&mut payload, *c, src);
        }
        CodedPacket::new(self.id, coeffs, payload)
    }

    /// Emits a *sparse* random combination: each coefficient is non-zero
    /// with probability `density` (re-rolled if the draw is all-zero).
    ///
    /// Sparse coding cuts the mixing cost from `g` axpy passes to
    /// `≈ density·g` at the price of a higher chance of non-innovative
    /// packets — the ablation experiment E09 quantifies the trade-off.
    ///
    /// # Panics
    ///
    /// Panics if `density` is not in `(0, 1]`.
    #[must_use]
    pub fn encode_sparse<R: Rng + ?Sized>(&self, rng: &mut R, density: f64) -> CodedPacket {
        use rand::RngExt as _;
        assert!(density > 0.0 && density <= 1.0, "density must be in (0, 1]");
        let g = self.packets.len();
        let mut coeffs = vec![0u8; g];
        loop {
            for c in coeffs.iter_mut() {
                *c = if rng.random_bool(density) {
                    Gf256::random_nonzero(rng).value()
                } else {
                    0
                };
            }
            if coeffs.iter().any(|&c| c != 0) {
                break;
            }
        }
        let mut payload = vec![0u8; self.symbol_len];
        for (c, src) in coeffs.iter().zip(&self.packets) {
            vec_ops::axpy(&mut payload, *c, src);
        }
        CodedPacket::new(self.id, coeffs, payload)
    }

    /// Emits the `i`-th *systematic* packet: coefficient vector `e_i`,
    /// payload = source packet `i`. Sending one systematic round first is
    /// the classic latency optimization of practical network coding.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.generation_size()`.
    #[must_use]
    pub fn systematic(&self, i: usize) -> CodedPacket {
        assert!(i < self.packets.len(), "systematic index out of range");
        let mut coeffs = vec![0u8; self.packets.len()];
        coeffs[i] = 1;
        CodedPacket::new(self.id, coeffs, self.packets[i].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn encoder(g: usize, s: usize) -> Encoder {
        let data: Vec<Vec<u8>> = (0..g).map(|i| vec![i as u8; s]).collect();
        Encoder::new(3, data).unwrap()
    }

    #[test]
    fn encode_never_vacuous() {
        let enc = encoder(4, 8);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..500 {
            assert!(!enc.encode(&mut rng).is_vacuous());
        }
    }

    #[test]
    fn encoded_packet_is_declared_combination() {
        let enc = encoder(3, 5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let p = enc.encode(&mut rng);
            let mut expect = vec![0u8; 5];
            for (i, c) in p.coefficients().iter().enumerate() {
                curtain_gf::vec_ops::axpy(&mut expect, *c, &[i as u8; 5]);
            }
            assert_eq!(p.payload(), &expect[..]);
        }
    }

    #[test]
    fn systematic_packets_reproduce_sources() {
        let enc = encoder(3, 4);
        for i in 0..3 {
            let p = enc.systematic(i);
            assert_eq!(p.payload(), &vec![i as u8; 4][..]);
            assert_eq!(p.degree(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "systematic index out of range")]
    fn systematic_out_of_range_panics() {
        let _ = encoder(2, 2).systematic(2);
    }

    #[test]
    fn sparse_encode_respects_density_and_decodes() {
        use crate::decoder::Decoder;
        let enc = encoder(16, 8);
        let mut rng = StdRng::seed_from_u64(9);
        // Density statistics.
        let mut nonzero = 0usize;
        for _ in 0..500 {
            nonzero += enc.encode_sparse(&mut rng, 0.25).degree();
        }
        let rate = nonzero as f64 / (500.0 * 16.0);
        assert!((rate - 0.25).abs() < 0.05, "observed density {rate}");
        // Sparse packets still decode (just need more of them).
        let mut dec = Decoder::new(3, 16, 8);
        let mut sent = 0;
        while !dec.is_complete() {
            dec.push(enc.encode_sparse(&mut rng, 0.25)).unwrap();
            sent += 1;
            assert!(sent < 2000, "sparse transfer did not converge");
        }
    }

    #[test]
    #[should_panic(expected = "density must be in (0, 1]")]
    fn sparse_density_validated() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = encoder(4, 4).encode_sparse(&mut rng, 0.0);
    }

    #[test]
    fn empty_generation_rejected() {
        assert_eq!(Encoder::new(0, vec![]).unwrap_err(), RlncError::EmptyGeneration);
    }

    #[test]
    fn ragged_generation_rejected() {
        assert_eq!(
            Encoder::new(0, vec![vec![0], vec![0, 1]]).unwrap_err(),
            RlncError::InconsistentSourceLengths
        );
    }
}
