//! Practical random linear network coding (RLNC).
//!
//! Implements the scheme of Chou, Wu & Jain, *"Practical network coding"*
//! (Allerton 2003), which the PODC 2005 overlay paper uses as its data plane:
//!
//! * Content is split into **generations** of `g` packets of `s` bytes
//!   ([`Content`], [`Generation`]).
//! * The **source** emits random linear combinations of a generation's
//!   packets over GF(2⁸) ([`Encoder`]).
//! * Every **intermediate node** buffers the (innovative) packets it has
//!   received and forwards fresh random combinations of them ([`Recoder`]) —
//!   this is the "mixing at each clip" of the curtain overlay.
//! * Each coded packet carries its **coefficient vector** in the header
//!   ([`CodedPacket`]), so packets remain decodable under arbitrary topology
//!   churn — no receiver needs to know what the network did.
//! * A **receiver** performs progressive Gaussian elimination and recovers
//!   the generation once it has `g` linearly independent packets
//!   ([`Decoder`]).
//!
//! Multi-generation transfer of whole objects is handled by
//! [`ObjectEncoder`]/[`ObjectDecoder`] in [`pipeline`].
//!
//! The production code path is specialized to GF(2⁸) byte buffers (one table
//! lookup + XOR per byte); a field-generic variant for GF(2¹⁶) experiments
//! lives in [`generic`].
//!
//! # Example: source → recoder → sink
//!
//! ```
//! use curtain_rlnc::{Decoder, Encoder, Recoder};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 8]).collect();
//! let enc = Encoder::new(0, data.clone()).unwrap();
//! let mut mid = Recoder::new(0, 4, 8);
//! let mut sink = Decoder::new(0, 4, 8);
//!
//! while !sink.is_complete() {
//!     mid.push(enc.encode(&mut rng)).unwrap();
//!     if let Some(p) = mid.recode(&mut rng) {
//!         sink.push(p).unwrap();
//!     }
//! }
//! assert_eq!(sink.recover().unwrap(), data);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod compact;
mod decoder;
mod encoder;
mod error;
mod generation;
pub mod generic;
mod packet;
pub mod pipeline;
mod recoder;
mod rowspace;
mod stats;

pub use buffer::{BufPool, PacketBuf, PacketBufMut, PoolStats};
pub use decoder::Decoder;
pub use encoder::Encoder;
pub use error::RlncError;
pub use generation::{ClassPlan, Content, Generation, GenerationId};
pub use packet::CodedPacket;
pub use pipeline::{ObjectDecoder, ObjectEncoder};
pub use recoder::{RecodeSnapshot, Recoder};
pub use compact::WirePacket;
pub use stats::CodingStats;
