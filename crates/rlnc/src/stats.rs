//! Counters for coding efficiency measurements.

/// Running totals of packets seen by a decoder or recoder.
///
/// The *overhead* of a network-coded transfer — redundant packets divided by
/// innovative ones — is one of the quantities experiment E09 reports; for
/// GF(2⁸) it should hover near the theoretical `1/255` per reception
/// opportunity at full rank.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CodingStats {
    innovative: u64,
    redundant: u64,
}

impl CodingStats {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one packet reception.
    pub fn record(&mut self, innovative: bool) {
        if innovative {
            self.innovative += 1;
        } else {
            self.redundant += 1;
        }
    }

    /// Packets that increased the rank.
    #[must_use]
    pub fn innovative(&self) -> u64 {
        self.innovative
    }

    /// Packets that were linearly dependent on earlier ones.
    #[must_use]
    pub fn redundant(&self) -> u64 {
        self.redundant
    }

    /// Total packets seen.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.innovative + self.redundant
    }

    /// Fraction of received packets that were redundant (0.0 if none seen).
    #[must_use]
    pub fn overhead(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.redundant as f64 / self.total() as f64
        }
    }

    /// Merges another set of counters into this one.
    pub fn merge(&mut self, other: &CodingStats) {
        self.innovative += other.innovative;
        self.redundant += other.redundant;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_ratios() {
        let mut s = CodingStats::new();
        assert_eq!(s.overhead(), 0.0);
        s.record(true);
        s.record(true);
        s.record(false);
        assert_eq!(s.innovative(), 2);
        assert_eq!(s.redundant(), 1);
        assert_eq!(s.total(), 3);
        assert!((s.overhead() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = CodingStats::new();
        a.record(true);
        let mut b = CodingStats::new();
        b.record(false);
        b.record(false);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.redundant(), 2);
    }
}
