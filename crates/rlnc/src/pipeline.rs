//! Whole-object transfer across multiple generations.
//!
//! A download or stream is a [`Content`] cut into generations; the
//! [`ObjectEncoder`] serves coded packets across generations (round-robin or
//! sequential) and the [`ObjectDecoder`] tracks per-generation progress and
//! reassembles the original bytes when everything is decodable.

use rand::Rng;

use crate::decoder::Decoder;
use crate::encoder::Encoder;
use crate::error::RlncError;
use crate::generation::{Content, GenerationId};
use crate::packet::CodedPacket;

/// How the encoder cycles through generations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// Serve generation 0 until told to advance, then 1, … — the streaming
    /// (synchronous) pattern, where the play-out point advances.
    #[default]
    Sequential,
    /// Rotate across all generations — the download (asynchronous) pattern.
    RoundRobin,
}

/// Source-side state for a whole object.
///
/// # Example
///
/// ```
/// use curtain_rlnc::{Content, ObjectDecoder, ObjectEncoder};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(11);
/// let content = Content::split(&vec![0x5Au8; 300], 8, 16);
/// let mut enc = ObjectEncoder::new(content.clone());
/// let mut dec = ObjectDecoder::new(&content);
/// while !dec.is_complete() {
///     dec.push(enc.next_packet(&mut rng)).unwrap();
/// }
/// assert_eq!(dec.reassemble().unwrap(), vec![0x5Au8; 300]);
/// ```
#[derive(Debug, Clone)]
pub struct ObjectEncoder {
    encoders: Vec<Encoder>,
    schedule: Schedule,
    cursor: usize,
}

impl ObjectEncoder {
    /// Creates an encoder serving all generations of `content` round-robin.
    #[must_use]
    pub fn new(content: Content) -> Self {
        let encoders = content
            .generations()
            .iter()
            .cloned()
            .map(Encoder::from_generation)
            .collect();
        ObjectEncoder { encoders, schedule: Schedule::RoundRobin, cursor: 0 }
    }

    /// Selects the generation schedule.
    #[must_use]
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Number of generations.
    #[must_use]
    pub fn generation_count(&self) -> usize {
        self.encoders.len()
    }

    /// Emits the next coded packet according to the schedule.
    pub fn next_packet<R: Rng + ?Sized>(&mut self, rng: &mut R) -> CodedPacket {
        let idx = self.cursor;
        if self.schedule == Schedule::RoundRobin {
            self.cursor = (self.cursor + 1) % self.encoders.len();
        }
        self.encoders[idx].encode(rng)
    }

    /// Emits a coded packet for a specific generation.
    ///
    /// # Panics
    ///
    /// Panics if `generation` is out of range.
    pub fn packet_for<R: Rng + ?Sized>(
        &self,
        generation: GenerationId,
        rng: &mut R,
    ) -> CodedPacket {
        self.encoders[generation as usize].encode(rng)
    }

    /// Advances the sequential cursor (streaming play-out moved on).
    pub fn advance(&mut self) {
        if self.cursor + 1 < self.encoders.len() {
            self.cursor += 1;
        }
    }
}

/// Receiver-side state for a whole object.
#[derive(Debug, Clone)]
pub struct ObjectDecoder {
    decoders: Vec<Decoder>,
    content_shape: Content,
}

impl ObjectDecoder {
    /// Creates a decoder matching the shape of `content` (sizes only — the
    /// data itself is what's being transferred).
    #[must_use]
    pub fn new(content: &Content) -> Self {
        let decoders = content
            .generations()
            .iter()
            .map(|g| Decoder::new(g.id(), g.size(), g.symbol_len()))
            .collect();
        ObjectDecoder { decoders, content_shape: content.clone() }
    }

    /// Offers a packet to the matching generation decoder. Returns whether
    /// it was innovative.
    ///
    /// # Errors
    ///
    /// Propagates decoder validation errors; an unknown generation id maps
    /// to [`RlncError::GenerationMismatch`].
    pub fn push(&mut self, packet: CodedPacket) -> Result<bool, RlncError> {
        let idx = packet.generation() as usize;
        let Some(dec) = self.decoders.get_mut(idx) else {
            return Err(RlncError::GenerationMismatch {
                expected: self.decoders.len().saturating_sub(1) as GenerationId,
                got: packet.generation(),
            });
        };
        dec.push(packet)
    }

    /// Total rank across generations, as a fraction of full completion.
    #[must_use]
    pub fn progress(&self) -> f64 {
        let have: usize = self.decoders.iter().map(Decoder::rank).sum();
        let want: usize = self.decoders.iter().map(Decoder::generation_size).sum();
        have as f64 / want as f64
    }

    /// Number of fully decodable generations so far.
    #[must_use]
    pub fn complete_generations(&self) -> usize {
        self.decoders.iter().filter(|d| d.is_complete()).count()
    }

    /// Index of the first not-yet-complete generation (streaming play-out
    /// position); `None` when everything is complete.
    #[must_use]
    pub fn playout_position(&self) -> Option<GenerationId> {
        self.decoders
            .iter()
            .position(|d| !d.is_complete())
            .map(|i| i as GenerationId)
    }

    /// True iff every generation is decodable.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.decoders.iter().all(Decoder::is_complete)
    }

    /// Per-generation decoders (read-only view, for metrics).
    #[must_use]
    pub fn decoders(&self) -> &[Decoder] {
        &self.decoders
    }

    /// Reassembles the original object bytes; `None` until complete.
    #[must_use]
    pub fn reassemble(&self) -> Option<Vec<u8>> {
        if !self.is_complete() {
            return None;
        }
        let decoded: Vec<Vec<Vec<u8>>> = self
            .decoders
            .iter()
            .map(|d| d.recover().expect("complete decoder recovers"))
            .collect();
        Some(self.content_shape.clone().reassemble(decoded))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use rand::rngs::StdRng;
    use rand::{RngExt as _, SeedableRng};

    fn content(len: usize, g: usize, s: usize, seed: u64) -> (Vec<u8>, Content) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<u8> = (0..len).map(|_| rng.random()).collect();
        let c = Content::split(&data, g, s);
        (data, c)
    }

    #[test]
    fn round_robin_transfer_completes() {
        let (data, c) = content(1000, 8, 16, 1);
        let mut enc = ObjectEncoder::new(c.clone());
        let mut dec = ObjectDecoder::new(&c);
        let mut rng = StdRng::seed_from_u64(2);
        let mut sent = 0;
        while !dec.is_complete() {
            dec.push(enc.next_packet(&mut rng)).unwrap();
            sent += 1;
            assert!(sent < 10_000, "did not converge");
        }
        assert_eq!(dec.reassemble().unwrap(), data);
    }

    #[test]
    fn sequential_schedule_fills_generations_in_order() {
        let (_, c) = content(1000, 4, 16, 3);
        let mut enc = ObjectEncoder::new(c.clone()).with_schedule(Schedule::Sequential);
        let mut dec = ObjectDecoder::new(&c);
        let mut rng = StdRng::seed_from_u64(4);
        while dec.playout_position() == Some(0) {
            dec.push(enc.next_packet(&mut rng)).unwrap();
        }
        // Generation 0 done, later generations untouched.
        assert!(dec.decoders()[0].is_complete());
        for d in &dec.decoders()[1..] {
            assert_eq!(d.rank(), 0);
        }
        enc.advance();
        while !dec.decoders()[1].is_complete() {
            dec.push(enc.next_packet(&mut rng)).unwrap();
        }
        assert_eq!(dec.complete_generations(), 2);
    }

    #[test]
    fn unknown_generation_rejected() {
        let (_, c) = content(100, 4, 16, 5);
        let mut dec = ObjectDecoder::new(&c);
        let p = CodedPacket::new(99, vec![1, 0, 0, 0], Bytes::from(vec![0u8; 16]));
        assert!(matches!(dec.push(p), Err(RlncError::GenerationMismatch { .. })));
    }

    #[test]
    fn progress_is_monotone() {
        let (_, c) = content(600, 6, 10, 6);
        let mut enc = ObjectEncoder::new(c.clone());
        let mut dec = ObjectDecoder::new(&c);
        let mut rng = StdRng::seed_from_u64(7);
        let mut last = 0.0;
        while !dec.is_complete() {
            dec.push(enc.next_packet(&mut rng)).unwrap();
            let p = dec.progress();
            assert!(p >= last);
            last = p;
        }
        assert_eq!(last, 1.0);
    }

    #[test]
    fn reassemble_before_complete_is_none() {
        let (_, c) = content(500, 8, 16, 8);
        let dec = ObjectDecoder::new(&c);
        assert!(dec.reassemble().is_none());
    }
}
