//! Observability for the curtain protocol: event traces and metrics.
//!
//! The paper's central claims (Theorem 4's defect drift, Theorem 5's
//! collapse time, Lemma 1's splice invariance) are statements about *event
//! sequences* — joins, leaves, failures, complaints, splices — not about
//! end-of-run aggregates. This crate makes those sequences first-class:
//!
//! * [`Event`] — a structured protocol-lifecycle event (hello, good-bye,
//!   complaint, splice, repair completion, per-thread defect deltas,
//!   innovative/redundant packet receptions, link drops, TCP peer
//!   connect/disconnect);
//! * [`Recorder`] — the sink trait: events plus counter / gauge / histogram
//!   primitives;
//! * [`SharedRecorder`] — the cloneable handle every instrumented crate
//!   threads through its types. It carries the trace clock: sim-ticks for
//!   the simulator (driven by `World::tick`), wall-clock milliseconds for
//!   the real-TCP layer;
//! * [`JsonlSink`] — streams events as one JSON object per line to any
//!   `Write`r (a file for the experiment binaries' `--trace` flag, a
//!   `Vec<u8>` for tests) behind a single cheap mutex;
//! * [`MemorySink`] — buffers events in memory for assertions;
//! * [`MetricsRegistry`] — counters, gauges and log₂-bucket histograms,
//!   snapshottable as JSON;
//! * [`NullRecorder`] / [`SharedRecorder::null`] — the disabled state:
//!   instrumented code pays one `Option`/flag check and nothing else;
//! * [`replay`] — parses a JSONL trace back into `(timestamp, Event)`
//!   pairs so experiments can be replayed and cross-checked offline;
//! * [`trace`] — causal identity ([`TraceContext`]): trace/span ids
//!   stamped at packet birth, forwarded hop by hop, carried as an
//!   optional frame extension by `curtain-net`;
//! * [`stitch`] — merges multi-process JSONL traces by trace id into
//!   per-hop latency distributions, hop-chain completeness accounting,
//!   and repair-episode span trees ([`StitchReport`]);
//! * [`expose`] — a zero-dep blocking HTTP listener ([`ExposeServer`])
//!   serving Prometheus-style `/metrics` (with p50/p95/p99 histogram
//!   summaries) and a caller-defined `/health` JSON document.
//!
//! The crate is deliberately **dependency-free** (std only): JSON emission
//! and parsing are small hand-rolled routines covering exactly the schema
//! this crate writes, so instrumentation never drags serde or tokio into
//! `curtain-gf`'s neighborhood. The [`json`] module is public: the trace
//! wire format stays flat, but consumers with tree-shaped artifacts
//! (`curtain-lab`'s result cache and `BENCH_*.json` reports) reuse the
//! same writer/parser via [`json::JsonValue`] and [`json::parse_document`].
//!
//! # Example
//!
//! ```
//! use curtain_telemetry::{Event, JsonlSink, SharedRecorder, replay};
//!
//! let sink = JsonlSink::new(Vec::new());
//! let recorder = SharedRecorder::new(sink.clone());
//! recorder.set_time(42);
//! recorder.record(&Event::Hello { node: 7, position: 0, degree: 2 });
//! recorder.counter("joins", 1);
//! recorder.flush().unwrap();
//!
//! let bytes = sink.bytes();
//! let events = replay::read_trace(&bytes[..]).unwrap();
//! assert_eq!(events.len(), 1);
//! assert_eq!(events[0].at, 42);
//! assert_eq!(events[0].event, Event::Hello { node: 7, position: 0, degree: 2 });
//! assert_eq!(sink.metrics_snapshot().counters["joins"], 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod expose;
pub mod json;
mod metrics;
mod recorder;
pub mod replay;
mod sink;
pub mod stitch;
pub mod trace;

pub use event::{DropReason, Event, SpliceCause};
pub use expose::ExposeServer;
pub use metrics::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use recorder::{NullRecorder, Recorder, SharedRecorder};
pub use replay::TracedEvent;
pub use sink::{JsonlSink, MemorySink};
pub use stitch::{StitchReport, stitch};
pub use trace::TraceContext;
