//! The structured protocol-lifecycle event and its JSONL schema.

use crate::json::{self, JsonValue};

/// Why the simulated link layer dropped a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Ergodic in-flight loss (iid or Gilbert–Elliott).
    Loss,
    /// The link was at its per-tick capacity when the packet was offered.
    Capacity,
}

impl DropReason {
    fn as_str(self) -> &'static str {
        match self {
            DropReason::Loss => "loss",
            DropReason::Capacity => "capacity",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "loss" => Some(DropReason::Loss),
            "capacity" => Some(DropReason::Capacity),
            _ => None,
        }
    }
}

/// Which protocol removed the spliced row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpliceCause {
    /// The good-bye protocol (graceful leave).
    Leave,
    /// The repair protocol (failure splice-out).
    Repair,
}

impl SpliceCause {
    fn as_str(self) -> &'static str {
        match self {
            SpliceCause::Leave => "leave",
            SpliceCause::Repair => "repair",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "leave" => Some(SpliceCause::Leave),
            "repair" => Some(SpliceCause::Repair),
            _ => None,
        }
    }
}

/// One protocol-lifecycle event.
///
/// Timestamps are *not* part of the event; the [`crate::SharedRecorder`]
/// stamps each record with its clock (sim-ticks in the simulator,
/// wall-clock milliseconds over real sockets) when it is recorded.
///
/// The JSONL wire form is one flat object per line:
/// `{"t":<stamp>,"ev":"<kind>",...fields}` — see [`Event::write_jsonl`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A node completed the hello protocol and was inserted into `M`.
    Hello {
        /// The new node's id.
        node: u64,
        /// Row position assigned in the matrix.
        position: u64,
        /// Number of threads the node clipped (its in-degree `d`).
        degree: u32,
    },
    /// A node ran the good-bye protocol (graceful leave).
    GoodBye {
        /// The departing node.
        node: u64,
    },
    /// Children complained about a dead parent; the server tagged the row.
    Complain {
        /// The node reported as failed.
        node: u64,
        /// Distinct complaining children.
        complaints: u32,
    },
    /// A row was spliced out of the matrix (leave or repair), redirecting
    /// each parent to the corresponding child.
    Splice {
        /// The node spliced out.
        node: u64,
        /// Number of per-thread redirections in the plan.
        redirects: u32,
        /// Which protocol caused the splice.
        cause: SpliceCause,
    },
    /// The repair protocol finished for a previously failed node.
    RepairComplete {
        /// The repaired (now removed) node.
        node: u64,
    },
    /// The number of *failed* holders of one thread changed.
    ///
    /// Accumulating the deltas per thread replays the failed-holder count
    /// over time — the event-sourced face of the §4 defect process (a
    /// thread with failed holders is exactly what makes tuples defective).
    ThreadDefect {
        /// The thread whose failed-holder count changed.
        thread: u32,
        /// `+1` when a holder fails (or joins failed), `-1` on repair.
        delta: i64,
    },
    /// A measured sample of the paper's total defect `B` over `A` tuples.
    ///
    /// Emitted by experiments that compute `curtain-overlay`'s defect
    /// exactly or by sampling; `defect / tuples` is the `E[B]/A` ratio of
    /// Theorem 4.
    DefectSample {
        /// Total defect `B = Σ j·B_j` over the inspected tuples.
        defect: u64,
        /// Number of tuples inspected (`A = C(k,d)` when exact).
        tuples: u64,
    },
    /// A received coded packet increased a decoder/recoder's rank.
    PacketInnovative {
        /// Label of the receiving node (host index or overlay id).
        node: u64,
        /// Generation the packet belongs to.
        generation: u32,
        /// Rank after insertion.
        rank: u32,
    },
    /// A received coded packet was linearly dependent on earlier ones.
    PacketRedundant {
        /// Label of the receiving node (host index or overlay id).
        node: u64,
        /// Generation the packet belongs to.
        generation: u32,
    },
    /// A decoder/recoder's generation reached full rank and became
    /// decodable. `innovative + redundant` is the total packets the
    /// generation cost this node; the redundant count *is* the completion
    /// overhead the e20 codec sweep measures.
    GenerationComplete {
        /// Label of the decoding node (host index or overlay id).
        node: u64,
        /// The generation (or overlapping class) that completed.
        generation: u32,
        /// Innovative packets consumed (= the generation size `g`).
        innovative: u64,
        /// Redundant packets received before completion.
        redundant: u64,
    },
    /// The simulated link layer dropped an offered packet.
    LinkDrop {
        /// Link id within the world.
        link: u32,
        /// Sending host.
        from: u32,
        /// Receiving host.
        to: u32,
        /// Loss or capacity.
        reason: DropReason,
    },
    /// A peer connected (TCP data/control plane or session start).
    PeerConnect {
        /// The peer's id.
        peer: u64,
    },
    /// A peer disconnected (leave, crash detection, or session end).
    PeerDisconnect {
        /// The peer's id.
        peer: u64,
    },
    /// A peer's upstream thread sent (or retried) a complaint after its
    /// parent stopped serving. `attempt` counts from 1 within one repair
    /// episode; episodes that succeed on the first try emit exactly one.
    RepairAttempt {
        /// The complaining peer.
        peer: u64,
        /// The overlay thread whose stream broke.
        thread: u32,
        /// 1-based attempt number within this repair episode.
        attempt: u32,
    },
    /// A peer's upstream thread exhausted its repair policy (deadline or
    /// sliding-window budget) and abandoned the thread — the observable
    /// face of a *permanent* defect. A healthy deployment has zero.
    RepairGaveUp {
        /// The peer that gave up.
        peer: u64,
        /// The abandoned thread.
        thread: u32,
        /// Complaint attempts made in the final episode (0 when the
        /// window budget denied the episode outright).
        attempts: u32,
    },
    /// The coordinator stopped serving (graceful shutdown or kill).
    CoordinatorDown {
        /// Members in the matrix at the moment it went down.
        members: u64,
    },
    /// The coordinator's WAL failed an append, fsync, or checkpoint
    /// build: it is now serving from memory only and recovery will
    /// degrade to the resync path. Emitted once on entry to degraded
    /// mode (never repeated per mutation).
    CoordinatorDegraded {
        /// What failed, human-readable (e.g. `"wal append/sync failed"`).
        reason: String,
    },
    /// A warm standby promoted itself to primary after the primary
    /// stopped answering, taking over the control address with a fenced
    /// id epoch so stale grants cannot collide.
    StandbyPromoted {
        /// The last shipped WAL sequence number the standby had applied.
        seq: u64,
        /// Members in the matrix the promoted coordinator serves.
        members: u64,
    },
    /// The group-commit WAL made one batch of mutations durable with a
    /// single fsync (the whole point of the commit queue).
    BatchCommit {
        /// Mutations in the batch.
        records: u64,
        /// Microseconds spent appending + fsyncing the batch.
        sync_us: u64,
    },
    /// A coordinator finished recovering its matrix state.
    CoordinatorRecovered {
        /// WAL records replayed to rebuild `M` (0 when the WAL was lost).
        replayed: u64,
        /// Rows re-inserted via `Resync` records replayed from the WAL
        /// (post-recovery live resyncs are counted by the
        /// `resynced_rows` counter instead, since they arrive after this
        /// event is emitted).
        resynced: u64,
    },
    /// An amnesiac coordinator re-inserted a row from a peer's resync
    /// report (its thread→parent view), instead of bouncing the peer with
    /// "unknown child" forever.
    PeerResync {
        /// The re-admitted peer.
        peer: u64,
        /// How many threads the resynced row holds.
        threads: u32,
    },
    /// A second source tried to register at a different address while a
    /// session was live; the coordinator refused the hijack.
    SourceRegisterRejected,
    /// A key/value fact about the run environment (e.g. `gf_backend` =
    /// `"avx2"`), recorded once near the start of a trace so analysis can
    /// attribute performance numbers to the data-plane configuration.
    RunInfo {
        /// What the fact describes (snake_case, e.g. `"gf_backend"`).
        key: String,
        /// Its value for this run.
        value: String,
    },
    /// A traced coded packet left a node (source or recoding peer).
    ///
    /// One `HopSend` plus the matching [`Event::HopRecv`] (same
    /// trace/span, recorded by the receiver) is one *hop*; `parent` links
    /// to the span under which this node received the packet it recoded,
    /// so `telemetry::stitch` can walk hop chains back to the source
    /// (whose hops carry [`crate::trace::SOURCE_NODE`] and parent 0).
    HopSend {
        /// Trace id — constant along the packet's whole path.
        trace: u64,
        /// Span id minted for this hop.
        span: u64,
        /// Span under which this node received the recoded-from packet
        /// (0 at the source: a root hop).
        parent: u64,
        /// The sending node ([`crate::trace::SOURCE_NODE`] at the source).
        node: u64,
        /// Generation the packet belongs to.
        generation: u32,
        /// Send time, microseconds since the unix epoch — the recorder's
        /// ms stamp rounds LAN hop latencies to zero.
        t_us: u64,
    },
    /// A traced coded packet arrived at a node; pairs with the
    /// [`Event::HopSend`] carrying the same trace/span.
    HopRecv {
        /// Trace id.
        trace: u64,
        /// Span id of the hop (matches the sender's `HopSend`).
        span: u64,
        /// The receiving node.
        node: u64,
        /// Generation the packet belongs to.
        generation: u32,
        /// Receive time, microseconds since the unix epoch.
        t_us: u64,
    },
    /// A named causal span opened (repair episode, complaint round-trip,
    /// coordinator splice, WAL replay, peer resync, …).
    SpanStart {
        /// Trace id grouping this span tree.
        trace: u64,
        /// This span's id.
        span: u64,
        /// Enclosing span's id (0 for a root span).
        parent: u64,
        /// What the span covers: `"repair"`, `"complain"`, `"splice"`,
        /// `"repair_complete"`, `"resync"`, `"wal_replay"`.
        name: String,
        /// Node the span ran on ([`crate::trace::SOURCE_NODE`] for the
        /// source, the coordinator uses its own label).
        node: u64,
    },
    /// A span closed; pairs with the [`Event::SpanStart`] carrying the
    /// same trace/span. Stitching calls a span tree *closed* when every
    /// started span has its end.
    SpanEnd {
        /// Trace id.
        trace: u64,
        /// The closing span's id.
        span: u64,
        /// Whether the spanned work succeeded.
        ok: bool,
    },
}

impl Event {
    /// The snake_case kind tag used on the wire (`"ev"` field).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Hello { .. } => "hello",
            Event::GoodBye { .. } => "good_bye",
            Event::Complain { .. } => "complain",
            Event::Splice { .. } => "splice",
            Event::RepairComplete { .. } => "repair_complete",
            Event::ThreadDefect { .. } => "thread_defect",
            Event::DefectSample { .. } => "defect_sample",
            Event::PacketInnovative { .. } => "packet_innovative",
            Event::PacketRedundant { .. } => "packet_redundant",
            Event::GenerationComplete { .. } => "generation_complete",
            Event::LinkDrop { .. } => "link_drop",
            Event::PeerConnect { .. } => "peer_connect",
            Event::PeerDisconnect { .. } => "peer_disconnect",
            Event::RepairAttempt { .. } => "repair_attempt",
            Event::RepairGaveUp { .. } => "repair_gave_up",
            Event::CoordinatorDown { .. } => "coordinator_down",
            Event::CoordinatorDegraded { .. } => "coordinator_degraded",
            Event::StandbyPromoted { .. } => "standby_promoted",
            Event::BatchCommit { .. } => "batch_commit",
            Event::CoordinatorRecovered { .. } => "coordinator_recovered",
            Event::PeerResync { .. } => "peer_resync",
            Event::SourceRegisterRejected => "source_register_rejected",
            Event::RunInfo { .. } => "run_info",
            Event::HopSend { .. } => "hop_send",
            Event::HopRecv { .. } => "hop_recv",
            Event::SpanStart { .. } => "span_start",
            Event::SpanEnd { .. } => "span_end",
        }
    }

    /// The overlay node (or peer) id this event is about, when it has
    /// one — the correlation key for per-node trace queries like "show me
    /// everything that happened to node 7".
    #[must_use]
    pub fn node(&self) -> Option<u64> {
        match self {
            Event::Hello { node, .. }
            | Event::GoodBye { node }
            | Event::Complain { node, .. }
            | Event::Splice { node, .. }
            | Event::RepairComplete { node }
            | Event::PacketInnovative { node, .. }
            | Event::PacketRedundant { node, .. }
            | Event::GenerationComplete { node, .. } => Some(*node),
            Event::PeerConnect { peer }
            | Event::PeerDisconnect { peer }
            | Event::RepairAttempt { peer, .. }
            | Event::RepairGaveUp { peer, .. }
            | Event::PeerResync { peer, .. } => Some(*peer),
            Event::HopSend { node, .. }
            | Event::HopRecv { node, .. }
            | Event::SpanStart { node, .. } => Some(*node),
            Event::SpanEnd { .. }
            | Event::ThreadDefect { .. }
            | Event::DefectSample { .. }
            | Event::LinkDrop { .. }
            | Event::CoordinatorDown { .. }
            | Event::CoordinatorDegraded { .. }
            | Event::StandbyPromoted { .. }
            | Event::BatchCommit { .. }
            | Event::CoordinatorRecovered { .. }
            | Event::SourceRegisterRejected
            | Event::RunInfo { .. } => None,
        }
    }

    /// Appends the JSONL form `{"t":at,"ev":"kind",...}` (no trailing
    /// newline) to `out`.
    pub fn write_jsonl(&self, at: u64, out: &mut String) {
        out.push_str("{\"t\":");
        out.push_str(&at.to_string());
        out.push_str(",\"ev\":\"");
        out.push_str(self.kind());
        out.push('"');
        let mut field = |name: &str, value: &str| {
            out.push_str(",\"");
            out.push_str(name);
            out.push_str("\":");
            out.push_str(value);
        };
        match self {
            Event::Hello { node, position, degree } => {
                field("node", &node.to_string());
                field("position", &position.to_string());
                field("degree", &degree.to_string());
            }
            Event::GoodBye { node } => field("node", &node.to_string()),
            Event::Complain { node, complaints } => {
                field("node", &node.to_string());
                field("complaints", &complaints.to_string());
            }
            Event::Splice { node, redirects, cause } => {
                field("node", &node.to_string());
                field("redirects", &redirects.to_string());
                field("cause", &format!("\"{}\"", cause.as_str()));
            }
            Event::RepairComplete { node } => field("node", &node.to_string()),
            Event::ThreadDefect { thread, delta } => {
                field("thread", &thread.to_string());
                field("delta", &delta.to_string());
            }
            Event::DefectSample { defect, tuples } => {
                field("defect", &defect.to_string());
                field("tuples", &tuples.to_string());
            }
            Event::PacketInnovative { node, generation, rank } => {
                field("node", &node.to_string());
                field("generation", &generation.to_string());
                field("rank", &rank.to_string());
            }
            Event::PacketRedundant { node, generation } => {
                field("node", &node.to_string());
                field("generation", &generation.to_string());
            }
            Event::GenerationComplete { node, generation, innovative, redundant } => {
                field("node", &node.to_string());
                field("generation", &generation.to_string());
                field("innovative", &innovative.to_string());
                field("redundant", &redundant.to_string());
            }
            Event::LinkDrop { link, from, to, reason } => {
                field("link", &link.to_string());
                field("from", &from.to_string());
                field("to", &to.to_string());
                field("reason", &format!("\"{}\"", reason.as_str()));
            }
            Event::PeerConnect { peer } => field("peer", &peer.to_string()),
            Event::PeerDisconnect { peer } => field("peer", &peer.to_string()),
            Event::RepairAttempt { peer, thread, attempt } => {
                field("peer", &peer.to_string());
                field("thread", &thread.to_string());
                field("attempt", &attempt.to_string());
            }
            Event::RepairGaveUp { peer, thread, attempts } => {
                field("peer", &peer.to_string());
                field("thread", &thread.to_string());
                field("attempts", &attempts.to_string());
            }
            Event::CoordinatorDown { members } => field("members", &members.to_string()),
            Event::CoordinatorDegraded { reason } => {
                let mut r = String::new();
                json::write_escaped(reason, &mut r);
                field("reason", &r);
            }
            Event::StandbyPromoted { seq, members } => {
                field("seq", &seq.to_string());
                field("members", &members.to_string());
            }
            Event::BatchCommit { records, sync_us } => {
                field("records", &records.to_string());
                field("sync_us", &sync_us.to_string());
            }
            Event::CoordinatorRecovered { replayed, resynced } => {
                field("replayed", &replayed.to_string());
                field("resynced", &resynced.to_string());
            }
            Event::PeerResync { peer, threads } => {
                field("peer", &peer.to_string());
                field("threads", &threads.to_string());
            }
            Event::SourceRegisterRejected => {}
            Event::RunInfo { key, value } => {
                let mut k = String::new();
                json::write_escaped(key, &mut k);
                field("key", &k);
                let mut v = String::new();
                json::write_escaped(value, &mut v);
                field("value", &v);
            }
            Event::HopSend { trace, span, parent, node, generation, t_us } => {
                field("trace", &trace.to_string());
                field("span", &span.to_string());
                field("parent", &parent.to_string());
                field("node", &node.to_string());
                field("generation", &generation.to_string());
                field("t_us", &t_us.to_string());
            }
            Event::HopRecv { trace, span, node, generation, t_us } => {
                field("trace", &trace.to_string());
                field("span", &span.to_string());
                field("node", &node.to_string());
                field("generation", &generation.to_string());
                field("t_us", &t_us.to_string());
            }
            Event::SpanStart { trace, span, parent, name, node } => {
                field("trace", &trace.to_string());
                field("span", &span.to_string());
                field("parent", &parent.to_string());
                let mut n = String::new();
                json::write_escaped(name, &mut n);
                field("name", &n);
                field("node", &node.to_string());
            }
            Event::SpanEnd { trace, span, ok } => {
                field("trace", &trace.to_string());
                field("span", &span.to_string());
                field("ok", if *ok { "true" } else { "false" });
            }
        }
        out.push('}');
    }

    /// Parses one JSONL line back into `(timestamp, Event)`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed lines or unknown
    /// event kinds (traces written by newer versions).
    pub fn parse_jsonl(line: &str) -> Result<(u64, Event), String> {
        let fields = json::parse_flat_object(line)?;
        let at = fields.u64("t")?;
        let kind = fields.str("ev")?;
        let event = match kind {
            "hello" => Event::Hello {
                node: fields.u64("node")?,
                position: fields.u64("position")?,
                degree: fields.u32("degree")?,
            },
            "good_bye" => Event::GoodBye { node: fields.u64("node")? },
            "complain" => Event::Complain {
                node: fields.u64("node")?,
                complaints: fields.u32("complaints")?,
            },
            "splice" => Event::Splice {
                node: fields.u64("node")?,
                redirects: fields.u32("redirects")?,
                cause: SpliceCause::parse(fields.str("cause")?)
                    .ok_or_else(|| format!("unknown splice cause in {line:?}"))?,
            },
            "repair_complete" => Event::RepairComplete { node: fields.u64("node")? },
            "thread_defect" => Event::ThreadDefect {
                thread: fields.u32("thread")?,
                delta: fields.i64("delta")?,
            },
            "defect_sample" => Event::DefectSample {
                defect: fields.u64("defect")?,
                tuples: fields.u64("tuples")?,
            },
            "packet_innovative" => Event::PacketInnovative {
                node: fields.u64("node")?,
                generation: fields.u32("generation")?,
                rank: fields.u32("rank")?,
            },
            "packet_redundant" => Event::PacketRedundant {
                node: fields.u64("node")?,
                generation: fields.u32("generation")?,
            },
            "generation_complete" => Event::GenerationComplete {
                node: fields.u64("node")?,
                generation: fields.u32("generation")?,
                innovative: fields.u64("innovative")?,
                redundant: fields.u64("redundant")?,
            },
            "link_drop" => Event::LinkDrop {
                link: fields.u32("link")?,
                from: fields.u32("from")?,
                to: fields.u32("to")?,
                reason: DropReason::parse(fields.str("reason")?)
                    .ok_or_else(|| format!("unknown drop reason in {line:?}"))?,
            },
            "peer_connect" => Event::PeerConnect { peer: fields.u64("peer")? },
            "peer_disconnect" => Event::PeerDisconnect { peer: fields.u64("peer")? },
            "repair_attempt" => Event::RepairAttempt {
                peer: fields.u64("peer")?,
                thread: fields.u32("thread")?,
                attempt: fields.u32("attempt")?,
            },
            "repair_gave_up" => Event::RepairGaveUp {
                peer: fields.u64("peer")?,
                thread: fields.u32("thread")?,
                attempts: fields.u32("attempts")?,
            },
            "coordinator_down" => Event::CoordinatorDown { members: fields.u64("members")? },
            "coordinator_degraded" => {
                Event::CoordinatorDegraded { reason: fields.str("reason")?.to_string() }
            }
            "standby_promoted" => Event::StandbyPromoted {
                seq: fields.u64("seq")?,
                members: fields.u64("members")?,
            },
            "batch_commit" => Event::BatchCommit {
                records: fields.u64("records")?,
                sync_us: fields.u64("sync_us")?,
            },
            "coordinator_recovered" => Event::CoordinatorRecovered {
                replayed: fields.u64("replayed")?,
                resynced: fields.u64("resynced")?,
            },
            "peer_resync" => Event::PeerResync {
                peer: fields.u64("peer")?,
                threads: fields.u32("threads")?,
            },
            "source_register_rejected" => Event::SourceRegisterRejected,
            "run_info" => Event::RunInfo {
                key: fields.str("key")?.to_string(),
                value: fields.str("value")?.to_string(),
            },
            "hop_send" => Event::HopSend {
                trace: fields.u64("trace")?,
                span: fields.u64("span")?,
                parent: fields.u64("parent")?,
                node: fields.u64("node")?,
                generation: fields.u32("generation")?,
                t_us: fields.u64("t_us")?,
            },
            "hop_recv" => Event::HopRecv {
                trace: fields.u64("trace")?,
                span: fields.u64("span")?,
                node: fields.u64("node")?,
                generation: fields.u32("generation")?,
                t_us: fields.u64("t_us")?,
            },
            "span_start" => Event::SpanStart {
                trace: fields.u64("trace")?,
                span: fields.u64("span")?,
                parent: fields.u64("parent")?,
                name: fields.str("name")?.to_string(),
                node: fields.u64("node")?,
            },
            "span_end" => Event::SpanEnd {
                trace: fields.u64("trace")?,
                span: fields.u64("span")?,
                ok: fields.bool("ok")?,
            },
            other => return Err(format!("unknown event kind {other:?}")),
        };
        Ok((at, event))
    }
}

/// Typed field access over a parsed flat object.
impl json::FlatObject {
    fn get(&self, key: &str) -> Result<&JsonValue, String> {
        self.fields
            .get(key)
            .ok_or_else(|| format!("missing field {key:?}"))
    }

    fn u64(&self, key: &str) -> Result<u64, String> {
        match self.get(key)? {
            JsonValue::Int(i) if *i >= 0 => Ok(*i as u64),
            v => Err(format!("field {key:?} is not a u64: {v:?}")),
        }
    }

    fn u32(&self, key: &str) -> Result<u32, String> {
        u32::try_from(self.u64(key)?).map_err(|_| format!("field {key:?} overflows u32"))
    }

    fn i64(&self, key: &str) -> Result<i64, String> {
        match self.get(key)? {
            JsonValue::Int(i) => Ok(*i),
            v => Err(format!("field {key:?} is not an i64: {v:?}")),
        }
    }

    fn str(&self, key: &str) -> Result<&str, String> {
        match self.get(key)? {
            JsonValue::Str(s) => Ok(s),
            v => Err(format!("field {key:?} is not a string: {v:?}")),
        }
    }

    fn bool(&self, key: &str) -> Result<bool, String> {
        match self.get(key)? {
            JsonValue::Bool(b) => Ok(*b),
            v => Err(format!("field {key:?} is not a bool: {v:?}")),
        }
    }
}

/// One sample of **every** `Event` variant, for round-trip tests.
///
/// The closure at the end is an exhaustive match with no wildcard: adding
/// a variant fails compilation here until a sample is added, which is
/// what keeps the replay round-trip suite honest.
#[cfg(test)]
pub(crate) fn sample_of_every_variant() -> Vec<Event> {
    let samples = vec![
        Event::Hello { node: 1, position: 0, degree: 2 },
        Event::GoodBye { node: 2 },
        Event::Complain { node: 3, complaints: 2 },
        Event::Splice { node: 3, redirects: 2, cause: SpliceCause::Repair },
        Event::Splice { node: 4, redirects: 3, cause: SpliceCause::Leave },
        Event::RepairComplete { node: 3 },
        Event::ThreadDefect { thread: 5, delta: -1 },
        Event::DefectSample { defect: 12, tuples: 66 },
        Event::PacketInnovative { node: 9, generation: 1, rank: 4 },
        Event::PacketRedundant { node: 9, generation: 1 },
        Event::GenerationComplete { node: 9, generation: 1, innovative: 4, redundant: 2 },
        Event::LinkDrop { link: 7, from: 0, to: 4, reason: DropReason::Loss },
        Event::LinkDrop { link: 8, from: 1, to: 5, reason: DropReason::Capacity },
        Event::PeerConnect { peer: 11 },
        Event::PeerDisconnect { peer: 11 },
        Event::RepairAttempt { peer: 11, thread: 3, attempt: 2 },
        Event::RepairGaveUp { peer: 11, thread: 3, attempts: 5 },
        Event::CoordinatorDown { members: 12 },
        Event::CoordinatorDegraded { reason: "wal append/sync failed".into() },
        Event::StandbyPromoted { seq: 17, members: 6 },
        Event::BatchCommit { records: 9, sync_us: 1800 },
        Event::CoordinatorRecovered { replayed: 40, resynced: 3 },
        Event::PeerResync { peer: 6, threads: 2 },
        Event::SourceRegisterRejected,
        Event::RunInfo { key: "gf_backend".into(), value: "avx2".into() },
        Event::RunInfo { key: "quoted".into(), value: "a \"b\" \\ c".into() },
        Event::HopSend {
            trace: u64::MAX >> 1,
            span: 77,
            parent: 0,
            node: crate::trace::SOURCE_NODE,
            generation: 3,
            t_us: 1_700_000_000_123_456,
        },
        Event::HopRecv { trace: 42, span: 77, node: 5, generation: 3, t_us: 1_700_000_000_123_999 },
        Event::SpanStart { trace: 42, span: 80, parent: 77, name: "repair".into(), node: 5 },
        Event::SpanEnd { trace: 42, span: 80, ok: true },
        Event::SpanEnd { trace: 42, span: 81, ok: false },
    ];
    let _covered = |e: &Event| match e {
        Event::Hello { .. }
        | Event::GoodBye { .. }
        | Event::Complain { .. }
        | Event::Splice { .. }
        | Event::RepairComplete { .. }
        | Event::ThreadDefect { .. }
        | Event::DefectSample { .. }
        | Event::PacketInnovative { .. }
        | Event::PacketRedundant { .. }
        | Event::GenerationComplete { .. }
        | Event::LinkDrop { .. }
        | Event::PeerConnect { .. }
        | Event::PeerDisconnect { .. }
        | Event::RepairAttempt { .. }
        | Event::RepairGaveUp { .. }
        | Event::CoordinatorDown { .. }
        | Event::CoordinatorDegraded { .. }
        | Event::StandbyPromoted { .. }
        | Event::BatchCommit { .. }
        | Event::CoordinatorRecovered { .. }
        | Event::PeerResync { .. }
        | Event::SourceRegisterRejected
        | Event::RunInfo { .. }
        | Event::HopSend { .. }
        | Event::HopRecv { .. }
        | Event::SpanStart { .. }
        | Event::SpanEnd { .. } => (),
    };
    samples
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_events() -> Vec<Event> {
        sample_of_every_variant()
    }

    #[test]
    fn jsonl_round_trips_every_variant() {
        for (i, event) in all_events().into_iter().enumerate() {
            let mut line = String::new();
            event.write_jsonl(i as u64 * 10, &mut line);
            let (at, back) = Event::parse_jsonl(&line).expect(&line);
            assert_eq!(at, i as u64 * 10);
            assert_eq!(back, event, "line: {line}");
        }
    }

    #[test]
    fn wire_form_is_stable() {
        let mut line = String::new();
        Event::Hello { node: 7, position: 3, degree: 2 }.write_jsonl(42, &mut line);
        assert_eq!(line, r#"{"t":42,"ev":"hello","node":7,"position":3,"degree":2}"#);
        let mut line = String::new();
        Event::ThreadDefect { thread: 1, delta: -1 }.write_jsonl(9, &mut line);
        assert_eq!(line, r#"{"t":9,"ev":"thread_defect","thread":1,"delta":-1}"#);
        let mut line = String::new();
        Event::HopSend { trace: 5, span: 6, parent: 0, node: 7, generation: 2, t_us: 99 }
            .write_jsonl(1, &mut line);
        assert_eq!(
            line,
            r#"{"t":1,"ev":"hop_send","trace":5,"span":6,"parent":0,"node":7,"generation":2,"t_us":99}"#
        );
        let mut line = String::new();
        Event::SpanEnd { trace: 5, span: 6, ok: false }.write_jsonl(2, &mut line);
        assert_eq!(line, r#"{"t":2,"ev":"span_end","trace":5,"span":6,"ok":false}"#);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Event::parse_jsonl("not json").is_err());
        assert!(Event::parse_jsonl(r#"{"t":1,"ev":"wat"}"#).is_err());
        assert!(Event::parse_jsonl(r#"{"t":1,"ev":"hello"}"#).is_err(), "missing fields");
        assert!(Event::parse_jsonl(r#"{"ev":"good_bye","node":1}"#).is_err(), "missing t");
    }

    #[test]
    fn negative_delta_round_trips() {
        let mut line = String::new();
        Event::ThreadDefect { thread: 0, delta: -123 }.write_jsonl(0, &mut line);
        let (_, e) = Event::parse_jsonl(&line).unwrap();
        assert_eq!(e, Event::ThreadDefect { thread: 0, delta: -123 });
    }
}
