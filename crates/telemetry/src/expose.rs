//! Live metrics/health exposition: a zero-dependency blocking HTTP
//! listener serving Prometheus-style `/metrics` text and a `/health`
//! JSON document.
//!
//! Each long-running process (coordinator, peer, source) can opt in with
//! a `--metrics <addr>` flag: one background thread accepts scrape
//! connections, renders the process's [`MetricsRegistry`] — counters,
//! gauges, and histogram summaries with p50/p95/p99 quantiles — and a
//! caller-supplied health callback. The listener speaks just enough
//! HTTP/1.1 for `curl` and Prometheus: `GET`, `Connection: close`, one
//! request per connection. That keeps the dependency budget at zero
//! (this crate is std-only by design) while staying scrapable by real
//! tooling.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::json;
use crate::metrics::{MetricsRegistry, MetricsSnapshot};

/// How long a scraper may dawdle before its connection is dropped.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(2);

/// Largest request head (request line + headers) we will buffer.
const MAX_REQUEST: usize = 8 * 1024;

/// A running exposition endpoint; dropping it stops the listener.
///
/// Serves:
///
/// * `GET /metrics` — Prometheus text: counters, gauges, and histograms
///   as summaries (`{quantile="0.5|0.95|0.99"}`, `_sum`, `_count`,
///   `_min`, `_max`);
/// * `GET /health` — the JSON document produced by the health callback;
/// * `GET /` — a plain-text index of the above.
pub struct ExposeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ExposeServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExposeServer").field("addr", &self.addr).finish_non_exhaustive()
    }
}

impl ExposeServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts serving `metrics`
    /// snapshots and `health()` documents on a background thread.
    ///
    /// The health callback runs on the listener thread once per
    /// `/health` request; it should return a complete JSON document and
    /// must not block on locks the protocol hot path holds for long.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(
        addr: impl ToSocketAddrs,
        metrics: MetricsRegistry,
        health: impl Fn() -> String + Send + Sync + 'static,
    ) -> io::Result<ExposeServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name(format!("expose-{}", addr.port()))
            .spawn(move || accept_loop(&listener, &stop2, &metrics, &health))
            .expect("spawn exposition thread");
        Ok(ExposeServer { addr, stop, handle: Some(handle) })
    }

    /// The bound address (resolves port 0 to the real port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener and joins its thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ExposeServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(
    listener: &TcpListener,
    stop: &AtomicBool,
    metrics: &MetricsRegistry,
    health: &(impl Fn() -> String + ?Sized),
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Scrapes are rare and tiny; serve inline with timeouts
                // so a wedged client cannot hold the thread forever.
                let _ = serve_one(stream, metrics, health);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn serve_one(
    mut stream: TcpStream,
    metrics: &MetricsRegistry,
    health: &(impl Fn() -> String + ?Sized),
) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
    let request = read_request_head(&mut stream)?;
    let (method, path) = parse_request_line(&request);
    if method != "GET" {
        return respond(&mut stream, "405 Method Not Allowed", "text/plain", "GET only\n");
    }
    match path {
        "/metrics" => {
            let body = render_prometheus(&metrics.snapshot());
            respond(&mut stream, "200 OK", "text/plain; version=0.0.4", &body)
        }
        "/health" => {
            let mut body = health();
            if !body.ends_with('\n') {
                body.push('\n');
            }
            respond(&mut stream, "200 OK", "application/json", &body)
        }
        "/" => respond(
            &mut stream,
            "200 OK",
            "text/plain",
            "curtain exposition endpoints:\n  /metrics\n  /health\n",
        ),
        _ => respond(&mut stream, "404 Not Found", "text/plain", "not found\n"),
    }
}

/// Reads bytes until the blank line ending the request head (we ignore
/// bodies: every served route is a GET).
fn read_request_head(stream: &mut TcpStream) -> io::Result<String> {
    let mut buf = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while buf.len() < MAX_REQUEST {
        match stream.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                buf.push(byte[0]);
                if buf.ends_with(b"\r\n\r\n") || buf.ends_with(b"\n\n") {
                    break;
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

fn parse_request_line(request: &str) -> (&str, &str) {
    let line = request.lines().next().unwrap_or("");
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("/");
    // Strip any query string: `/metrics?foo=1` scrapes `/metrics`.
    (method, path.split('?').next().unwrap_or(path))
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Renders a snapshot in the Prometheus text exposition format.
///
/// Counters and gauges map directly; each histogram becomes a summary
/// with p50/p95/p99 quantile samples plus `_sum`/`_count`/`_min`/`_max`.
/// Metric names are sanitized to the `[a-zA-Z_:][a-zA-Z0-9_:]*` charset.
#[must_use]
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(1024);
    for (name, value) in &snapshot.counters {
        let name = sanitize_metric_name(name);
        out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
    }
    for (name, value) in &snapshot.gauges {
        let name = sanitize_metric_name(name);
        let mut v = String::new();
        json::write_f64(*value, &mut v);
        out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
    }
    for (name, h) in &snapshot.histograms {
        let name = sanitize_metric_name(name);
        out.push_str(&format!("# TYPE {name} summary\n"));
        for (label, q) in [("0.5", h.p50()), ("0.95", h.p95()), ("0.99", h.p99())] {
            let mut v = String::new();
            json::write_f64(q, &mut v);
            out.push_str(&format!("{name}{{quantile=\"{label}\"}} {v}\n"));
        }
        let mut sum = String::new();
        json::write_f64(h.sum, &mut sum);
        out.push_str(&format!("{name}_sum {sum}\n{name}_count {}\n", h.count));
        let mut lo = String::new();
        json::write_f64(h.min, &mut lo);
        let mut hi = String::new();
        json::write_f64(h.max, &mut hi);
        out.push_str(&format!("{name}_min {lo}\n{name}_max {hi}\n"));
    }
    out
}

fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic()
            || c == '_'
            || c == ':'
            || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() { "_".into() } else { out }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_health_index_and_404() {
        let metrics = MetricsRegistry::new();
        metrics.counter("packets_innovative", 41);
        metrics.gauge("decode_rank", 7.0);
        for v in [1.0, 2.0, 300.0] {
            metrics.histogram("repair latency-ms", v);
        }
        let server =
            ExposeServer::bind("127.0.0.1:0", metrics.clone(), || r#"{"ok":true}"#.to_string())
                .unwrap();
        let addr = server.addr();

        let (head, body) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("packets_innovative 41"), "{body}");
        assert!(body.contains("decode_rank 7"), "{body}");
        // Name sanitized, summary quantiles present.
        assert!(body.contains("repair_latency_ms{quantile=\"0.5\"}"), "{body}");
        assert!(body.contains("repair_latency_ms_count 3"), "{body}");

        // Metrics recorded after bind show up on the next scrape.
        metrics.counter("packets_innovative", 1);
        let (_, body) = http_get(addr, "/metrics?format=prometheus");
        assert!(body.contains("packets_innovative 42"), "{body}");

        let (head, body) = http_get(addr, "/health");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("application/json"), "{head}");
        assert_eq!(body, "{\"ok\":true}\n");

        let (head, body) = http_get(addr, "/");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("/metrics"), "{body}");

        let (head, _) = http_get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        server.shutdown();
    }

    #[test]
    fn non_get_is_rejected_and_drop_stops_listener() {
        let server = ExposeServer::bind("127.0.0.1:0", MetricsRegistry::new(), || "{}".into())
            .unwrap();
        let addr = server.addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"POST /metrics HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
        drop(server); // must not hang joining the accept loop
    }

    #[test]
    fn sanitizes_awkward_names() {
        assert_eq!(sanitize_metric_name("recode_ns"), "recode_ns");
        assert_eq!(sanitize_metric_name("9lives"), "_lives");
        assert_eq!(sanitize_metric_name("a b/c-d"), "a_b_c_d");
        assert_eq!(sanitize_metric_name(""), "_");
    }

    #[test]
    fn prometheus_rendering_shape() {
        let m = MetricsRegistry::new();
        m.counter("c", 1);
        m.gauge("g", 2.5);
        m.histogram("h", 8.0);
        let text = render_prometheus(&m.snapshot());
        assert!(text.contains("# TYPE c counter\nc 1\n"), "{text}");
        assert!(text.contains("# TYPE g gauge\ng 2.5\n"), "{text}");
        assert!(text.contains("# TYPE h summary\n"), "{text}");
        assert!(text.contains("h_count 1\n"), "{text}");
        assert!(text.contains("h_sum 8.0\n"), "{text}");
    }
}
