//! Causal trace identity: trace/span ids, child-span derivation, and the
//! 16-byte wire form frames carry across process boundaries.
//!
//! A [`TraceContext`] names one causal chain (`trace`) and one link in it
//! (`span`). The source mints a root context at packet birth; every peer
//! that recodes-and-forwards derives a *child* span under the same trace
//! id, so a packet's journey source → peer → … → peer is a chain of spans
//! sharing a trace id and linked by parent pointers recorded in
//! [`crate::Event::HopSend`]. Repair episodes reuse the same machinery:
//! the complaining peer mints a root context for the episode and the
//! complain/splice/repair-complete steps hang off it as child spans
//! ([`crate::Event::SpanStart`] / [`crate::Event::SpanEnd`]).
//!
//! Ids are 63-bit (the high bit is always clear) so they survive the
//! JSONL schema, whose integers are `i64`. They are minted from a
//! per-process splitmix64 stream seeded with wall-clock nanoseconds and
//! the process id, which makes collisions across the handful of processes
//! in one broadcast run vanishingly unlikely without any coordination.

use std::sync::OnceLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Sentinel node label the origin source uses in hop events.
///
/// Real overlay node ids are small coordinator-granted integers; the
/// source is not a member of the matrix, so it labels its hop events with
/// this reserved value. Stitching treats a chain as *complete* exactly
/// when walking parent links reaches a hop sent by `SOURCE_NODE`.
/// The value fits in an `i64`, which the JSONL schema requires.
pub const SOURCE_NODE: u64 = u64::MAX >> 1;

/// Sentinel node label the coordinator uses in span events.
///
/// Like [`SOURCE_NODE`], the coordinator is not a matrix member, so its
/// splice/resync/WAL-replay spans carry this reserved label instead of a
/// granted node id. One below [`SOURCE_NODE`], still `i64`-safe.
pub const COORDINATOR_NODE: u64 = (u64::MAX >> 1) - 1;

/// Parent-span value meaning "no parent" (a root span).
pub const NO_PARENT: u64 = 0;

/// A causal context: one trace id plus the current span within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Identifies the whole causal chain (constant along a packet's path).
    pub trace: u64,
    /// Identifies this hop/step within the chain.
    pub span: u64,
}

impl TraceContext {
    /// Bytes of the wire form: `[trace u64 LE][span u64 LE]`.
    pub const WIRE_LEN: usize = 16;

    /// Mints a fresh root context (new trace id, new span id).
    #[must_use]
    pub fn root() -> Self {
        TraceContext { trace: fresh_id(), span: fresh_id() }
    }

    /// Derives a child context: same trace, fresh span.
    ///
    /// The parent linkage is *not* stored here — the emitter records it in
    /// the corresponding [`crate::Event::HopSend`] / `SpanStart` event, so
    /// the wire form stays a fixed 16 bytes however deep the chain gets.
    #[must_use]
    pub fn child(&self) -> Self {
        TraceContext { trace: self.trace, span: fresh_id() }
    }

    /// Encodes as `[trace u64 LE][span u64 LE]`.
    #[must_use]
    pub fn to_wire(&self) -> [u8; Self::WIRE_LEN] {
        let mut out = [0u8; Self::WIRE_LEN];
        out[..8].copy_from_slice(&self.trace.to_le_bytes());
        out[8..].copy_from_slice(&self.span.to_le_bytes());
        out
    }

    /// Decodes the wire form written by [`TraceContext::to_wire`].
    #[must_use]
    pub fn from_wire(bytes: &[u8; Self::WIRE_LEN]) -> Self {
        let mut trace = [0u8; 8];
        let mut span = [0u8; 8];
        trace.copy_from_slice(&bytes[..8]);
        span.copy_from_slice(&bytes[8..]);
        TraceContext { trace: u64::from_le_bytes(trace), span: u64::from_le_bytes(span) }
    }
}

/// Mints a process-unique 63-bit id (never 0, high bit always clear).
///
/// Splitmix64 over an atomic counter whose seed folds in wall-clock
/// nanoseconds and the process id, so ids minted by different processes
/// of one run do not collide in practice.
#[must_use]
pub fn fresh_id() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    static SEED: OnceLock<u64> = OnceLock::new();
    let seed = *SEED.get_or_init(|| {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        nanos ^ (u64::from(std::process::id()).rotate_left(32))
    });
    loop {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(seed.wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
            & (u64::MAX >> 1);
        if id != 0 {
            return id;
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Microseconds since the unix epoch.
///
/// Hop events carry this alongside the recorder's millisecond stamp
/// because per-hop latencies on a LAN are routinely sub-millisecond; the
/// ms-resolution trace clock would round them all to 0.
#[must_use]
pub fn wall_micros() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_unique_nonzero_and_i64_safe() {
        let mut seen = HashSet::new();
        for _ in 0..10_000 {
            let id = fresh_id();
            assert_ne!(id, 0);
            assert!(id <= u64::MAX >> 1, "id {id:#x} would overflow i64");
            assert!(seen.insert(id), "duplicate id {id:#x}");
        }
    }

    #[test]
    fn ids_are_unique_across_threads() {
        let handles: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(|| (0..1000).map(|_| fresh_id()).collect::<Vec<_>>()))
            .collect();
        let mut seen = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(seen.insert(id), "duplicate id across threads");
            }
        }
    }

    #[test]
    fn child_keeps_trace_and_changes_span() {
        let root = TraceContext::root();
        let child = root.child();
        assert_eq!(child.trace, root.trace);
        assert_ne!(child.span, root.span);
    }

    #[test]
    fn wire_round_trips() {
        let ctx = TraceContext { trace: 0x0123_4567_89ab_cdef, span: 0x0fed_cba9_8765_4321 };
        let wire = ctx.to_wire();
        assert_eq!(wire.len(), TraceContext::WIRE_LEN);
        assert_eq!(TraceContext::from_wire(&wire), ctx);
        // Little-endian layout is part of the frame format.
        assert_eq!(wire[0], 0xef);
        assert_eq!(wire[8], 0x21);
    }

    #[test]
    fn sentinel_nodes_fit_i64_and_are_distinct() {
        assert!(i64::try_from(SOURCE_NODE).is_ok());
        assert!(i64::try_from(COORDINATOR_NODE).is_ok());
        assert_ne!(SOURCE_NODE, COORDINATOR_NODE);
    }

    #[test]
    fn wall_micros_is_recent() {
        // After 2020-01-01 in unix-µs terms.
        assert!(wall_micros() > 1_577_836_800_000_000);
    }
}
