//! A deliberately small hand-rolled JSON layer, kept dependency-free.
//!
//! Two tiers share one tokenizer:
//!
//! * [`parse_flat_object`] — the trace schema's strict subset: one flat
//!   object of scalars, no nesting, no arrays. The JSONL wire format is
//!   *promised* to stay in this subset, so replay never needs more.
//! * [`parse_document`] — full nested values (objects, arrays, scalars),
//!   for consumers whose artifacts outgrow flat lines: `curtain-lab`'s
//!   result cache and `BENCH_*.json` reports parse with this.
//!
//! Writing is compositional: [`write_escaped`] / [`write_f64`] for callers
//! that hand-build lines (the hot trace path allocates nothing per field),
//! and [`JsonValue::write`] / [`JsonValue::render`] for tree-shaped
//! documents. Object keys are `BTreeMap`-ordered, so rendering the same
//! tree always yields the same bytes — the property `curtain-lab` leans on
//! for byte-identical reports.

use std::collections::BTreeMap;

/// Maximum nesting depth [`parse_document`] accepts; deeper input is a
/// parse error rather than a stack overflow.
const MAX_DEPTH: usize = 128;

/// A parsed JSON value.
///
/// The flat tier ([`parse_flat_object`]) only ever produces the scalar
/// variants; `Array` and `Object` appear in [`parse_document`] trees.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// An integer (no fraction or exponent in the source text).
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// `true` or `false`.
    Bool(bool),
    /// `null`.
    Null,
    /// An ordered sequence of values.
    Array(Vec<JsonValue>),
    /// A key-sorted object (duplicate keys: last wins).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The integer value, if this is an `Int`.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The non-negative integer value, if this is a non-negative `Int`.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The numeric value: `Float`s as-is, `Int`s widened.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Float(f) => Some(*f),
            JsonValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The string value, if this is a `Str`.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a `Bool`.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an `Array`.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The field map, if this is an `Object`.
    #[must_use]
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Looks up `key`, if this is an `Object`.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object().and_then(|fields| fields.get(key))
    }

    /// Appends this value's canonical JSON form to `out`: object keys in
    /// `BTreeMap` order, floats via [`write_f64`], no whitespace. The same
    /// tree always renders to the same bytes.
    pub fn write(&self, out: &mut String) {
        match self {
            JsonValue::Int(i) => out.push_str(&i.to_string()),
            JsonValue::Float(f) => write_f64(*f, out),
            JsonValue::Str(s) => write_escaped(s, out),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Null => out.push_str("null"),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// The canonical single-line JSON text (see [`JsonValue::write`]).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Multi-line JSON with two-space indentation — same canonical
    /// ordering as [`JsonValue::write`], for artifacts meant to be read
    /// by humans (reports, CI uploads). Still deterministic.
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(0, &mut out);
        out
    }

    fn write_pretty(&self, indent: usize, out: &mut String) {
        match self {
            JsonValue::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(indent + 1, out);
                    item.write_pretty(indent + 1, out);
                }
                out.push('\n');
                push_indent(indent, out);
                out.push(']');
            }
            JsonValue::Object(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(indent + 1, out);
                    write_escaped(key, out);
                    out.push_str(": ");
                    value.write_pretty(indent + 1, out);
                }
                out.push('\n');
                push_indent(indent, out);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn push_indent(levels: usize, out: &mut String) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

/// A parsed flat JSON object (string keys, scalar values).
#[derive(Debug, Clone, Default)]
pub struct FlatObject {
    /// Field map; insertion order is irrelevant to the schema.
    pub fields: BTreeMap<String, JsonValue>,
}

/// Appends `s` as a JSON string literal (with quotes) to `out`.
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f64` in JSON form (`null` for non-finite values).
pub fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let s = format!("{v}");
        out.push_str(&s);
        // `{}` prints integral floats without a dot; keep them floats on
        // the wire so round-tripping preserves the type.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

/// Parses one complete JSON document of any shape (nested objects,
/// arrays, scalars), e.g. a `curtain-lab` cache entry or `BENCH_*.json`
/// report.
///
/// # Errors
///
/// Returns a human-readable message on any syntax error, trailing
/// garbage, or nesting deeper than an internal sanity cap.
pub fn parse_document(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.parse_tree_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

/// Parses one flat JSON object, e.g. `{"t":3,"ev":"hello","node":1}`.
///
/// # Errors
///
/// Returns a human-readable message on any syntax error, nesting, or
/// trailing garbage.
pub fn parse_flat_object(input: &str) -> Result<FlatObject, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    p.expect(b'{')?;
    let mut fields = BTreeMap::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.parse_value()?;
            fields.insert(key, value);
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(FlatObject { fields })
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected {:?}, got {other:?}", want as char)),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.next().ok_or("truncated \\u escape")?;
                            code = code * 16
                                + (d as char).to_digit(16).ok_or("bad \\u escape")?;
                        }
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "bad utf-8 in string")?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    /// Scalar values only — the flat tier. `{` and `[` are errors here,
    /// which is what keeps [`parse_flat_object`] rejecting nesting.
    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_keyword("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_keyword("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(format!("unexpected value start {other:?}")),
        }
    }

    /// Any value, recursing into objects and arrays — the
    /// [`parse_document`] tier.
    fn parse_tree_value(&mut self, depth: usize) -> Result<JsonValue, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'{') => {
                self.pos += 1;
                let mut fields = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_tree_value(depth + 1)?;
                    fields.insert(key, value);
                    self.skip_ws();
                    match self.next() {
                        Some(b',') => continue,
                        Some(b'}') => return Ok(JsonValue::Object(fields)),
                        other => return Err(format!("expected ',' or '}}', got {other:?}")),
                    }
                }
            }
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_tree_value(depth + 1)?);
                    self.skip_ws();
                    match self.next() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(JsonValue::Array(items)),
                        other => return Err(format!("expected ',' or ']', got {other:?}")),
                    }
                }
            }
            _ => self.parse_value(),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad keyword at byte {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            text.parse::<f64>()
                .map(JsonValue::Float)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        } else {
            text.parse::<i64>()
                .map(JsonValue::Int)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mixed_flat_object() {
        let obj =
            parse_flat_object(r#"{"a":1,"b":-2,"c":"hi","d":true,"e":1.5,"f":null}"#).unwrap();
        assert_eq!(obj.fields["a"], JsonValue::Int(1));
        assert_eq!(obj.fields["b"], JsonValue::Int(-2));
        assert_eq!(obj.fields["c"], JsonValue::Str("hi".into()));
        assert_eq!(obj.fields["d"], JsonValue::Bool(true));
        assert_eq!(obj.fields["e"], JsonValue::Float(1.5));
        assert_eq!(obj.fields["f"], JsonValue::Null);
    }

    #[test]
    fn parses_empty_object_and_whitespace() {
        assert!(parse_flat_object("{}").unwrap().fields.is_empty());
        let obj = parse_flat_object(" { \"k\" : 7 } ").unwrap();
        assert_eq!(obj.fields["k"], JsonValue::Int(7));
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}f→g";
        let mut line = String::from("{");
        write_escaped("k", &mut line);
        line.push(':');
        write_escaped(nasty, &mut line);
        line.push('}');
        let obj = parse_flat_object(&line).unwrap();
        assert_eq!(obj.fields["k"], JsonValue::Str(nasty.into()));
    }

    #[test]
    fn rejects_trailing_garbage_and_nesting() {
        assert!(parse_flat_object(r#"{"a":1}x"#).is_err());
        assert!(parse_flat_object(r#"{"a":{"b":1}}"#).is_err());
        assert!(parse_flat_object(r#"{"a":[1]}"#).is_err());
        assert!(parse_flat_object("").is_err());
    }

    #[test]
    fn document_parses_nested_values() {
        let doc = parse_document(
            r#"{"exp":"e01","points":[{"params":{"d":2,"p":0.02},"mean":0.041}],"ok":true}"#,
        )
        .unwrap();
        assert_eq!(doc.get("exp").and_then(JsonValue::as_str), Some("e01"));
        let points = doc.get("points").and_then(JsonValue::as_array).unwrap();
        let params = points[0].get("params").unwrap();
        assert_eq!(params.get("d").and_then(JsonValue::as_i64), Some(2));
        assert_eq!(params.get("p").and_then(JsonValue::as_f64), Some(0.02));
        assert_eq!(points[0].get("mean").and_then(JsonValue::as_f64), Some(0.041));
        assert_eq!(doc.get("ok").and_then(JsonValue::as_bool), Some(true));
    }

    #[test]
    fn document_render_round_trips_canonically() {
        let doc = parse_document(r#" { "b" : [ 1 , 2.5 , "x" ] , "a" : null } "#).unwrap();
        // Canonical: key-sorted, no whitespace, floats kept floats.
        assert_eq!(doc.render(), r#"{"a":null,"b":[1,2.5,"x"]}"#);
        // Rendering is a fixed point.
        assert_eq!(parse_document(&doc.render()).unwrap().render(), doc.render());
        // Pretty form parses back to the same tree.
        assert_eq!(parse_document(&doc.render_pretty()).unwrap(), doc);
    }

    #[test]
    fn document_rejects_garbage_and_absurd_nesting() {
        assert!(parse_document("").is_err());
        assert!(parse_document("[1,]").is_err());
        assert!(parse_document(r#"{"a":1}x"#).is_err());
        let deep = format!("{}1{}", "[".repeat(200), "]".repeat(200));
        assert!(parse_document(&deep).unwrap_err().contains("nesting"));
    }

    #[test]
    fn value_accessors() {
        assert_eq!(JsonValue::Int(-3).as_i64(), Some(-3));
        assert_eq!(JsonValue::Int(-3).as_u64(), None);
        assert_eq!(JsonValue::Int(3).as_u64(), Some(3));
        assert_eq!(JsonValue::Int(3).as_f64(), Some(3.0));
        assert_eq!(JsonValue::Str("s".into()).as_f64(), None);
        assert_eq!(JsonValue::Null.get("k"), None);
    }

    #[test]
    fn float_writer_marks_integral_floats() {
        let mut s = String::new();
        write_f64(3.0, &mut s);
        assert_eq!(s, "3.0");
        let mut s = String::new();
        write_f64(f64::NAN, &mut s);
        assert_eq!(s, "null");
    }
}
