//! A deliberately tiny JSON subset: flat objects of ints, floats, strings
//! and bools — exactly what the trace schema and metrics snapshots use.
//!
//! Hand-rolled so the telemetry crate stays dependency-free; this is *not*
//! a general JSON parser (no nesting, no arrays) and is only promised to
//! round-trip what this crate itself writes.

use std::collections::BTreeMap;

/// A parsed JSON scalar.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// An integer (no fraction or exponent in the source text).
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// `true` or `false`.
    Bool(bool),
    /// `null`.
    Null,
}

/// A parsed flat JSON object (string keys, scalar values).
#[derive(Debug, Clone, Default)]
pub struct FlatObject {
    /// Field map; insertion order is irrelevant to the schema.
    pub fields: BTreeMap<String, JsonValue>,
}

/// Appends `s` as a JSON string literal (with quotes) to `out`.
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f64` in JSON form (`null` for non-finite values).
pub fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let s = format!("{v}");
        out.push_str(&s);
        // `{}` prints integral floats without a dot; keep them floats on
        // the wire so round-tripping preserves the type.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

/// Parses one flat JSON object, e.g. `{"t":3,"ev":"hello","node":1}`.
///
/// # Errors
///
/// Returns a human-readable message on any syntax error, nesting, or
/// trailing garbage.
pub fn parse_flat_object(input: &str) -> Result<FlatObject, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    p.expect(b'{')?;
    let mut fields = BTreeMap::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.parse_value()?;
            fields.insert(key, value);
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(FlatObject { fields })
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected {:?}, got {other:?}", want as char)),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.next().ok_or("truncated \\u escape")?;
                            code = code * 16
                                + (d as char).to_digit(16).ok_or("bad \\u escape")?;
                        }
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "bad utf-8 in string")?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_keyword("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_keyword("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(format!("unexpected value start {other:?}")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad keyword at byte {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            text.parse::<f64>()
                .map(JsonValue::Float)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        } else {
            text.parse::<i64>()
                .map(JsonValue::Int)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mixed_flat_object() {
        let obj =
            parse_flat_object(r#"{"a":1,"b":-2,"c":"hi","d":true,"e":1.5,"f":null}"#).unwrap();
        assert_eq!(obj.fields["a"], JsonValue::Int(1));
        assert_eq!(obj.fields["b"], JsonValue::Int(-2));
        assert_eq!(obj.fields["c"], JsonValue::Str("hi".into()));
        assert_eq!(obj.fields["d"], JsonValue::Bool(true));
        assert_eq!(obj.fields["e"], JsonValue::Float(1.5));
        assert_eq!(obj.fields["f"], JsonValue::Null);
    }

    #[test]
    fn parses_empty_object_and_whitespace() {
        assert!(parse_flat_object("{}").unwrap().fields.is_empty());
        let obj = parse_flat_object(" { \"k\" : 7 } ").unwrap();
        assert_eq!(obj.fields["k"], JsonValue::Int(7));
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}f→g";
        let mut line = String::from("{");
        write_escaped("k", &mut line);
        line.push(':');
        write_escaped(nasty, &mut line);
        line.push('}');
        let obj = parse_flat_object(&line).unwrap();
        assert_eq!(obj.fields["k"], JsonValue::Str(nasty.into()));
    }

    #[test]
    fn rejects_trailing_garbage_and_nesting() {
        assert!(parse_flat_object(r#"{"a":1}x"#).is_err());
        assert!(parse_flat_object(r#"{"a":{"b":1}}"#).is_err());
        assert!(parse_flat_object(r#"{"a":[1]}"#).is_err());
        assert!(parse_flat_object("").is_err());
    }

    #[test]
    fn float_writer_marks_integral_floats() {
        let mut s = String::new();
        write_f64(3.0, &mut s);
        assert_eq!(s, "3.0");
        let mut s = String::new();
        write_f64(f64::NAN, &mut s);
        assert_eq!(s, "null");
    }
}
