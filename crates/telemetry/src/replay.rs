//! Reading JSONL traces back into structured events.
//!
//! The experiment binaries write traces with `--trace <path>`; this module
//! is the other half — `trace → Vec<TracedEvent>` — used by the bench
//! layer's replay cross-checks and by offline analysis.

use std::io::BufRead;

use crate::event::Event;

/// One parsed trace line: the recorder's timestamp plus the event.
#[derive(Debug, Clone, PartialEq)]
pub struct TracedEvent {
    /// Timestamp: sim-ticks (simulator traces) or unix ms (real-TCP).
    pub at: u64,
    /// The decoded event.
    pub event: Event,
}

/// Parses a JSONL trace. Blank lines are skipped; any malformed line
/// aborts with a message naming its line number.
///
/// # Errors
///
/// Returns a human-readable message on I/O failure or a malformed line.
pub fn read_trace(reader: impl BufRead) -> Result<Vec<TracedEvent>, String> {
    let mut events = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: read error: {e}", lineno + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        let (at, event) =
            Event::parse_jsonl(&line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        events.push(TracedEvent { at, event });
    }
    Ok(events)
}

/// Parses a trace already held in memory.
///
/// # Errors
///
/// Same conditions as [`read_trace`].
pub fn parse_trace(text: &str) -> Result<Vec<TracedEvent>, String> {
    read_trace(text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_lines_and_skips_blanks() {
        let text = "\
{\"t\":1,\"ev\":\"hello\",\"node\":0,\"position\":0,\"degree\":2}\n\
\n\
{\"t\":5,\"ev\":\"defect_sample\",\"defect\":3,\"tuples\":10}\n";
        let events = parse_trace(text).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].at, 1);
        assert_eq!(events[1].event, Event::DefectSample { defect: 3, tuples: 10 });
    }

    #[test]
    fn names_the_bad_line() {
        let text = "{\"t\":1,\"ev\":\"good_bye\",\"node\":0}\nnope\n";
        let err = parse_trace(text).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn empty_trace_is_ok() {
        assert!(parse_trace("").unwrap().is_empty());
    }

    #[test]
    fn every_event_variant_round_trips_through_a_trace() {
        // `sample_of_every_variant` is compile-time-forced to cover every
        // `Event` variant, so a newly added event cannot silently skip
        // the write→parse path: it either round-trips here or this fails.
        let samples = crate::event::sample_of_every_variant();
        let mut text = String::new();
        for (i, event) in samples.iter().enumerate() {
            event.write_jsonl(i as u64 * 3 + 1, &mut text);
            text.push('\n');
        }
        let parsed = parse_trace(&text).expect("every variant parses back");
        assert_eq!(parsed.len(), samples.len());
        for (i, (traced, original)) in parsed.iter().zip(&samples).enumerate() {
            assert_eq!(traced.at, i as u64 * 3 + 1);
            assert_eq!(&traced.event, original, "variant {}", original.kind());
        }
        // Sanity: the sample list exercises more than one kind per tag
        // only where intended; every kind tag is represented.
        let kinds: std::collections::BTreeSet<_> = samples.iter().map(Event::kind).collect();
        assert!(kinds.len() >= 23, "expected every variant kind, got {kinds:?}");
    }

    #[test]
    fn full_sink_to_replay_loop_preserves_every_variant() {
        use crate::recorder::SharedRecorder;
        use crate::sink::JsonlSink;

        let sink = JsonlSink::new(Vec::new());
        let r = SharedRecorder::new(sink.clone());
        let samples = crate::event::sample_of_every_variant();
        for (i, event) in samples.iter().enumerate() {
            r.set_time(100 + i as u64);
            r.record(event);
        }
        r.flush().unwrap();
        let bytes = sink.bytes();
        let parsed = read_trace(&bytes[..]).unwrap();
        assert_eq!(parsed.len(), samples.len());
        for (traced, original) in parsed.iter().zip(&samples) {
            assert_eq!(&traced.event, original);
        }
    }
}
