//! Reading JSONL traces back into structured events.
//!
//! The experiment binaries write traces with `--trace <path>`; this module
//! is the other half — `trace → Vec<TracedEvent>` — used by the bench
//! layer's replay cross-checks and by offline analysis.

use std::io::BufRead;

use crate::event::Event;

/// One parsed trace line: the recorder's timestamp plus the event.
#[derive(Debug, Clone, PartialEq)]
pub struct TracedEvent {
    /// Timestamp: sim-ticks (simulator traces) or unix ms (real-TCP).
    pub at: u64,
    /// The decoded event.
    pub event: Event,
}

/// Parses a JSONL trace. Blank lines are skipped; any malformed line
/// aborts with a message naming its line number.
///
/// # Errors
///
/// Returns a human-readable message on I/O failure or a malformed line.
pub fn read_trace(reader: impl BufRead) -> Result<Vec<TracedEvent>, String> {
    let mut events = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: read error: {e}", lineno + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        let (at, event) =
            Event::parse_jsonl(&line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        events.push(TracedEvent { at, event });
    }
    Ok(events)
}

/// Parses a trace already held in memory.
///
/// # Errors
///
/// Same conditions as [`read_trace`].
pub fn parse_trace(text: &str) -> Result<Vec<TracedEvent>, String> {
    read_trace(text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_lines_and_skips_blanks() {
        let text = "\
{\"t\":1,\"ev\":\"hello\",\"node\":0,\"position\":0,\"degree\":2}\n\
\n\
{\"t\":5,\"ev\":\"defect_sample\",\"defect\":3,\"tuples\":10}\n";
        let events = parse_trace(text).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].at, 1);
        assert_eq!(events[1].event, Event::DefectSample { defect: 3, tuples: 10 });
    }

    #[test]
    fn names_the_bad_line() {
        let text = "{\"t\":1,\"ev\":\"good_bye\",\"node\":0}\nnope\n";
        let err = parse_trace(text).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn empty_trace_is_ok() {
        assert!(parse_trace("").unwrap().is_empty());
    }
}
