//! Concrete [`Recorder`] sinks: JSONL streaming and in-memory buffering.

use std::io::{self, Write};
use std::sync::{Arc, Mutex};

use crate::event::Event;
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::recorder::Recorder;

/// Streams events as one JSON object per line to any [`Write`]r, and
/// routes metric calls into an embedded [`MetricsRegistry`].
///
/// The writer sits behind a single mutex; each event is formatted into a
/// thread-local-ish scratch `String` *outside* the lock, so the critical
/// section is one buffered `write_all`. Cloning is cheap and clones share
/// the writer, which lets a test keep a handle to a `Vec<u8>` sink while
/// the recorder owns another.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: Arc<Mutex<W>>,
    metrics: MetricsRegistry,
}

impl<W: Write> Clone for JsonlSink<W> {
    fn clone(&self) -> Self {
        JsonlSink { writer: Arc::clone(&self.writer), metrics: self.metrics.clone() }
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps `writer`. For files, pass a `BufWriter` — each event is one
    /// `write_all` call on this writer.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer: Arc::new(Mutex::new(writer)), metrics: MetricsRegistry::new() }
    }

    /// The embedded metrics registry (shared with all clones).
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Snapshots the embedded metrics.
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Runs `f` with exclusive access to the underlying writer.
    pub fn with_writer<T>(&self, f: impl FnOnce(&mut W) -> T) -> T {
        f(&mut self.writer.lock().unwrap())
    }
}

impl JsonlSink<Vec<u8>> {
    /// Copies out the bytes written so far (for `Vec<u8>`-backed sinks).
    #[must_use]
    pub fn bytes(&self) -> Vec<u8> {
        self.writer.lock().unwrap().clone()
    }
}

impl<W: Write> JsonlSink<io::BufWriter<W>> {
    /// Opens a buffered JSONL sink over `raw` (convenience for files).
    pub fn buffered(raw: W) -> Self {
        JsonlSink::new(io::BufWriter::new(raw))
    }
}

impl<W: Write + Send> Recorder for JsonlSink<W> {
    fn record(&self, at: u64, event: &Event) {
        let mut line = String::with_capacity(96);
        event.write_jsonl(at, &mut line);
        line.push('\n');
        let mut w = self.writer.lock().unwrap();
        // Trace loss is preferable to killing a protocol thread mid-run;
        // a later flush() surfaces the error to the harness.
        let _ = w.write_all(line.as_bytes());
    }

    fn counter(&self, name: &str, delta: u64) {
        self.metrics.counter(name, delta);
    }

    fn gauge(&self, name: &str, value: f64) {
        self.metrics.gauge(name, value);
    }

    fn histogram(&self, name: &str, value: f64) {
        self.metrics.histogram(name, value);
    }

    fn flush(&self) -> io::Result<()> {
        self.writer.lock().unwrap().flush()
    }
}

/// Buffers `(timestamp, Event)` pairs in memory — the assertion sink for
/// integration tests. Metric calls go to an embedded registry too.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    events: Arc<Mutex<Vec<(u64, Event)>>>,
    metrics: MetricsRegistry,
}

impl MemorySink {
    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies out the events recorded so far, in record order.
    #[must_use]
    pub fn events(&self) -> Vec<(u64, Event)> {
        self.events.lock().unwrap().clone()
    }

    /// Drains and returns the recorded events.
    #[must_use]
    pub fn take(&self) -> Vec<(u64, Event)> {
        std::mem::take(&mut self.events.lock().unwrap())
    }

    /// Number of events recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// `true` when no events have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The embedded metrics registry (shared with all clones).
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }
}

impl Recorder for MemorySink {
    fn record(&self, at: u64, event: &Event) {
        self.events.lock().unwrap().push((at, event.clone()));
    }

    fn counter(&self, name: &str, delta: u64) {
        self.metrics.counter(name, delta);
    }

    fn gauge(&self, name: &str, value: f64) {
        self.metrics.gauge(name, value);
    }

    fn histogram(&self, name: &str, value: f64) {
        self.metrics.histogram(name, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::SharedRecorder;
    use crate::replay;

    #[test]
    fn jsonl_sink_streams_lines() {
        let sink = JsonlSink::new(Vec::new());
        let r = SharedRecorder::new(sink.clone());
        r.set_time(1);
        r.record(&Event::Hello { node: 3, position: 0, degree: 2 });
        r.set_time(2);
        r.record(&Event::GoodBye { node: 3 });
        r.flush().unwrap();

        let bytes = sink.bytes();
        let text = String::from_utf8(bytes.clone()).unwrap();
        assert_eq!(text.lines().count(), 2);
        let events = replay::read_trace(&bytes[..]).unwrap();
        assert_eq!(events[0].at, 1);
        assert_eq!(events[1].event, Event::GoodBye { node: 3 });
    }

    #[test]
    fn jsonl_sink_routes_metrics() {
        let sink = JsonlSink::new(Vec::new());
        let r = SharedRecorder::new(sink.clone());
        r.counter("joins", 2);
        r.gauge("defect", 0.25);
        r.histogram("latency", 8.0);
        let snap = sink.metrics_snapshot();
        assert_eq!(snap.counters["joins"], 2);
        assert_eq!(snap.gauges["defect"], 0.25);
        assert_eq!(snap.histograms["latency"].count, 1);
        // Metrics never hit the event stream.
        assert!(sink.bytes().is_empty());
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let sink = MemorySink::new();
        let r = SharedRecorder::new(sink.clone());
        for node in 0..5 {
            r.set_time(node);
            r.record(&Event::GoodBye { node });
        }
        assert_eq!(sink.len(), 5);
        let events = sink.take();
        assert_eq!(events[4], (4, Event::GoodBye { node: 4 }));
        assert!(sink.is_empty());
    }

    #[test]
    fn buffered_constructor_flushes_through() {
        let sink = JsonlSink::buffered(Vec::new());
        let r = SharedRecorder::new(sink.clone());
        r.record(&Event::PeerConnect { peer: 1 });
        r.flush().unwrap();
        let n = sink.with_writer(|w| w.get_ref().len());
        assert!(n > 0);
    }
}
