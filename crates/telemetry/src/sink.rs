//! Concrete [`Recorder`] sinks: JSONL streaming and in-memory buffering.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::Event;
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::recorder::Recorder;

/// Streams events as one JSON object per line to any [`Write`]r, and
/// routes metric calls into an embedded [`MetricsRegistry`].
///
/// The writer sits behind a single mutex; each event is formatted into a
/// thread-local-ish scratch `String` *outside* the lock, so the critical
/// section is one buffered `write_all` — concurrent recorders can never
/// tear or merge lines. Cloning is cheap and clones share the writer,
/// which lets a test keep a handle to a `Vec<u8>` sink while the recorder
/// owns another. Dropping any clone flushes the writer, so traces from
/// processes that exit without an explicit `flush()` are not truncated at
/// the `BufWriter` boundary.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: Arc<Mutex<W>>,
    metrics: MetricsRegistry,
}

impl<W: Write> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        // Best-effort: a failed flush at drop has nowhere to report to.
        if let Ok(mut w) = self.writer.lock() {
            let _ = w.flush();
        }
    }
}

impl<W: Write> Clone for JsonlSink<W> {
    fn clone(&self) -> Self {
        JsonlSink { writer: Arc::clone(&self.writer), metrics: self.metrics.clone() }
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps `writer`. For files, pass a `BufWriter` — each event is one
    /// `write_all` call on this writer.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer: Arc::new(Mutex::new(writer)), metrics: MetricsRegistry::new() }
    }

    /// The embedded metrics registry (shared with all clones).
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Snapshots the embedded metrics.
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Runs `f` with exclusive access to the underlying writer.
    pub fn with_writer<T>(&self, f: impl FnOnce(&mut W) -> T) -> T {
        f(&mut self.writer.lock().unwrap())
    }
}

impl JsonlSink<Vec<u8>> {
    /// Copies out the bytes written so far (for `Vec<u8>`-backed sinks).
    #[must_use]
    pub fn bytes(&self) -> Vec<u8> {
        self.writer.lock().unwrap().clone()
    }
}

impl<W: Write> JsonlSink<io::BufWriter<W>> {
    /// Opens a buffered JSONL sink over `raw` (convenience for files).
    pub fn buffered(raw: W) -> Self {
        JsonlSink::new(io::BufWriter::new(raw))
    }
}

impl<W: Write + Send> Recorder for JsonlSink<W> {
    fn record(&self, at: u64, event: &Event) {
        let mut line = String::with_capacity(96);
        event.write_jsonl(at, &mut line);
        line.push('\n');
        let mut w = self.writer.lock().unwrap();
        // Trace loss is preferable to killing a protocol thread mid-run;
        // a later flush() surfaces the error to the harness.
        let _ = w.write_all(line.as_bytes());
    }

    fn counter(&self, name: &str, delta: u64) {
        self.metrics.counter(name, delta);
    }

    fn gauge(&self, name: &str, value: f64) {
        self.metrics.gauge(name, value);
    }

    fn histogram(&self, name: &str, value: f64) {
        self.metrics.histogram(name, value);
    }

    fn flush(&self) -> io::Result<()> {
        self.writer.lock().unwrap().flush()
    }
}

/// Buffers `(timestamp, Event)` pairs in memory — the assertion sink for
/// integration tests. Metric calls go to an embedded registry too.
///
/// By default the buffer is unbounded. [`MemorySink::bounded`] caps it as
/// a ring: once full, each new event evicts the oldest and bumps the
/// [`MemorySink::dropped`] counter, so long soaks keep the *tail* of the
/// event stream without growing memory without bound.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    events: Arc<Mutex<VecDeque<(u64, Event)>>>,
    metrics: MetricsRegistry,
    cap: Option<usize>,
    dropped: Arc<AtomicU64>,
}

impl MemorySink {
    /// Creates an empty, unbounded sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a ring-buffer sink keeping at most `cap` events.
    ///
    /// When full, recording evicts the oldest buffered event and counts
    /// it in [`MemorySink::dropped`]. A `cap` of 0 buffers nothing (every
    /// event is dropped-on-arrival but still counted).
    #[must_use]
    pub fn bounded(cap: usize) -> Self {
        MemorySink { cap: Some(cap), ..Self::default() }
    }

    /// The configured capacity (`None` = unbounded).
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        self.cap
    }

    /// Events evicted (or refused, for `cap == 0`) since creation.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copies out the events recorded so far, in record order.
    #[must_use]
    pub fn events(&self) -> Vec<(u64, Event)> {
        self.events.lock().unwrap().iter().cloned().collect()
    }

    /// Drains and returns the recorded events.
    #[must_use]
    pub fn take(&self) -> Vec<(u64, Event)> {
        self.events.lock().unwrap().drain(..).collect()
    }

    /// Number of events recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// `true` when no events have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The embedded metrics registry (shared with all clones).
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }
}

impl Recorder for MemorySink {
    fn record(&self, at: u64, event: &Event) {
        let mut events = self.events.lock().unwrap();
        if let Some(cap) = self.cap {
            if cap == 0 {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            if events.len() >= cap {
                events.pop_front();
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
        events.push_back((at, event.clone()));
    }

    fn counter(&self, name: &str, delta: u64) {
        self.metrics.counter(name, delta);
    }

    fn gauge(&self, name: &str, value: f64) {
        self.metrics.gauge(name, value);
    }

    fn histogram(&self, name: &str, value: f64) {
        self.metrics.histogram(name, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::SharedRecorder;
    use crate::replay;

    #[test]
    fn jsonl_sink_streams_lines() {
        let sink = JsonlSink::new(Vec::new());
        let r = SharedRecorder::new(sink.clone());
        r.set_time(1);
        r.record(&Event::Hello { node: 3, position: 0, degree: 2 });
        r.set_time(2);
        r.record(&Event::GoodBye { node: 3 });
        r.flush().unwrap();

        let bytes = sink.bytes();
        let text = String::from_utf8(bytes.clone()).unwrap();
        assert_eq!(text.lines().count(), 2);
        let events = replay::read_trace(&bytes[..]).unwrap();
        assert_eq!(events[0].at, 1);
        assert_eq!(events[1].event, Event::GoodBye { node: 3 });
    }

    #[test]
    fn jsonl_sink_routes_metrics() {
        let sink = JsonlSink::new(Vec::new());
        let r = SharedRecorder::new(sink.clone());
        r.counter("joins", 2);
        r.gauge("defect", 0.25);
        r.histogram("latency", 8.0);
        let snap = sink.metrics_snapshot();
        assert_eq!(snap.counters["joins"], 2);
        assert_eq!(snap.gauges["defect"], 0.25);
        assert_eq!(snap.histograms["latency"].count, 1);
        // Metrics never hit the event stream.
        assert!(sink.bytes().is_empty());
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let sink = MemorySink::new();
        let r = SharedRecorder::new(sink.clone());
        for node in 0..5 {
            r.set_time(node);
            r.record(&Event::GoodBye { node });
        }
        assert_eq!(sink.len(), 5);
        let events = sink.take();
        assert_eq!(events[4], (4, Event::GoodBye { node: 4 }));
        assert!(sink.is_empty());
    }

    #[test]
    fn buffered_constructor_flushes_through() {
        let sink = JsonlSink::buffered(Vec::new());
        let r = SharedRecorder::new(sink.clone());
        r.record(&Event::PeerConnect { peer: 1 });
        r.flush().unwrap();
        let n = sink.with_writer(|w| w.get_ref().len());
        assert!(n > 0);
    }

    #[test]
    fn concurrent_recorders_never_tear_lines() {
        // 8 threads × 500 events through clones of one sink: every line
        // of the output must parse back as exactly one event, and the
        // per-thread event counts must all survive intact.
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 500;
        let sink = JsonlSink::buffered(Vec::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|tid| {
                let r = SharedRecorder::wall_clock(sink.clone());
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        // Long string payloads maximize the torn-write
                        // window a non-atomic writer would expose.
                        r.record(&Event::RunInfo {
                            key: format!("thread_{tid}"),
                            value: format!("payload {i} {}", "x".repeat(64)),
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        sink.flush().unwrap();
        let bytes = sink.with_writer(|w| w.get_ref().clone());
        let events = replay::read_trace(&bytes[..]).expect("no torn or merged lines");
        assert_eq!(events.len(), (THREADS * PER_THREAD) as usize);
        let mut per_thread = std::collections::BTreeMap::new();
        for e in &events {
            match &e.event {
                Event::RunInfo { key, .. } => *per_thread.entry(key.clone()).or_insert(0u64) += 1,
                other => panic!("unexpected event {other:?}"),
            }
        }
        assert_eq!(per_thread.len(), THREADS as usize);
        assert!(per_thread.values().all(|&n| n == PER_THREAD), "{per_thread:?}");
    }

    #[test]
    fn drop_flushes_buffered_writer() {
        // Shared Vec underneath a BufWriter: without the Drop flush, a
        // small trace would still be sitting in the BufWriter's buffer.
        let shared: Arc<Mutex<Vec<u8>>> = Arc::default();

        struct SharedVec(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedVec {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        {
            let sink = JsonlSink::buffered(SharedVec(Arc::clone(&shared)));
            let r = SharedRecorder::new(sink);
            r.record(&Event::GoodBye { node: 1 });
            assert!(shared.lock().unwrap().is_empty(), "still buffered");
            // `r` (holding the only sink) drops here.
        }
        let bytes = shared.lock().unwrap().clone();
        let events = replay::read_trace(&bytes[..]).unwrap();
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn bounded_memory_sink_keeps_tail_and_counts_drops() {
        let sink = MemorySink::bounded(3);
        assert_eq!(sink.capacity(), Some(3));
        let r = SharedRecorder::new(sink.clone());
        for node in 0..10 {
            r.set_time(node);
            r.record(&Event::GoodBye { node });
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 7);
        let events = sink.events();
        assert_eq!(
            events,
            vec![
                (7, Event::GoodBye { node: 7 }),
                (8, Event::GoodBye { node: 8 }),
                (9, Event::GoodBye { node: 9 }),
            ]
        );
        // Metrics are unaffected by the ring.
        r.counter("c", 1);
        assert_eq!(sink.metrics().snapshot().counters["c"], 1);
    }

    #[test]
    fn zero_capacity_sink_drops_everything() {
        let sink = MemorySink::bounded(0);
        let r = SharedRecorder::new(sink.clone());
        r.record(&Event::GoodBye { node: 1 });
        r.record(&Event::GoodBye { node: 2 });
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 2);
    }

    #[test]
    fn unbounded_sink_never_drops() {
        let sink = MemorySink::new();
        assert_eq!(sink.capacity(), None);
        let r = SharedRecorder::new(sink.clone());
        for node in 0..1000 {
            r.record(&Event::GoodBye { node });
        }
        assert_eq!(sink.len(), 1000);
        assert_eq!(sink.dropped(), 0);
    }
}
