//! The [`Recorder`] trait, the zero-cost [`NullRecorder`], and the
//! cloneable, clock-carrying [`SharedRecorder`] handle that instrumented
//! crates thread through their types.

use std::io;
use std::sync::Arc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::event::Event;

/// A sink for telemetry: structured events plus metric primitives.
///
/// Implementations must be cheap to call and internally synchronized —
/// the real-TCP layer records from many threads at once. Every metric
/// method has a no-op default so pure event sinks stay one method long.
pub trait Recorder: Send + Sync {
    /// Records one protocol event stamped at `at` (sim-ticks or unix ms,
    /// depending on the [`SharedRecorder`]'s clock mode).
    fn record(&self, at: u64, event: &Event);

    /// Adds `delta` to a named monotonic counter.
    fn counter(&self, name: &str, delta: u64) {
        let _ = (name, delta);
    }

    /// Sets a named gauge (last write wins).
    fn gauge(&self, name: &str, value: f64) {
        let _ = (name, value);
    }

    /// Records one observation into a named histogram.
    fn histogram(&self, name: &str, value: f64) {
        let _ = (name, value);
    }

    /// Flushes any buffered output.
    ///
    /// # Errors
    ///
    /// Propagates the underlying writer's I/O error, if any.
    fn flush(&self) -> io::Result<()> {
        Ok(())
    }
}

/// A recorder that drops everything: the disabled state.
///
/// [`SharedRecorder::null`] does not even allocate this — it stores no
/// recorder at all, so the disabled cost is a single `Option` check —
/// but `NullRecorder` exists for code that wants a `&dyn Recorder`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&self, _at: u64, _event: &Event) {}
}

/// How [`SharedRecorder::now`] produces timestamps.
#[derive(Debug)]
enum Clock {
    /// Driven explicitly via [`SharedRecorder::set_time`] /
    /// [`SharedRecorder::advance`] — the simulator sets this to its tick.
    Manual(AtomicU64),
    /// Milliseconds since the unix epoch, sampled at record time — used
    /// by the real-TCP `curtain-net` layer.
    Wall,
}

impl Clock {
    fn now(&self) -> u64 {
        match self {
            Clock::Manual(t) => t.load(Ordering::Relaxed),
            Clock::Wall => SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
        }
    }
}

/// The cloneable telemetry handle instrumented code holds.
///
/// A `SharedRecorder` is either *enabled* (wrapping an `Arc<dyn Recorder>`
/// plus a clock) or *null* (the default): the null state stores nothing,
/// so every `record`/`counter`/… call short-circuits on one `Option`
/// check. Clones share the recorder and the clock, which is what lets the
/// simulator stamp sim-ticks once in `World::tick` and have every actor's
/// events carry them.
#[derive(Debug, Clone, Default)]
pub struct SharedRecorder {
    inner: Option<Arc<Inner>>,
}

struct Inner {
    recorder: Arc<dyn Recorder>,
    clock: Clock,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner").field("clock", &self.clock).finish_non_exhaustive()
    }
}

impl SharedRecorder {
    /// Wraps `recorder` with a manual (sim-tick) clock starting at 0.
    pub fn new(recorder: impl Recorder + 'static) -> Self {
        Self::from_arc(Arc::new(recorder))
    }

    /// Wraps an already-shared recorder with a manual (sim-tick) clock.
    #[must_use]
    pub fn from_arc(recorder: Arc<dyn Recorder>) -> Self {
        SharedRecorder {
            inner: Some(Arc::new(Inner { recorder, clock: Clock::Manual(AtomicU64::new(0)) })),
        }
    }

    /// Wraps `recorder` with a wall clock (unix milliseconds at record
    /// time) — for the real-TCP layer, where there is no simulated tick.
    pub fn wall_clock(recorder: impl Recorder + 'static) -> Self {
        SharedRecorder {
            inner: Some(Arc::new(Inner {
                recorder: Arc::new(recorder),
                clock: Clock::Wall,
            })),
        }
    }

    /// The disabled handle: records nothing, costs one `Option` check.
    #[must_use]
    pub fn null() -> Self {
        SharedRecorder { inner: None }
    }

    /// `true` when a recorder is attached. Instrumented code can use this
    /// to skip *constructing* expensive event payloads, not just sending
    /// them.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Sets the manual clock to `t`. No-op when null or wall-clocked.
    pub fn set_time(&self, t: u64) {
        if let Some(inner) = &self.inner {
            if let Clock::Manual(ticks) = &inner.clock {
                ticks.store(t, Ordering::Relaxed);
            }
        }
    }

    /// Advances the manual clock by `dt`. No-op when null or wall-clocked.
    pub fn advance(&self, dt: u64) {
        if let Some(inner) = &self.inner {
            if let Clock::Manual(ticks) = &inner.clock {
                ticks.fetch_add(dt, Ordering::Relaxed);
            }
        }
    }

    /// Current timestamp under this handle's clock (0 when null).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.clock.now())
    }

    /// Records `event` stamped with the current clock.
    pub fn record(&self, event: &Event) {
        if let Some(inner) = &self.inner {
            inner.recorder.record(inner.clock.now(), event);
        }
    }

    /// Records `event` with an explicit timestamp, bypassing the clock —
    /// for replaying or backfilling.
    pub fn record_at(&self, at: u64, event: &Event) {
        if let Some(inner) = &self.inner {
            inner.recorder.record(at, event);
        }
    }

    /// Adds `delta` to a named counter.
    pub fn counter(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.recorder.counter(name, delta);
        }
    }

    /// Sets a named gauge.
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.recorder.gauge(name, value);
        }
    }

    /// Records one observation into a named histogram.
    pub fn histogram(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.recorder.histogram(name, value);
        }
    }

    /// Flushes the underlying recorder.
    ///
    /// # Errors
    ///
    /// Propagates the recorder's I/O error, if any.
    pub fn flush(&self) -> io::Result<()> {
        match &self.inner {
            Some(inner) => inner.recorder.flush(),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    #[test]
    fn null_handle_is_inert() {
        let r = SharedRecorder::null();
        assert!(!r.is_enabled());
        r.set_time(99);
        assert_eq!(r.now(), 0);
        r.record(&Event::GoodBye { node: 1 });
        r.counter("x", 1);
        r.flush().unwrap();
    }

    #[test]
    fn default_is_null() {
        assert!(!SharedRecorder::default().is_enabled());
    }

    #[test]
    fn manual_clock_stamps_events() {
        let sink = MemorySink::new();
        let r = SharedRecorder::new(sink.clone());
        assert!(r.is_enabled());
        r.record(&Event::PeerConnect { peer: 1 });
        r.set_time(10);
        r.advance(5);
        r.record(&Event::PeerDisconnect { peer: 1 });
        let events = sink.events();
        assert_eq!(events[0], (0, Event::PeerConnect { peer: 1 }));
        assert_eq!(events[1], (15, Event::PeerDisconnect { peer: 1 }));
    }

    #[test]
    fn clones_share_the_clock() {
        let sink = MemorySink::new();
        let r = SharedRecorder::new(sink.clone());
        let r2 = r.clone();
        r.set_time(7);
        r2.record(&Event::GoodBye { node: 2 });
        assert_eq!(sink.events(), vec![(7, Event::GoodBye { node: 2 })]);
    }

    #[test]
    fn record_at_bypasses_clock() {
        let sink = MemorySink::new();
        let r = SharedRecorder::new(sink.clone());
        r.set_time(100);
        r.record_at(3, &Event::GoodBye { node: 9 });
        assert_eq!(sink.events(), vec![(3, Event::GoodBye { node: 9 })]);
    }

    #[test]
    fn wall_clock_produces_nonzero_recent_stamp() {
        let sink = MemorySink::new();
        let r = SharedRecorder::wall_clock(sink.clone());
        r.record(&Event::PeerConnect { peer: 4 });
        let (at, _) = sink.events()[0];
        // After 2020-01-01 in unix-ms terms.
        assert!(at > 1_577_836_800_000, "wall stamp {at}");
        // set_time must not panic on a wall clock.
        r.set_time(0);
    }
}
