//! Cross-process trace stitching: merge multi-process JSONL traces by
//! trace id, order spans causally, and reconstruct per-hop packet
//! latencies and repair-episode critical paths.
//!
//! Input is any concatenation of [`crate::TracedEvent`] streams — one per
//! process, in any order. Stitching keys everything off the ids minted by
//! [`crate::trace`]:
//!
//! * a **hop** is a [`crate::Event::HopSend`] / [`crate::Event::HopRecv`]
//!   pair sharing `(trace, span)`; the send side's `parent` links to the
//!   span under which the sender *received* the packet it recoded, so
//!   walking parents reconstructs the full source→peer path. A chain is
//!   *complete* when the walk reaches a hop sent by
//!   [`crate::trace::SOURCE_NODE`];
//! * a **span tree** is a set of [`crate::Event::SpanStart`] /
//!   [`crate::Event::SpanEnd`] pairs linked by `parent` — repair episodes
//!   (`repair` → `complain` → `splice` → `repair_complete`), WAL replays,
//!   resyncs. A tree is *closed* when every started span ended.
//!
//! The [`StitchReport`] renders three ways: a human text summary, a JSON
//! document, and a flamegraph-compatible collapsed-stack listing
//! (`a;b;c <weight>` lines — hop chains weighted by hop latency in µs,
//! spans by self-time in the trace clock's ms).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use crate::event::Event;
use crate::json::JsonValue;
use crate::replay::TracedEvent;
use crate::trace::{COORDINATOR_NODE, NO_PARENT, SOURCE_NODE};

/// One reconstructed hop: a traced packet leaving one node and (if the
/// matching receive was traced) arriving at another.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hop {
    /// Trace id of the chain this hop belongs to.
    pub trace: u64,
    /// Span id naming this hop on both sides.
    pub span: u64,
    /// Span under which the sender received its causal input
    /// ([`NO_PARENT`] for source hops), from the send side.
    pub parent: u64,
    /// Sending node ([`SOURCE_NODE`] for the origin).
    pub from: u64,
    /// Receiving node, when the receive side was observed.
    pub to: Option<u64>,
    /// Generation the packet belongs to.
    pub generation: u32,
    /// Send stamp, µs since the unix epoch (`None` if only the receive
    /// side was observed — a partial trace).
    pub send_us: Option<u64>,
    /// Receive stamp, µs since the unix epoch.
    pub recv_us: Option<u64>,
}

impl Hop {
    /// Send→receive latency in µs when both sides were observed.
    /// Clock skew that would make it negative clamps to 0.
    #[must_use]
    pub fn latency_us(&self) -> Option<u64> {
        match (self.send_us, self.recv_us) {
            (Some(s), Some(r)) => Some(r.saturating_sub(s)),
            _ => None,
        }
    }
}

/// Order statistics over a set of µs (or ms) measurements — exact, not
/// bucketed: stitching is offline and keeps every sample.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest-rank).
    pub p50: u64,
    /// 95th percentile (nearest-rank).
    pub p95: u64,
    /// 99th percentile (nearest-rank).
    pub p99: u64,
}

impl LatencySummary {
    fn from_samples(mut samples: Vec<u64>) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        let count = samples.len();
        let sum: u128 = samples.iter().map(|&v| u128::from(v)).sum();
        let rank = |q: f64| -> u64 {
            let idx = ((q * count as f64).ceil() as usize).max(1) - 1;
            samples[idx.min(count - 1)]
        };
        Some(LatencySummary {
            count,
            min: samples[0],
            max: samples[count - 1],
            mean: sum as f64 / count as f64,
            p50: rank(0.50),
            p95: rank(0.95),
            p99: rank(0.99),
        })
    }

    fn to_json(&self) -> JsonValue {
        let mut fields = BTreeMap::new();
        fields.insert("count".into(), JsonValue::Int(self.count as i64));
        fields.insert("min".into(), JsonValue::Int(self.min as i64));
        fields.insert("max".into(), JsonValue::Int(self.max as i64));
        fields.insert("mean".into(), JsonValue::Float(self.mean));
        fields.insert("p50".into(), JsonValue::Int(self.p50 as i64));
        fields.insert("p95".into(), JsonValue::Int(self.p95 as i64));
        fields.insert("p99".into(), JsonValue::Int(self.p99 as i64));
        JsonValue::Object(fields)
    }
}

/// Chain accounting for one generation: how many traced arrivals were
/// observed, and how many of them walk back to the source.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GenerationChains {
    /// Traced packet arrivals (`HopRecv`) for this generation.
    pub arrivals: usize,
    /// Arrivals whose parent walk reaches a [`SOURCE_NODE`] hop with
    /// every hop on the path matched on both sides.
    pub complete: usize,
    /// Longest complete chain, in hops.
    pub max_depth: usize,
    /// End-to-end (source send → final receive) latencies of complete
    /// chains, µs.
    pub end_to_end_us: Option<LatencySummary>,
}

/// One reconstructed span (episode step) with its resolved timing.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanInfo {
    /// Trace id of the tree this span belongs to.
    pub trace: u64,
    /// This span's id.
    pub span: u64,
    /// Parent span id ([`NO_PARENT`] for roots).
    pub parent: u64,
    /// The span's name (`"repair"`, `"complain"`, `"splice"`, …).
    pub name: String,
    /// Node it ran on.
    pub node: u64,
    /// Start stamp (trace clock — unix ms over real sockets).
    pub start_at: u64,
    /// End stamp and success flag, when the span closed.
    pub end: Option<(u64, bool)>,
    /// Depth below its root (root = 0).
    pub depth: usize,
}

impl SpanInfo {
    /// Span duration in trace-clock units, when closed.
    #[must_use]
    pub fn duration(&self) -> Option<u64> {
        self.end.map(|(at, _)| at.saturating_sub(self.start_at))
    }
}

/// One root span and its whole tree, causally ordered.
#[derive(Debug, Clone, PartialEq)]
pub struct Episode {
    /// Trace id of the episode.
    pub trace: u64,
    /// Root span id.
    pub root: u64,
    /// Root span name (`"repair"` for repair episodes).
    pub name: String,
    /// Node the root span ran on.
    pub node: u64,
    /// `true` when every span in the tree has a matching end.
    pub closed: bool,
    /// The root span's outcome, when it closed.
    pub ok: Option<bool>,
    /// Every span in the tree: parents before children, siblings by
    /// start stamp — the causal order.
    pub steps: Vec<SpanInfo>,
    /// Names of the steps whose closure bounds the episode's wall time:
    /// the root, then at each level the child that finished last.
    pub critical_path: Vec<String>,
}

impl Episode {
    /// Root span duration, when the root closed.
    #[must_use]
    pub fn duration(&self) -> Option<u64> {
        self.steps.first().and_then(SpanInfo::duration)
    }
}

/// The stitched view over every input trace.
#[derive(Debug, Clone, Default)]
pub struct StitchReport {
    /// All reconstructed hops, ordered by (trace, span).
    pub hops: Vec<Hop>,
    /// Per-edge (`from` → `to`) hop latency distributions, µs.
    pub edges: BTreeMap<(u64, u64), LatencySummary>,
    /// Per-generation chain accounting.
    pub generations: BTreeMap<u32, GenerationChains>,
    /// Every span tree found, in (trace, root-span) order.
    pub episodes: Vec<Episode>,
    /// `SpanEnd` events with no matching start (partial traces).
    pub orphan_span_ends: usize,
}

impl StitchReport {
    /// `true` when every traced arrival in every generation walks back to
    /// a source hop. Vacuously true with no traced arrivals.
    #[must_use]
    pub fn all_chains_complete(&self) -> bool {
        self.generations.values().all(|g| g.complete == g.arrivals)
    }

    /// The episodes rooted at a `"repair"` span.
    pub fn repair_episodes(&self) -> impl Iterator<Item = &Episode> {
        self.episodes.iter().filter(|e| e.name == "repair")
    }

    /// `true` when every repair episode's span tree is closed.
    #[must_use]
    pub fn all_repair_episodes_closed(&self) -> bool {
        self.repair_episodes().all(|e| e.closed)
    }

    /// Total traced arrivals across generations.
    #[must_use]
    pub fn total_arrivals(&self) -> usize {
        self.generations.values().map(|g| g.arrivals).sum()
    }

    /// Total complete chains across generations.
    #[must_use]
    pub fn total_complete(&self) -> usize {
        self.generations.values().map(|g| g.complete).sum()
    }

    /// Renders the report as one pretty-printed JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut root = BTreeMap::new();

        let mut chains = BTreeMap::new();
        for (generation, g) in &self.generations {
            let mut fields = BTreeMap::new();
            fields.insert("arrivals".into(), JsonValue::Int(g.arrivals as i64));
            fields.insert("complete".into(), JsonValue::Int(g.complete as i64));
            fields.insert("max_depth".into(), JsonValue::Int(g.max_depth as i64));
            if let Some(s) = &g.end_to_end_us {
                fields.insert("end_to_end_us".into(), s.to_json());
            }
            chains.insert(format!("g{generation}"), JsonValue::Object(fields));
        }
        root.insert("generations".into(), JsonValue::Object(chains));

        let mut edges = BTreeMap::new();
        for ((from, to), summary) in &self.edges {
            edges.insert(format!("{}->{}", node_label(*from), node_label(*to)), summary.to_json());
        }
        root.insert("hop_latency_us".into(), JsonValue::Object(edges));

        let episodes: Vec<JsonValue> = self
            .episodes
            .iter()
            .map(|e| {
                let mut fields = BTreeMap::new();
                fields.insert("trace".into(), JsonValue::Int(e.trace as i64));
                fields.insert("name".into(), JsonValue::Str(e.name.clone()));
                fields.insert("node".into(), JsonValue::Str(node_label(e.node)));
                fields.insert("closed".into(), JsonValue::Bool(e.closed));
                match e.ok {
                    Some(ok) => fields.insert("ok".into(), JsonValue::Bool(ok)),
                    None => fields.insert("ok".into(), JsonValue::Null),
                };
                if let Some(d) = e.duration() {
                    fields.insert("duration_ms".into(), JsonValue::Int(d as i64));
                }
                fields.insert(
                    "critical_path".into(),
                    JsonValue::Array(
                        e.critical_path.iter().map(|s| JsonValue::Str(s.clone())).collect(),
                    ),
                );
                fields.insert(
                    "steps".into(),
                    JsonValue::Array(
                        e.steps
                            .iter()
                            .map(|s| {
                                let mut step = BTreeMap::new();
                                step.insert("name".into(), JsonValue::Str(s.name.clone()));
                                step.insert("node".into(), JsonValue::Str(node_label(s.node)));
                                step.insert("depth".into(), JsonValue::Int(s.depth as i64));
                                step.insert("closed".into(), JsonValue::Bool(s.end.is_some()));
                                if let Some(d) = s.duration() {
                                    step.insert("duration_ms".into(), JsonValue::Int(d as i64));
                                }
                                JsonValue::Object(step)
                            })
                            .collect(),
                    ),
                );
                JsonValue::Object(fields)
            })
            .collect();
        root.insert("episodes".into(), JsonValue::Array(episodes));

        let mut totals = BTreeMap::new();
        totals.insert("arrivals".into(), JsonValue::Int(self.total_arrivals() as i64));
        totals.insert("complete_chains".into(), JsonValue::Int(self.total_complete() as i64));
        totals.insert(
            "all_chains_complete".into(),
            JsonValue::Bool(self.all_chains_complete()),
        );
        totals.insert(
            "all_repair_episodes_closed".into(),
            JsonValue::Bool(self.all_repair_episodes_closed()),
        );
        totals.insert(
            "orphan_span_ends".into(),
            JsonValue::Int(self.orphan_span_ends as i64),
        );
        root.insert("totals".into(), JsonValue::Object(totals));

        JsonValue::Object(root).render_pretty()
    }

    /// Renders a human-readable text summary.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("== stitched trace report ==\n");
        out.push_str(&format!(
            "chains: {}/{} traced arrivals walk back to the source ({})\n",
            self.total_complete(),
            self.total_arrivals(),
            if self.all_chains_complete() { "complete" } else { "INCOMPLETE" },
        ));
        for (generation, g) in &self.generations {
            out.push_str(&format!(
                "  g{generation}: {}/{} complete, max depth {} hops",
                g.complete, g.arrivals, g.max_depth
            ));
            if let Some(s) = &g.end_to_end_us {
                out.push_str(&format!(
                    ", end-to-end µs p50/p95/p99 = {}/{}/{}",
                    s.p50, s.p95, s.p99
                ));
            }
            out.push('\n');
        }
        out.push_str(&format!("per-hop latency (µs), {} edges:\n", self.edges.len()));
        for ((from, to), s) in &self.edges {
            out.push_str(&format!(
                "  {} -> {}: n={} min={} p50={} p95={} p99={} max={}\n",
                node_label(*from),
                node_label(*to),
                s.count,
                s.min,
                s.p50,
                s.p95,
                s.p99,
                s.max
            ));
        }
        let repairs: Vec<&Episode> = self.repair_episodes().collect();
        out.push_str(&format!(
            "episodes: {} total, {} repair ({})\n",
            self.episodes.len(),
            repairs.len(),
            if self.all_repair_episodes_closed() { "all closed" } else { "UNCLOSED present" },
        ));
        for e in &self.episodes {
            out.push_str(&format!(
                "  [{}] {} on {}: {}{}, path {}\n",
                e.trace,
                e.name,
                node_label(e.node),
                if e.closed { "closed" } else { "OPEN" },
                e.duration().map(|d| format!(" in {d} ms")).unwrap_or_default(),
                e.critical_path.join(" -> "),
            ));
        }
        out
    }

    /// Renders flamegraph-compatible collapsed stacks: hop chains as
    /// `path;source;n3;n7 <latency µs>` and span trees as
    /// `repair;complain;splice <self-time ms>` lines.
    #[must_use]
    pub fn collapsed_stacks(&self) -> String {
        let mut lines: Vec<String> = Vec::new();
        let by_key: HashMap<(u64, u64), &Hop> =
            self.hops.iter().map(|h| ((h.trace, h.span), h)).collect();
        for hop in &self.hops {
            // Emit one stack per *terminal* arrival (a hop nothing else
            // extends would double-count its prefix otherwise) — cheap
            // approximation: emit for every matched hop, weighting by
            // that hop's own latency, with the stack being the node path
            // up to it. Flamegraph semantics then show each edge's cost
            // at its position in the path.
            let Some(latency) = hop.latency_us() else { continue };
            let Some(path) = chain_path(hop, &by_key) else { continue };
            lines.push(format!("path;{} {}", path.join(";"), latency.max(1)));
        }
        for episode in &self.episodes {
            let by_span: HashMap<u64, &SpanInfo> =
                episode.steps.iter().map(|s| (s.span, s)).collect();
            for step in &episode.steps {
                let mut names = vec![step.name.clone()];
                let mut cursor = step.parent;
                while let Some(up) = by_span.get(&cursor) {
                    names.push(up.name.clone());
                    cursor = up.parent;
                }
                names.reverse();
                let inclusive = step.duration().unwrap_or(0);
                let children: u64 = episode
                    .steps
                    .iter()
                    .filter(|s| s.parent == step.span)
                    .filter_map(SpanInfo::duration)
                    .sum();
                let self_time = inclusive.saturating_sub(children);
                lines.push(format!("{} {}", names.join(";"), self_time.max(1)));
            }
        }
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }
}

/// Human-friendly node label: `source` / `coordinator` for the
/// sentinels, `n<id>` else.
fn node_label(node: u64) -> String {
    if node == SOURCE_NODE {
        "source".into()
    } else if node == COORDINATOR_NODE {
        "coordinator".into()
    } else {
        format!("n{node}")
    }
}

/// Walks `hop`'s parents to the source, returning the node path
/// `["source", "n3", …, "n<receiver>"]`, or `None` if the chain is
/// incomplete (unmatched hop or missing parent).
fn chain_path(hop: &Hop, by_key: &HashMap<(u64, u64), &Hop>) -> Option<Vec<String>> {
    let mut rev = Vec::new();
    rev.push(node_label(hop.to?));
    let mut cursor = hop;
    let mut guard = 0;
    loop {
        guard += 1;
        if guard > 1024 {
            return None; // cycle or absurd depth: treat as incomplete
        }
        cursor.send_us?;
        rev.push(node_label(cursor.from));
        if cursor.from == SOURCE_NODE {
            break;
        }
        cursor = by_key.get(&(cursor.trace, cursor.parent))?;
        cursor.recv_us?;
    }
    rev.reverse();
    Some(rev)
}

/// Stitches merged multi-process trace events into one report.
#[must_use]
pub fn stitch(events: &[TracedEvent]) -> StitchReport {
    // --- hops -----------------------------------------------------------
    let mut hops: BTreeMap<(u64, u64), Hop> = BTreeMap::new();
    for te in events {
        match &te.event {
            Event::HopSend { trace, span, parent, node, generation, t_us } => {
                let hop = hops.entry((*trace, *span)).or_insert_with(|| Hop {
                    trace: *trace,
                    span: *span,
                    parent: NO_PARENT,
                    from: *node,
                    to: None,
                    generation: *generation,
                    send_us: None,
                    recv_us: None,
                });
                hop.parent = *parent;
                hop.from = *node;
                hop.generation = *generation;
                hop.send_us = Some(*t_us);
            }
            Event::HopRecv { trace, span, node, generation, t_us } => {
                let hop = hops.entry((*trace, *span)).or_insert_with(|| Hop {
                    trace: *trace,
                    span: *span,
                    parent: NO_PARENT,
                    from: 0,
                    to: None,
                    generation: *generation,
                    send_us: None,
                    recv_us: None,
                });
                hop.to = Some(*node);
                hop.generation = *generation;
                hop.recv_us = Some(*t_us);
            }
            _ => {}
        }
    }

    // Per-edge latency distributions over matched hops.
    let mut edge_samples: BTreeMap<(u64, u64), Vec<u64>> = BTreeMap::new();
    for hop in hops.values() {
        if let (Some(to), Some(latency), Some(_)) = (hop.to, hop.latency_us(), hop.send_us) {
            edge_samples.entry((hop.from, to)).or_default().push(latency);
        }
    }
    let edges: BTreeMap<(u64, u64), LatencySummary> = edge_samples
        .into_iter()
        .filter_map(|(k, v)| LatencySummary::from_samples(v).map(|s| (k, s)))
        .collect();

    // Chain walk per traced arrival.
    let mut generations: BTreeMap<u32, GenerationChains> = BTreeMap::new();
    let mut end_to_end: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    for hop in hops.values() {
        if hop.to.is_none() || hop.recv_us.is_none() {
            continue; // not an arrival
        }
        let g = generations.entry(hop.generation).or_default();
        g.arrivals += 1;
        let mut depth = 0usize;
        let mut cursor = hop;
        let mut visited: HashSet<u64> = HashSet::new();
        let complete = loop {
            if cursor.send_us.is_none() || cursor.recv_us.is_none() {
                break false; // one side of this hop never traced
            }
            if !visited.insert(cursor.span) {
                break false; // defensive: parent cycle
            }
            depth += 1;
            if cursor.from == SOURCE_NODE {
                break true;
            }
            match hops.get(&(cursor.trace, cursor.parent)) {
                Some(parent) => cursor = parent,
                None => break false,
            }
        };
        if complete {
            g.complete += 1;
            g.max_depth = g.max_depth.max(depth);
            if let (Some(root_send), Some(final_recv)) = (cursor.send_us, hop.recv_us) {
                end_to_end
                    .entry(hop.generation)
                    .or_default()
                    .push(final_recv.saturating_sub(root_send));
            }
        }
    }
    for (generation, samples) in end_to_end {
        if let Some(g) = generations.get_mut(&generation) {
            g.end_to_end_us = LatencySummary::from_samples(samples);
        }
    }

    // --- spans ----------------------------------------------------------
    let mut spans: BTreeMap<(u64, u64), SpanInfo> = BTreeMap::new();
    let mut pending_ends: Vec<(u64, u64, u64, bool)> = Vec::new();
    for te in events {
        match &te.event {
            Event::SpanStart { trace, span, parent, name, node } => {
                spans.insert((*trace, *span), SpanInfo {
                    trace: *trace,
                    span: *span,
                    parent: *parent,
                    name: name.clone(),
                    node: *node,
                    start_at: te.at,
                    end: None,
                    depth: 0,
                });
            }
            Event::SpanEnd { trace, span, ok } => {
                pending_ends.push((*trace, *span, te.at, *ok));
            }
            _ => {}
        }
    }
    let mut orphan_span_ends = 0usize;
    for (trace, span, at, ok) in pending_ends {
        match spans.get_mut(&(trace, span)) {
            Some(info) => info.end = Some((at, ok)),
            None => orphan_span_ends += 1,
        }
    }

    // Group spans into trees rooted at spans whose parent is NO_PARENT or
    // absent from the trace (partial traces keep their fragments).
    let span_keys: BTreeSet<(u64, u64)> = spans.keys().copied().collect();
    let mut children: BTreeMap<(u64, u64), Vec<(u64, u64)>> = BTreeMap::new();
    let mut roots: Vec<(u64, u64)> = Vec::new();
    for (key, info) in &spans {
        let parent_key = (info.trace, info.parent);
        if info.parent != NO_PARENT && span_keys.contains(&parent_key) {
            children.entry(parent_key).or_default().push(*key);
        } else {
            roots.push(*key);
        }
    }
    for kids in children.values_mut() {
        kids.sort_by_key(|k| (spans[k].start_at, k.1));
    }

    let mut episodes = Vec::new();
    for root_key in roots {
        let root = spans[&root_key].clone();
        // Depth-first, parents before children, siblings by start stamp.
        let mut steps: Vec<SpanInfo> = Vec::new();
        let mut stack = vec![(root_key, 0usize)];
        while let Some((key, depth)) = stack.pop() {
            let mut info = spans[&key].clone();
            info.depth = depth;
            steps.push(info);
            if let Some(kids) = children.get(&key) {
                for kid in kids.iter().rev() {
                    stack.push((*kid, depth + 1));
                }
            }
        }
        let closed = steps.iter().all(|s| s.end.is_some());
        // Critical path: from the root, descend into the child that
        // closed last (or started last if still open).
        let mut critical_path = vec![root.name.clone()];
        let mut cursor = root_key;
        while let Some(kids) = children.get(&cursor) {
            let Some(last) = kids
                .iter()
                .max_by_key(|k| spans[k].end.map_or((1, spans[k].start_at), |(at, _)| (0, at)))
            else {
                break;
            };
            critical_path.push(spans[last].name.clone());
            cursor = *last;
        }
        episodes.push(Episode {
            trace: root.trace,
            root: root.span,
            name: root.name.clone(),
            node: root.node,
            closed,
            ok: root.end.map(|(_, ok)| ok),
            steps,
            critical_path,
        });
    }

    StitchReport {
        hops: hops.into_values().collect(),
        edges,
        generations,
        episodes,
        orphan_span_ends,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, event: Event) -> TracedEvent {
        TracedEvent { at, event }
    }

    /// source -(span 10)-> n1 -(span 11)-> n2, one generation.
    fn two_hop_chain() -> Vec<TracedEvent> {
        vec![
            ev(1, Event::HopSend {
                trace: 7,
                span: 10,
                parent: 0,
                node: SOURCE_NODE,
                generation: 0,
                t_us: 1_000,
            }),
            ev(1, Event::HopRecv { trace: 7, span: 10, node: 1, generation: 0, t_us: 1_250 }),
            ev(2, Event::HopSend {
                trace: 7,
                span: 11,
                parent: 10,
                node: 1,
                generation: 0,
                t_us: 2_000,
            }),
            ev(2, Event::HopRecv { trace: 7, span: 11, node: 2, generation: 0, t_us: 2_100 }),
        ]
    }

    #[test]
    fn stitches_complete_chain_and_edge_latencies() {
        let report = stitch(&two_hop_chain());
        assert!(report.all_chains_complete());
        let g = &report.generations[&0];
        assert_eq!(g.arrivals, 2); // n1's arrival and n2's arrival
        assert_eq!(g.complete, 2);
        assert_eq!(g.max_depth, 2);
        let e2e = g.end_to_end_us.as_ref().unwrap();
        // n1 chain: 1250-1000=250; n2 chain: 2100-1000=1100.
        assert_eq!(e2e.count, 2);
        assert_eq!(e2e.min, 250);
        assert_eq!(e2e.max, 1100);

        assert_eq!(report.edges[&(SOURCE_NODE, 1)].p50, 250);
        assert_eq!(report.edges[&(1, 2)].p50, 100);
        let text = report.render_text();
        assert!(text.contains("source -> n1"), "{text}");
        assert!(text.contains("2/2"), "{text}");
    }

    #[test]
    fn detects_incomplete_chain() {
        let mut events = two_hop_chain();
        events.remove(0); // lose the source's HopSend
        let report = stitch(&events);
        assert!(!report.all_chains_complete());
        let g = &report.generations[&0];
        assert_eq!(g.arrivals, 2);
        // n1's arrival can't prove its hop was source-sent; n2's walk
        // dead-ends at the same unmatched hop.
        assert_eq!(g.complete, 0);
        let text = report.render_text();
        assert!(text.contains("INCOMPLETE"), "{text}");
    }

    #[test]
    fn unmatched_recv_does_not_count_as_edge() {
        let events = vec![ev(
            1,
            Event::HopRecv { trace: 9, span: 1, node: 4, generation: 2, t_us: 10 },
        )];
        let report = stitch(&events);
        assert!(report.edges.is_empty());
        assert_eq!(report.generations[&2].arrivals, 1);
        assert_eq!(report.generations[&2].complete, 0);
    }

    fn repair_tree(closed: bool) -> Vec<TracedEvent> {
        let mut events = vec![
            ev(100, Event::SpanStart {
                trace: 50,
                span: 1,
                parent: 0,
                name: "repair".into(),
                node: 3,
            }),
            ev(101, Event::SpanStart {
                trace: 50,
                span: 2,
                parent: 1,
                name: "complain".into(),
                node: 3,
            }),
            ev(102, Event::SpanStart {
                trace: 50,
                span: 3,
                parent: 2,
                name: "splice".into(),
                node: 999,
            }),
            ev(103, Event::SpanStart {
                trace: 50,
                span: 4,
                parent: 3,
                name: "repair_complete".into(),
                node: 999,
            }),
            ev(104, Event::SpanEnd { trace: 50, span: 4, ok: true }),
            ev(105, Event::SpanEnd { trace: 50, span: 3, ok: true }),
            ev(106, Event::SpanEnd { trace: 50, span: 2, ok: true }),
        ];
        if closed {
            events.push(ev(110, Event::SpanEnd { trace: 50, span: 1, ok: true }));
        }
        events
    }

    #[test]
    fn closed_repair_episode_with_critical_path() {
        let report = stitch(&repair_tree(true));
        assert_eq!(report.episodes.len(), 1);
        assert!(report.all_repair_episodes_closed());
        let e = &report.episodes[0];
        assert_eq!(e.name, "repair");
        assert_eq!(e.node, 3);
        assert_eq!(e.ok, Some(true));
        assert_eq!(e.duration(), Some(10));
        assert_eq!(e.critical_path, vec!["repair", "complain", "splice", "repair_complete"]);
        assert_eq!(e.steps.len(), 4);
        assert_eq!(e.steps[0].depth, 0);
        assert_eq!(e.steps[3].depth, 3);
    }

    #[test]
    fn unclosed_episode_is_flagged() {
        let report = stitch(&repair_tree(false));
        assert!(!report.all_repair_episodes_closed());
        assert!(!report.episodes[0].closed);
        assert_eq!(report.episodes[0].ok, None);
    }

    #[test]
    fn orphan_span_end_is_counted_not_fatal() {
        let events = vec![ev(1, Event::SpanEnd { trace: 1, span: 99, ok: true })];
        let report = stitch(&events);
        assert_eq!(report.orphan_span_ends, 1);
        assert!(report.episodes.is_empty());
    }

    #[test]
    fn collapsed_stacks_cover_hops_and_spans() {
        let mut events = two_hop_chain();
        events.extend(repair_tree(true));
        let stacks = stitch(&events).collapsed_stacks();
        assert!(stacks.contains("path;source;n1 250\n"), "{stacks}");
        assert!(stacks.contains("path;source;n1;n2 100\n"), "{stacks}");
        assert!(stacks.contains("repair;complain;splice;repair_complete 1\n"), "{stacks}");
        // repair self-time: 10 total - 5 in complain = 5.
        assert!(stacks.lines().any(|l| l == "repair 5"), "{stacks}");
    }

    #[test]
    fn report_json_is_parseable_and_flags_totals() {
        let mut events = two_hop_chain();
        events.extend(repair_tree(true));
        let js = stitch(&events).to_json();
        let doc = crate::json::parse_document(&js).expect(&js);
        assert_eq!(
            doc.get("totals").unwrap().get("all_chains_complete").unwrap().as_bool(),
            Some(true)
        );
        assert_eq!(
            doc.get("totals").unwrap().get("all_repair_episodes_closed").unwrap().as_bool(),
            Some(true)
        );
        assert!(doc.get("hop_latency_us").unwrap().get("source->n1").is_some(), "{js}");
        assert_eq!(
            doc.get("generations").unwrap().get("g0").unwrap().get("complete").unwrap().as_i64(),
            Some(2)
        );
    }

    #[test]
    fn sentinel_nodes_get_readable_labels() {
        assert_eq!(node_label(SOURCE_NODE), "source");
        assert_eq!(node_label(COORDINATOR_NODE), "coordinator");
        assert_eq!(node_label(7), "n7");
    }

    #[test]
    fn latency_summary_nearest_rank() {
        let s = LatencySummary::from_samples((1..=100).collect()).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p95, 95);
        assert_eq!(s.p99, 99);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!(LatencySummary::from_samples(vec![]).is_none());
    }
}
