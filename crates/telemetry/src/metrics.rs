//! Counters, gauges and log₂-bucket histograms, snapshottable as JSON.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::json;

const BUCKETS: usize = 64;

#[derive(Debug)]
struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Bucket `i` counts values in `[2^(i-1), 2^i)`; bucket 0 is `< 1`.
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { count: 0, sum: 0.0, min: 0.0, max: 0.0, buckets: [0; BUCKETS] }
    }
}

impl Histogram {
    fn record(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        self.buckets[bucket_index(value)] += 1;
    }
}

fn bucket_index(value: f64) -> usize {
    if value.is_nan() || value < 1.0 {
        // Negative, NaN and sub-unit values all land in bucket 0.
        0
    } else {
        let exp = value.log2().floor();
        if exp >= (BUCKETS - 2) as f64 { BUCKETS - 1 } else { exp as usize + 1 }
    }
}

/// Inclusive upper edge of bucket `i` (`1.0` for bucket 0, `2^i` above).
fn bucket_upper_edge(i: usize) -> f64 {
    if i == 0 { 1.0 } else { (i as f64).exp2() }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A thread-safe registry of named counters, gauges and histograms.
///
/// Cloning is cheap (an `Arc` bump) and clones share state, so a registry
/// can live inside a sink while the experiment harness keeps a handle for
/// the final snapshot.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<Inner>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named monotonic counter.
    pub fn counter(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().unwrap();
        match inner.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                inner.counters.insert(name.to_owned(), delta);
            }
        }
    }

    /// Sets the named gauge to `value` (last write wins).
    pub fn gauge(&self, name: &str, value: f64) {
        self.inner.lock().unwrap().gauges.insert(name.to_owned(), value);
    }

    /// Records one observation into the named log₂-bucket histogram.
    pub fn histogram(&self, name: &str, value: f64) {
        self.inner
            .lock()
            .unwrap()
            .histograms
            .entry(name.to_owned())
            .or_default()
            .record(value);
    }

    /// Takes a consistent point-in-time snapshot of every metric.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner
                .histograms
                .iter()
                .map(|(name, h)| {
                    (name.clone(), HistogramSnapshot {
                        count: h.count,
                        sum: h.sum,
                        min: h.min,
                        max: h.max,
                        buckets: h.buckets.to_vec(),
                    })
                })
                .collect(),
        }
    }
}

/// Frozen histogram state: totals plus the log₂ bucket counts.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation (0 if empty).
    pub min: f64,
    /// Largest observation (0 if empty).
    pub max: f64,
    /// `buckets[0]` counts values `< 1`; `buckets[i]` counts `[2^(i-1), 2^i)`.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean observation, or 0 for an empty histogram.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 { 0.0 } else { self.sum / self.count as f64 }
    }

    /// Approximate `q`-quantile (`0.0..=1.0`) using bucket upper edges —
    /// accurate to within the 2× bucket resolution, which is enough for
    /// "p99 repair latency" style summaries.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_upper_edge(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Median summary quantile (see [`HistogramSnapshot::quantile`]).
    #[must_use]
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile summary quantile.
    #[must_use]
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile summary quantile.
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// A frozen view of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as a single JSON object, e.g.
    /// `{"counters":{...},"gauges":{...},"histograms":{"x":{"count":3,...}}}`.
    ///
    /// Histogram buckets are emitted sparsely as `"b<i>":count` pairs to
    /// keep empty histograms small.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_escaped(name, &mut out);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_escaped(name, &mut out);
            out.push(':');
            json::write_f64(*v, &mut out);
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_escaped(name, &mut out);
            out.push_str(":{\"count\":");
            out.push_str(&h.count.to_string());
            out.push_str(",\"sum\":");
            json::write_f64(h.sum, &mut out);
            out.push_str(",\"min\":");
            json::write_f64(h.min, &mut out);
            out.push_str(",\"max\":");
            json::write_f64(h.max, &mut out);
            out.push_str(",\"p50\":");
            json::write_f64(h.p50(), &mut out);
            out.push_str(",\"p95\":");
            json::write_f64(h.p95(), &mut out);
            out.push_str(",\"p99\":");
            json::write_f64(h.p99(), &mut out);
            for (b, &n) in h.buckets.iter().enumerate() {
                if n > 0 {
                    out.push_str(&format!(",\"b{b}\":{n}"));
                }
            }
            out.push('}');
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let m = MetricsRegistry::new();
        m.counter("packets", 3);
        m.counter("packets", 4);
        m.gauge("rank", 1.0);
        m.gauge("rank", 5.0);
        let snap = m.snapshot();
        assert_eq!(snap.counters["packets"], 7);
        assert_eq!(snap.gauges["rank"], 5.0);
    }

    #[test]
    fn clones_share_state() {
        let m = MetricsRegistry::new();
        let m2 = m.clone();
        m2.counter("x", 1);
        assert_eq!(m.snapshot().counters["x"], 1);
    }

    #[test]
    fn histogram_tracks_totals_and_quantiles() {
        let m = MetricsRegistry::new();
        for v in [0.5, 2.0, 3.0, 100.0] {
            m.histogram("latency", v);
        }
        let snap = m.snapshot();
        let h = &snap.histograms["latency"];
        assert_eq!(h.count, 4);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 100.0);
        assert!((h.mean() - 26.375).abs() < 1e-9);
        // p50 lands in the [2,4) bucket → upper edge 4.
        assert_eq!(h.quantile(0.5), 4.0);
        assert_eq!(h.quantile(1.0), 100.0);
        assert_eq!(HistogramSnapshot {
            count: 0, sum: 0.0, min: 0.0, max: 0.0, buckets: vec![]
        }.quantile(0.5), 0.0);
    }

    #[test]
    fn extreme_values_stay_in_range() {
        assert_eq!(bucket_index(-5.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(f64::INFINITY), BUCKETS - 1);
        assert_eq!(bucket_index(1e300), BUCKETS - 1);
        assert_eq!(bucket_index(0.99), 0);
        assert_eq!(bucket_index(1.0), 1);
        assert_eq!(bucket_index(2.0), 2);
    }

    #[test]
    fn summary_quantiles_match_known_distributions() {
        // Uniform 1..=1000: p50 ≈ 500, p95 ≈ 950, p99 ≈ 990. The log₂
        // buckets resolve to their upper edge, so assert the edge the
        // true quantile's bucket maps to (within 2× of the true value).
        let m = MetricsRegistry::new();
        for v in 1..=1000 {
            m.histogram("uniform", v as f64);
        }
        let h = &m.snapshot().histograms["uniform"];
        assert_eq!(h.p50(), 512.0); // 500 ∈ [256,512) → edge 512
        assert_eq!(h.p95(), 1000.0); // 950 ∈ [512,1024) → edge 1024, clamped to max
        assert_eq!(h.p99(), 1000.0);
        assert!(h.p50() <= h.p95() && h.p95() <= h.p99());

        // Heavily skewed: 99 fast observations and one slow outlier —
        // p50 stays in the fast bucket, p99 reaches for the outlier.
        let m = MetricsRegistry::new();
        for _ in 0..99 {
            m.histogram("skew", 2.0);
        }
        m.histogram("skew", 4096.0);
        let h = &m.snapshot().histograms["skew"];
        assert_eq!(h.p50(), 4.0); // 2.0 ∈ [2,4) → edge 4
        assert_eq!(h.p95(), 4.0);
        assert_eq!(h.p99(), 4.0); // 99th of 100 is still a fast one
        assert_eq!(h.quantile(1.0), 4096.0);

        // Constant distribution: every summary is (clamped to) the value.
        let m = MetricsRegistry::new();
        for _ in 0..10 {
            m.histogram("const", 7.0);
        }
        let h = &m.snapshot().histograms["const"];
        assert_eq!((h.p50(), h.p95(), h.p99()), (7.0, 7.0, 7.0));

        // Empty histogram: all zeros, no panic.
        let empty = HistogramSnapshot { count: 0, sum: 0.0, min: 0.0, max: 0.0, buckets: vec![] };
        assert_eq!((empty.p50(), empty.p95(), empty.p99()), (0.0, 0.0, 0.0));
    }

    #[test]
    fn snapshot_json_carries_summary_quantiles() {
        let m = MetricsRegistry::new();
        for v in [1.0, 2.0, 3.0] {
            m.histogram("h", v);
        }
        let js = m.snapshot().to_json();
        assert!(js.contains("\"p50\":"), "{js}");
        assert!(js.contains("\"p95\":"), "{js}");
        assert!(js.contains("\"p99\":"), "{js}");
    }

    #[test]
    fn snapshot_json_is_parseable_shape() {
        let m = MetricsRegistry::new();
        m.counter("a", 1);
        m.gauge("g", 2.5);
        m.histogram("h", 3.0);
        let js = m.snapshot().to_json();
        assert!(js.starts_with("{\"counters\":{"), "{js}");
        assert!(js.contains("\"a\":1"), "{js}");
        assert!(js.contains("\"g\":2.5"), "{js}");
        assert!(js.contains("\"count\":1"), "{js}");
        assert!(js.contains("\"b2\":1"), "{js}");
    }
}
