//! The curtain overlay of Jain, Lovász & Chou (PODC 2005).
//!
//! *"Imagine that the server is a curtain rod with `k` threads hanging, each
//! thread representing a stream. When a node joins the network it picks `d`
//! threads at random and clips them together."*
//!
//! This crate implements that scheme in full:
//!
//! * [`ThreadMatrix`] — the server-side matrix `M` (`N′ × k`, `d` ones per
//!   row) that mirrors the topology, with append / random-position insert /
//!   splice-out operations (§3, §5).
//! * [`OverlayGraph`] — the induced DAG (edges between consecutive holders
//!   of each thread) and unit-capacity max-flow *edge connectivity* from the
//!   server, the quantity network coding turns into throughput (§4).
//! * [`defect`] — the paper's potential function `B^t` (total defect over
//!   hanging-thread `d`-tuples): exact enumeration for small `k`,
//!   Monte-Carlo estimation for large (§4, Lemmas 2–7).
//! * [`CurtainServer`] / [`CurtainNetwork`] — the hello / good-bye / repair
//!   protocols and the congestion drop/restore extension (§3, §5).
//! * [`churn`] — randomized join/leave/fail drivers for long-running
//!   experiments.
//! * [`adversary`] — coordinated-failure cohorts (§5): batch failures of
//!   random vs adjacent-in-`M` user sets, under append vs random-insert
//!   placement.
//! * [`random_graph`] — the §6 low-delay variant where a new node inserts
//!   itself into `d` random *edges* instead of hanging threads.
//!
//! # Example
//!
//! ```
//! use curtain_overlay::{CurtainNetwork, OverlayConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let mut net = CurtainNetwork::new(OverlayConfig::new(16, 3)).expect("valid config");
//! let nodes: Vec<_> = (0..50).map(|_| net.join(&mut rng)).collect();
//!
//! // Without failures every node enjoys full connectivity d:
//! assert!(nodes.iter().all(|&n| net.connectivity_of(n) == Some(3)));
//!
//! // A failure hurts (at most) its children, and repair heals them:
//! net.fail(nodes[0]).unwrap();
//! net.repair(nodes[0]).unwrap();
//! assert!(nodes[1..].iter().all(|&n| net.connectivity_of(n) == Some(3)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod churn;
pub mod defect;
mod error;
pub mod forest;
pub mod gossip;
mod graph;
mod matrix;
mod network;
pub mod random_graph;
mod server;
pub mod snapshot;
mod types;

pub use error::OverlayError;
pub use graph::{FlowNetwork, OverlayGraph};
pub use matrix::{Row, ThreadMatrix};
pub use network::CurtainNetwork;
pub use server::{CurtainServer, JoinGrant, Redirect, RepairPlan, ServerMetrics};
pub use types::{Holder, InsertPolicy, NodeId, NodeStatus, OverlayConfig, ThreadId};
