//! High-level facade combining the server and common queries.

use rand::Rng;

use crate::error::OverlayError;
use crate::graph::OverlayGraph;
use crate::matrix::ThreadMatrix;
use crate::server::{CurtainServer, ServerMetrics};
use crate::types::{NodeId, NodeStatus, OverlayConfig};

/// A complete curtain overlay: the server plus convenience queries.
///
/// This is the type most examples and experiments drive. It hides the
/// plan/grant plumbing of [`CurtainServer`] behind simple verbs and adds
/// aggregate measurements (connectivity histograms, depth profiles).
///
/// # Example
///
/// ```
/// use curtain_overlay::{CurtainNetwork, OverlayConfig};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut net = CurtainNetwork::new(OverlayConfig::new(12, 3)).expect("valid config");
/// for _ in 0..20 {
///     net.join(&mut rng);
/// }
/// assert_eq!(net.len(), 20);
/// assert_eq!(net.min_working_connectivity(), Some(3));
/// ```
#[derive(Debug, Clone)]
pub struct CurtainNetwork {
    server: CurtainServer,
}

impl CurtainNetwork {
    /// Creates an empty network.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::InvalidConfig`] on structural violations.
    pub fn new(config: OverlayConfig) -> Result<Self, OverlayError> {
        Ok(CurtainNetwork { server: CurtainServer::new(config)? })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> OverlayConfig {
        self.server.config()
    }

    /// Read access to the underlying server.
    #[must_use]
    pub fn server(&self) -> &CurtainServer {
        &self.server
    }

    /// Mutable access to the underlying server (for protocol-level tests
    /// and the congestion verbs).
    pub fn server_mut(&mut self) -> &mut CurtainServer {
        &mut self.server
    }

    /// Installs a telemetry recorder on the underlying server (see
    /// [`CurtainServer::set_recorder`]).
    pub fn set_recorder(&mut self, recorder: curtain_telemetry::SharedRecorder) {
        self.server.set_recorder(recorder);
    }

    /// The server's telemetry handle (null unless installed).
    #[must_use]
    pub fn recorder(&self) -> &curtain_telemetry::SharedRecorder {
        self.server.recorder()
    }

    /// Read access to the matrix `M`.
    #[must_use]
    pub fn matrix(&self) -> &ThreadMatrix {
        self.server.matrix()
    }

    /// Server metrics so far.
    #[must_use]
    pub fn metrics(&self) -> ServerMetrics {
        self.server.metrics()
    }

    /// Number of member rows (working + failed).
    #[must_use]
    pub fn len(&self) -> usize {
        self.matrix().len()
    }

    /// True iff the network has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.matrix().is_empty()
    }

    /// Number of working members.
    #[must_use]
    pub fn working_len(&self) -> usize {
        self.matrix().working_len()
    }

    /// Ids of all members, in matrix order.
    #[must_use]
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.matrix().rows().iter().map(|r| r.node()).collect()
    }

    /// Ids of failed members awaiting repair.
    #[must_use]
    pub fn failed_nodes(&self) -> Vec<NodeId> {
        self.matrix().failed_nodes()
    }

    /// Joins a new working node, returning its id.
    pub fn join<R: Rng + ?Sized>(&mut self, rng: &mut R) -> NodeId {
        self.server.hello(rng).node
    }

    /// Joins a node that is *already failed* — the §4 analysis process where
    /// each arrival fails with probability `p` before joining.
    pub fn join_failed<R: Rng + ?Sized>(&mut self, rng: &mut R) -> NodeId {
        self.server.admit(rng, NodeStatus::Failed).node
    }

    /// Joins a node, failed with probability `p` (the paper's coin toss).
    pub fn join_with_failure_prob<R: Rng + ?Sized>(&mut self, p: f64, rng: &mut R) -> NodeId {
        use rand::RngExt as _;
        if rng.random_bool(p) {
            self.join_failed(rng)
        } else {
            self.join(rng)
        }
    }

    /// Graceful leave.
    ///
    /// # Errors
    ///
    /// See [`CurtainServer::goodbye`].
    pub fn leave(&mut self, node: NodeId) -> Result<(), OverlayError> {
        self.server.goodbye(node).map(|_| ())
    }

    /// Marks a node failed (children complain to the server).
    ///
    /// # Errors
    ///
    /// See [`CurtainServer::report_failure`].
    pub fn fail(&mut self, node: NodeId) -> Result<(), OverlayError> {
        self.server.report_failure(node).map(|_| ())
    }

    /// Repairs (splices out) a failed node.
    ///
    /// # Errors
    ///
    /// See [`CurtainServer::repair`].
    pub fn repair(&mut self, node: NodeId) -> Result<(), OverlayError> {
        self.server.repair(node).map(|_| ())
    }

    /// Repairs every failed node, returning how many were repaired.
    pub fn repair_all(&mut self) -> usize {
        let failed = self.failed_nodes();
        let count = failed.len();
        for node in failed {
            self.server.repair(node).expect("listed as failed");
        }
        count
    }

    /// Builds the current overlay graph.
    #[must_use]
    pub fn graph(&self) -> OverlayGraph {
        self.server.graph()
    }

    /// Edge connectivity of a node from the server; `None` if the node is
    /// not a member or has failed.
    #[must_use]
    pub fn connectivity_of(&self, node: NodeId) -> Option<usize> {
        let pos = self.matrix().position_of(node)?;
        if self.matrix().row(pos).status() == NodeStatus::Failed {
            return None;
        }
        Some(self.graph().connectivity_of_position(pos))
    }

    /// Edge connectivity of the row at `index`; `None` if out of range or
    /// failed.
    #[must_use]
    pub fn connectivity_of_index(&self, index: usize) -> Option<usize> {
        if index >= self.len() || self.matrix().row(index).status() == NodeStatus::Failed {
            return None;
        }
        Some(self.graph().connectivity_of_position(index))
    }

    /// Histogram of working nodes' connectivities: `hist[c]` = number of
    /// working nodes with connectivity `c` (length `d + 1`).
    #[must_use]
    pub fn working_connectivity_histogram(&self) -> Vec<u64> {
        let d = self.config().d;
        let graph = self.graph();
        let mut hist = vec![0u64; d + 1];
        for (pos, row) in self.matrix().rows().iter().enumerate() {
            if row.status() == NodeStatus::Working {
                let c = graph.connectivity_of_position(pos).min(d);
                hist[c] += 1;
            }
        }
        hist
    }

    /// Mean connectivity loss (in thread units, `d − connectivity`) over
    /// working nodes; `None` if there are none.
    #[must_use]
    pub fn mean_working_connectivity_loss(&self) -> Option<f64> {
        let hist = self.working_connectivity_histogram();
        let total: u64 = hist.iter().sum();
        if total == 0 {
            return None;
        }
        let d = self.config().d;
        let lost: u64 = hist
            .iter()
            .enumerate()
            .map(|(c, &n)| (d - c) as u64 * n)
            .sum();
        Some(lost as f64 / total as f64)
    }

    /// Minimum connectivity among working nodes; `None` if there are none.
    #[must_use]
    pub fn min_working_connectivity(&self) -> Option<usize> {
        let hist = self.working_connectivity_histogram();
        hist.iter().position(|&n| n > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(k: usize, d: usize) -> CurtainNetwork {
        CurtainNetwork::new(OverlayConfig::new(k, d)).unwrap()
    }

    #[test]
    fn joins_and_full_connectivity() {
        let mut n = net(12, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let ids: Vec<NodeId> = (0..40).map(|_| n.join(&mut rng)).collect();
        assert_eq!(n.len(), 40);
        assert_eq!(n.working_len(), 40);
        for id in ids {
            assert_eq!(n.connectivity_of(id), Some(3));
        }
        assert_eq!(n.min_working_connectivity(), Some(3));
        assert_eq!(n.mean_working_connectivity_loss(), Some(0.0));
    }

    #[test]
    fn graceful_leave_keeps_everyone_at_d() {
        let mut n = net(10, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let ids: Vec<NodeId> = (0..30).map(|_| n.join(&mut rng)).collect();
        for &id in ids.iter().step_by(3) {
            n.leave(id).unwrap();
        }
        assert_eq!(n.len(), 20);
        assert_eq!(n.min_working_connectivity(), Some(2));
    }

    #[test]
    fn failure_hurts_then_repair_heals() {
        let mut n = net(8, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let ids: Vec<NodeId> = (0..25).map(|_| n.join(&mut rng)).collect();
        n.fail(ids[3]).unwrap();
        assert_eq!(n.connectivity_of(ids[3]), None);
        assert_eq!(n.working_len(), 24);
        assert_eq!(n.failed_nodes(), vec![ids[3]]);
        // Someone may have lost connectivity; after repair all is back to d.
        assert_eq!(n.repair_all(), 1);
        assert_eq!(n.min_working_connectivity(), Some(2));
        assert_eq!(n.len(), 24);
    }

    #[test]
    fn join_with_failure_prob_extremes() {
        let mut n = net(8, 2);
        let mut rng = StdRng::seed_from_u64(4);
        let a = n.join_with_failure_prob(0.0, &mut rng);
        let b = n.join_with_failure_prob(1.0, &mut rng);
        assert_eq!(n.matrix().status_of(a), Some(NodeStatus::Working));
        assert_eq!(n.matrix().status_of(b), Some(NodeStatus::Failed));
    }

    #[test]
    fn histogram_sums_to_working_count() {
        let mut n = net(8, 3);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            n.join_with_failure_prob(0.3, &mut rng);
        }
        let hist = n.working_connectivity_histogram();
        assert_eq!(hist.iter().sum::<u64>() as usize, n.working_len());
    }

    #[test]
    fn unknown_node_queries() {
        let n = net(8, 2);
        assert_eq!(n.connectivity_of(NodeId(5)), None);
        assert_eq!(n.connectivity_of_index(0), None);
        assert!(n.is_empty());
        assert_eq!(n.mean_working_connectivity_loss(), None);
        assert_eq!(n.min_working_connectivity(), None);
    }
}
