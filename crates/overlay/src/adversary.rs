//! Coordinated (adversarial) failure cohorts — §5.
//!
//! An adversary cannot inject bad data (assumed handled by security means)
//! but *can* fail on purpose, possibly simultaneously with accomplices. The
//! paper argues that as long as the adversaries' **positions in `M` are
//! random**, a simultaneous strike of a `p`-fraction is no worse than iid
//! failures — and enforces random positions via random row insertion.
//!
//! This module builds the cohorts the experiment compares:
//!
//! * [`Cohort::RandomFraction`] — a uniformly random `p`-fraction (the iid
//!   benchmark).
//! * [`Cohort::LatestBlock`] — the most recently joined `p`-fraction. Under
//!   [`crate::InsertPolicy::Append`] these sit *adjacent at the bottom* of
//!   `M`, modelling a flash crowd of colluders; under
//!   [`crate::InsertPolicy::RandomPosition`] their rows are scattered and
//!   the strike reverts to the random case.
//! * [`Cohort::ContiguousBlock`] — a worst-case adjacent run of rows
//!   (adversaries who somehow achieved adjacency).

use rand::Rng;

use crate::network::CurtainNetwork;
use crate::types::{NodeId, NodeStatus};

/// A rule for selecting which members strike.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Cohort {
    /// A uniformly random fraction `p` of current working members.
    RandomFraction(f64),
    /// The `p`-fraction of members with the *highest* node ids (latest
    /// arrivals).
    LatestBlock(f64),
    /// A contiguous run of rows of length `p·N` starting at the given
    /// fraction of the matrix height.
    ContiguousBlock {
        /// Fraction of members to strike.
        fraction: f64,
        /// Start of the run as a fraction of the matrix height in `[0, 1]`.
        start: f64,
    },
}

impl Cohort {
    /// Selects the member nodes that will strike.
    ///
    /// # Panics
    ///
    /// Panics if a fraction is outside `[0, 1]`.
    #[must_use]
    pub fn select<R: Rng + ?Sized>(&self, net: &CurtainNetwork, rng: &mut R) -> Vec<NodeId> {
        let working: Vec<NodeId> = net
            .matrix()
            .rows()
            .iter()
            .filter(|r| r.status() == NodeStatus::Working)
            .map(|r| r.node())
            .collect();
        match *self {
            Cohort::RandomFraction(p) => {
                assert!((0.0..=1.0).contains(&p), "fraction out of range");
                let count = (working.len() as f64 * p).round() as usize;
                let idx = rand::seq::index::sample(rng, working.len(), count.min(working.len()));
                idx.into_iter().map(|i| working[i]).collect()
            }
            Cohort::LatestBlock(p) => {
                assert!((0.0..=1.0).contains(&p), "fraction out of range");
                let count = (working.len() as f64 * p).round() as usize;
                let mut by_arrival = working.clone();
                by_arrival.sort_unstable(); // NodeId order == arrival order
                by_arrival[by_arrival.len() - count.min(by_arrival.len())..].to_vec()
            }
            Cohort::ContiguousBlock { fraction, start } => {
                assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
                assert!((0.0..=1.0).contains(&start), "start out of range");
                // Work in row order: a literal block of the matrix.
                let rows: Vec<NodeId> = net
                    .matrix()
                    .rows()
                    .iter()
                    .filter(|r| r.status() == NodeStatus::Working)
                    .map(|r| r.node())
                    .collect();
                let count = (rows.len() as f64 * fraction).round() as usize;
                let begin = ((rows.len() as f64 * start) as usize)
                    .min(rows.len().saturating_sub(count));
                rows[begin..(begin + count).min(rows.len())].to_vec()
            }
        }
    }
}

/// Outcome of a strike on the network.
#[derive(Debug, Clone, PartialEq)]
pub struct StrikeReport {
    /// How many nodes failed simultaneously.
    pub struck: usize,
    /// Histogram of the *surviving* working nodes' connectivities
    /// (`hist[c]` = count with connectivity `c`).
    pub survivor_connectivity: Vec<u64>,
    /// Mean connectivity loss (thread units) among survivors.
    pub mean_loss: f64,
    /// Fraction of survivors with any loss at all.
    pub affected_fraction: f64,
    /// Fraction of survivors completely disconnected (connectivity 0).
    pub disconnected_fraction: f64,
}

/// Fails every node in `cohort` simultaneously and measures the damage to
/// the survivors. The network is left in the post-strike state (callers may
/// then exercise repair).
#[must_use]
pub fn strike(net: &mut CurtainNetwork, cohort: &[NodeId]) -> StrikeReport {
    let mut struck = 0;
    for &node in cohort {
        if net.fail(node).is_ok() {
            struck += 1;
        }
    }
    let hist = net.working_connectivity_histogram();
    let d = net.config().d;
    let total: u64 = hist.iter().sum();
    let (mut lost, mut affected, mut disconnected) = (0u64, 0u64, 0u64);
    for (c, &n) in hist.iter().enumerate() {
        lost += (d - c) as u64 * n;
        if c < d {
            affected += n;
        }
        if c == 0 {
            disconnected += n;
        }
    }
    let denom = total.max(1) as f64;
    StrikeReport {
        struck,
        survivor_connectivity: hist,
        mean_loss: lost as f64 / denom,
        affected_fraction: affected as f64 / denom,
        disconnected_fraction: disconnected as f64 / denom,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{InsertPolicy, OverlayConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grown(policy: InsertPolicy, n: usize, seed: u64) -> CurtainNetwork {
        let cfg = OverlayConfig::new(16, 3).with_insert_policy(policy);
        let mut net = CurtainNetwork::new(cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..n {
            net.join(&mut rng);
        }
        net
    }

    #[test]
    fn random_fraction_selects_expected_count() {
        let net = grown(InsertPolicy::Append, 100, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let cohort = Cohort::RandomFraction(0.2).select(&net, &mut rng);
        assert_eq!(cohort.len(), 20);
        let unique: std::collections::HashSet<_> = cohort.iter().collect();
        assert_eq!(unique.len(), 20);
    }

    #[test]
    fn latest_block_selects_newest_ids() {
        let net = grown(InsertPolicy::Append, 50, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let cohort = Cohort::LatestBlock(0.1).select(&net, &mut rng);
        assert_eq!(cohort.len(), 5);
        let min_id = cohort.iter().map(|n| n.0).min().unwrap();
        assert!(min_id >= 45, "latest block must hold the newest arrivals");
    }

    #[test]
    fn contiguous_block_is_adjacent_in_matrix() {
        let net = grown(InsertPolicy::Append, 40, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let cohort = Cohort::ContiguousBlock { fraction: 0.25, start: 0.5 }.select(&net, &mut rng);
        assert_eq!(cohort.len(), 10);
        let positions: Vec<usize> = cohort
            .iter()
            .map(|&n| net.matrix().position_of(n).unwrap())
            .collect();
        for w in positions.windows(2) {
            assert_eq!(w[1], w[0] + 1, "block must be contiguous");
        }
    }

    #[test]
    fn strike_report_is_consistent() {
        let mut net = grown(InsertPolicy::Append, 80, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let cohort = Cohort::RandomFraction(0.1).select(&net, &mut rng);
        let report = strike(&mut net, &cohort);
        assert_eq!(report.struck, 8);
        assert_eq!(
            report.survivor_connectivity.iter().sum::<u64>() as usize,
            net.working_len()
        );
        assert!(report.mean_loss >= 0.0);
        assert!(report.affected_fraction <= 1.0);
        assert!(report.disconnected_fraction <= report.affected_fraction);
    }

    #[test]
    fn strike_on_empty_cohort_is_noop() {
        let mut net = grown(InsertPolicy::Append, 10, 9);
        let report = strike(&mut net, &[]);
        assert_eq!(report.struck, 0);
        assert_eq!(report.mean_loss, 0.0);
    }

    #[test]
    fn random_insert_scatters_latest_block() {
        // Under RandomPosition, the latest arrivals are spread across M.
        let net = grown(InsertPolicy::RandomPosition, 200, 10);
        let mut rng = StdRng::seed_from_u64(11);
        let cohort = Cohort::LatestBlock(0.1).select(&net, &mut rng);
        let mut positions: Vec<usize> = cohort
            .iter()
            .map(|&n| net.matrix().position_of(n).unwrap())
            .collect();
        positions.sort_unstable();
        let adjacent = positions
            .windows(2)
            .filter(|w| w[1] == w[0] + 1)
            .count();
        assert!(
            adjacent < positions.len() / 2,
            "random insertion should scatter the cohort (adjacent = {adjacent})"
        );
    }
}
