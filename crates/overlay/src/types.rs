//! Identifiers, configuration and small value types for the overlay.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifies a client node. Never reused within one network's lifetime.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u64);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies one of the server's `k` threads (columns of the matrix `M`).
pub type ThreadId = u16;

/// Who currently holds the upper end of an edge: the server (curtain rod) or
/// a client node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Holder {
    /// The server itself (the thread has no holder above this point).
    Server,
    /// A client node.
    Node(NodeId),
}

impl Holder {
    /// The node id if this is a client, `None` for the server.
    #[must_use]
    pub fn node(self) -> Option<NodeId> {
        match self {
            Holder::Server => None,
            Holder::Node(n) => Some(n),
        }
    }
}

impl fmt::Display for Holder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Holder::Server => write!(f, "server"),
            Holder::Node(n) => write!(f, "{n}"),
        }
    }
}

/// Whether a row in `M` corresponds to a live or a failed node.
///
/// The paper's analysis (§4) tags each row: a node "joins as a failed node
/// with probability p" — the tag models a node that fails within the repair
/// interval. Failed nodes absorb their incoming streams and forward nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum NodeStatus {
    /// The node relays streams normally.
    #[default]
    Working,
    /// The node has failed (non-ergodically) and is awaiting repair.
    Failed,
}

/// Where a new row is placed in `M` when a node joins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum InsertPolicy {
    /// Append at the bottom — the basic §3 protocol ("newly arriving nodes
    /// clip the threads at the bottom").
    #[default]
    Append,
    /// Insert at a uniformly random position — the §5 hardening that makes
    /// coordinated adversarial arrivals equivalent to random failures.
    RandomPosition,
}

/// Static parameters of a curtain overlay.
///
/// `k` is the server bandwidth in thread units; `d` is the per-node
/// in/out-degree. The paper's theorems assume `d ≥ 2` and `k ≥ c·d²`;
/// the constructor enforces only the structural requirement `1 ≤ d ≤ k`
/// so that degenerate baselines (chains, `d = 1`) can be built for the
/// comparison experiments — theory experiments choose their own parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OverlayConfig {
    /// Number of server threads (columns of `M`).
    pub k: usize,
    /// Threads per node (ones per row of `M`).
    pub d: usize,
    /// Row placement policy.
    pub insert_policy: InsertPolicy,
}

impl OverlayConfig {
    /// Creates a configuration with the default [`InsertPolicy::Append`].
    #[must_use]
    pub fn new(k: usize, d: usize) -> Self {
        OverlayConfig { k, d, insert_policy: InsertPolicy::Append }
    }

    /// Selects the row placement policy.
    #[must_use]
    pub fn with_insert_policy(mut self, policy: InsertPolicy) -> Self {
        self.insert_policy = policy;
        self
    }

    /// Validates the structural constraints.
    ///
    /// # Errors
    ///
    /// Returns [`crate::OverlayError::InvalidConfig`] if `d == 0`, `k == 0`,
    /// `d > k`, or `k` exceeds the `ThreadId` range.
    pub fn validate(&self) -> Result<(), crate::OverlayError> {
        if self.d == 0 || self.k == 0 || self.d > self.k || self.k > ThreadId::MAX as usize {
            return Err(crate::OverlayError::InvalidConfig { k: self.k, d: self.d });
        }
        Ok(())
    }

    /// True iff the parameters satisfy the paper's analytical assumptions
    /// (`d ≥ 2`; `k ≥ d²`).
    #[must_use]
    pub fn satisfies_theory_assumptions(&self) -> bool {
        self.d >= 2 && self.k >= self.d * self.d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(OverlayConfig::new(8, 2).validate().is_ok());
        assert!(OverlayConfig::new(8, 8).validate().is_ok());
        assert!(OverlayConfig::new(8, 9).validate().is_err());
        assert!(OverlayConfig::new(0, 0).validate().is_err());
        assert!(OverlayConfig::new(8, 0).validate().is_err());
    }

    #[test]
    fn theory_assumptions() {
        assert!(OverlayConfig::new(16, 4).satisfies_theory_assumptions());
        assert!(!OverlayConfig::new(15, 4).satisfies_theory_assumptions());
        assert!(!OverlayConfig::new(16, 1).satisfies_theory_assumptions());
    }

    #[test]
    fn display_impls() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(Holder::Server.to_string(), "server");
        assert_eq!(Holder::Node(NodeId(1)).to_string(), "n1");
    }

    #[test]
    fn holder_node_accessor() {
        assert_eq!(Holder::Server.node(), None);
        assert_eq!(Holder::Node(NodeId(9)).node(), Some(NodeId(9)));
    }
}
