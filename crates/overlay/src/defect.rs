//! The paper's potential function: defect counts over hanging-thread tuples.
//!
//! §4 defines, for the network after `t` arrivals, `B_j^t` = the number of
//! `d`-tuples of hanging threads whose edge connectivity from the server is
//! `d − j`, and the *total defect* `B^t = Σ j · B_j^t` out of
//! `A = C(k, d)` tuples. Lemma 2 identifies `E[B_1 + … + B_d]/A` with the
//! probability that a newly arriving node picks a bad tuple, and Lemma 3
//! identifies `E[B]/A` with its expected bandwidth loss; Theorem 4 bounds
//! the steady state by `(1+ε)·p·d`.
//!
//! [`exact`] enumerates all `C(k, d)` tuples (feasible for small `k`);
//! [`sample`] Monte-Carlo-estimates the same distribution for large `k`.

use rand::Rng;

use crate::graph::OverlayGraph;
use crate::matrix::ThreadMatrix;
use crate::types::ThreadId;

/// Defect distribution over `d`-tuples of hanging threads.
///
/// `histogram[j]` counts (or estimates) tuples with connectivity `d − j`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefectCounts {
    /// Tuple size `d`.
    pub d: usize,
    /// `histogram[j]` = number of inspected tuples that lost `j` units.
    pub histogram: Vec<u64>,
    /// Number of tuples inspected (`A` for [`exact`], the sample size for
    /// [`sample`]).
    pub inspected: u64,
}

impl DefectCounts {
    /// `B/A` — the *total defect fraction*, equal to the expected bandwidth
    /// loss (in thread units) of a node arriving now, divided by `d`... more
    /// precisely: `Σ j·B_j / A`, the paper's `E[B]/A` (Lemma 3).
    #[must_use]
    pub fn total_defect_fraction(&self) -> f64 {
        if self.inspected == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .histogram
            .iter()
            .enumerate()
            .map(|(j, &b)| j as u64 * b)
            .sum();
        weighted as f64 / self.inspected as f64
    }

    /// `(B_1 + … + B_d)/A` — the probability that an arriving node picks a
    /// defective tuple at all (Lemma 2).
    #[must_use]
    pub fn defective_fraction(&self) -> f64 {
        if self.inspected == 0 {
            return 0.0;
        }
        let bad: u64 = self.histogram.iter().skip(1).sum();
        bad as f64 / self.inspected as f64
    }

    /// Expected *fraction of bandwidth* lost by an arriving node: `B/(A·d)`
    /// (each lost unit is `1/d` of the node's bandwidth) — the quantity §7
    /// argues is ≈ `p` independent of `d`.
    #[must_use]
    pub fn bandwidth_loss_fraction(&self) -> f64 {
        self.total_defect_fraction() / self.d as f64
    }

    /// Absolute total defect `B` (only meaningful for [`exact`]).
    #[must_use]
    pub fn total_defect(&self) -> u64 {
        self.histogram
            .iter()
            .enumerate()
            .map(|(j, &b)| j as u64 * b)
            .sum()
    }

    /// Variance of the per-tuple loss `j` (used by the §7 variance-vs-d
    /// experiment).
    #[must_use]
    pub fn loss_variance(&self) -> f64 {
        if self.inspected == 0 {
            return 0.0;
        }
        let mean = self.total_defect_fraction();
        let sq: f64 = self
            .histogram
            .iter()
            .enumerate()
            .map(|(j, &b)| (j as f64 - mean).powi(2) * b as f64)
            .sum();
        sq / self.inspected as f64
    }
}

/// Exactly enumerates all `C(k, d)` hanging-thread tuples.
///
/// Cost: `C(k, d)` max-flow computations; intended for the small-`k`
/// regimes of experiments E03/E04 (e.g. `k ≤ 16`, `d ≤ 3`).
///
/// # Panics
///
/// Panics if `d == 0` or `d > k`.
#[must_use]
pub fn exact(matrix: &ThreadMatrix, d: usize) -> DefectCounts {
    assert!(d > 0 && d <= matrix.k(), "invalid tuple size d={d} for k={}", matrix.k());
    let graph = OverlayGraph::from_matrix(matrix);
    let mut histogram = vec![0u64; d + 1];
    let mut inspected = 0u64;
    let mut tuple: Vec<ThreadId> = (0..d as ThreadId).collect();
    loop {
        let conn = graph.tuple_connectivity(&tuple);
        histogram[d - conn] += 1;
        inspected += 1;
        if !next_combination(&mut tuple, matrix.k()) {
            break;
        }
    }
    DefectCounts { d, histogram, inspected }
}

/// Monte-Carlo estimate of the defect distribution from `samples` random
/// tuples.
///
/// # Panics
///
/// Panics if `d == 0`, `d > k`, or `samples == 0`.
#[must_use]
pub fn sample<R: Rng + ?Sized>(
    matrix: &ThreadMatrix,
    d: usize,
    samples: u64,
    rng: &mut R,
) -> DefectCounts {
    assert!(d > 0 && d <= matrix.k(), "invalid tuple size d={d} for k={}", matrix.k());
    assert!(samples > 0, "need at least one sample");
    let graph = OverlayGraph::from_matrix(matrix);
    let mut histogram = vec![0u64; d + 1];
    for _ in 0..samples {
        let tuple = matrix.sample_threads(d, rng);
        let conn = graph.tuple_connectivity(&tuple);
        histogram[d - conn] += 1;
    }
    DefectCounts { d, histogram, inspected: samples }
}

/// Advances `tuple` to the next lexicographic `d`-combination of `0..k`.
/// Returns `false` after the last combination.
fn next_combination(tuple: &mut [ThreadId], k: usize) -> bool {
    let d = tuple.len();
    let mut i = d;
    while i > 0 {
        i -= 1;
        if (tuple[i] as usize) < k - d + i {
            tuple[i] += 1;
            for j in i + 1..d {
                tuple[j] = tuple[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

/// `C(n, r)` in u64 (panics on overflow) — sizes of the tuple space.
///
/// # Panics
///
/// Panics if the result overflows `u64`.
#[must_use]
pub fn binomial(n: u64, r: u64) -> u64 {
    if r > n {
        return 0;
    }
    let r = r.min(n - r);
    let mut acc: u64 = 1;
    for i in 0..r {
        acc = acc
            .checked_mul(n - i)
            .expect("binomial overflow")
            / (i + 1);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{NodeId, NodeStatus};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(16, 3), 560);
        assert_eq!(binomial(4, 0), 1);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(60, 1), 60);
    }

    #[test]
    fn next_combination_enumerates_all() {
        let mut t: Vec<ThreadId> = vec![0, 1];
        let mut count = 1;
        while next_combination(&mut t, 5) {
            count += 1;
            assert!(t.windows(2).all(|w| w[0] < w[1]));
        }
        assert_eq!(count, binomial(5, 2));
    }

    #[test]
    fn fresh_network_has_zero_defect() {
        let m = ThreadMatrix::new(8);
        let counts = exact(&m, 3);
        assert_eq!(counts.inspected, binomial(8, 3));
        assert_eq!(counts.total_defect(), 0);
        assert_eq!(counts.defective_fraction(), 0.0);
        assert_eq!(counts.total_defect_fraction(), 0.0);
    }

    #[test]
    fn single_failed_first_node_matches_lemma6_extreme() {
        // Lemma 6: a single failed node at the beginning changes B by
        // exactly (d²/k)·A — every tuple touching one of its d threads
        // loses per shared thread.
        let k = 8;
        let d = 2;
        let mut m = ThreadMatrix::new(k);
        m.append(NodeId(0), vec![0, 1], NodeStatus::Failed);
        let counts = exact(&m, d);
        let a = binomial(k as u64, d as u64) as f64;
        let expect = (d * d) as f64 / k as f64 * a;
        assert_eq!(counts.total_defect() as f64, expect);
    }

    #[test]
    fn sampled_matches_exact_on_small_network() {
        let k = 6;
        let d = 2;
        let mut m = ThreadMatrix::new(k);
        m.append(NodeId(0), vec![0, 1], NodeStatus::Failed);
        m.append(NodeId(1), vec![2, 3], NodeStatus::Working);
        let ex = exact(&m, d);
        let mut rng = StdRng::seed_from_u64(9);
        let sa = sample(&m, d, 30_000, &mut rng);
        let diff = (ex.total_defect_fraction() - sa.total_defect_fraction()).abs();
        assert!(diff < 0.02, "sampled {:.4} vs exact {:.4}", sa.total_defect_fraction(), ex.total_defect_fraction());
    }

    #[test]
    fn working_node_does_not_create_defect() {
        let mut m = ThreadMatrix::new(8);
        m.append(NodeId(0), vec![0, 1, 2], NodeStatus::Working);
        m.append(NodeId(1), vec![1, 3, 5], NodeStatus::Working);
        let counts = exact(&m, 3);
        assert_eq!(counts.total_defect(), 0);
    }

    #[test]
    fn loss_variance_zero_when_uniform() {
        let m = ThreadMatrix::new(6);
        let counts = exact(&m, 2);
        assert_eq!(counts.loss_variance(), 0.0);
    }

    #[test]
    fn bandwidth_loss_scales_by_d() {
        let mut m = ThreadMatrix::new(8);
        m.append(NodeId(0), vec![0, 1], NodeStatus::Failed);
        let counts = exact(&m, 2);
        assert!((counts.bandwidth_loss_fraction() - counts.total_defect_fraction() / 2.0).abs() < 1e-12);
    }
}
