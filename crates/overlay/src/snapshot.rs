//! Checkpoint / restore of the coordinator state.
//!
//! A production coordinator must survive restarts: the matrix `M` *is* the
//! network (losing it strands every stream). Snapshots are
//! serde-serializable value types convertible to/from the live structures;
//! `serde_json` (justified in DESIGN.md §6) gives a portable on-disk form.

use serde::{Deserialize, Serialize};

use crate::matrix::ThreadMatrix;
use crate::server::{CurtainServer, ServerMetrics};
use crate::types::{NodeId, NodeStatus, OverlayConfig, ThreadId};

/// Serializable form of one matrix row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowSnapshot {
    /// The node id.
    pub node: NodeId,
    /// Its threads (sorted).
    pub threads: Vec<ThreadId>,
    /// Working/failed tag.
    pub status: NodeStatus,
}

/// Serializable form of the matrix `M`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatrixSnapshot {
    /// Number of threads (columns).
    pub k: usize,
    /// Rows in matrix order.
    pub rows: Vec<RowSnapshot>,
}

impl From<&ThreadMatrix> for MatrixSnapshot {
    fn from(m: &ThreadMatrix) -> Self {
        MatrixSnapshot {
            k: m.k(),
            rows: m
                .rows()
                .iter()
                .map(|r| RowSnapshot {
                    node: r.node(),
                    threads: r.threads().to_vec(),
                    status: r.status(),
                })
                .collect(),
        }
    }
}

impl TryFrom<MatrixSnapshot> for ThreadMatrix {
    type Error = crate::OverlayError;

    fn try_from(s: MatrixSnapshot) -> Result<Self, Self::Error> {
        if s.k == 0 || s.k > ThreadId::MAX as usize {
            return Err(crate::OverlayError::InvalidConfig { k: s.k, d: 0 });
        }
        let mut m = ThreadMatrix::new(s.k);
        for (i, row) in s.rows.into_iter().enumerate() {
            // `insert` re-validates thread ranges and duplicates.
            m.insert(i, row.node, row.threads, row.status);
        }
        Ok(m)
    }
}

/// Serializable form of the whole coordinator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerSnapshot {
    /// The static configuration.
    pub config: OverlayConfig,
    /// The matrix state.
    pub matrix: MatrixSnapshot,
    /// Next node id to assign (monotone across restarts, so ids never
    /// repeat).
    pub next_id: u64,
    /// Accumulated metrics (optional to restore; kept for continuity).
    #[serde(default)]
    pub metrics: MetricsSnapshot,
}

/// Serializable metrics (mirrors [`ServerMetrics`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// See [`ServerMetrics::joins`].
    pub joins: u64,
    /// See [`ServerMetrics::graceful_leaves`].
    pub graceful_leaves: u64,
    /// See [`ServerMetrics::failures_reported`].
    pub failures_reported: u64,
    /// See [`ServerMetrics::repairs`].
    pub repairs: u64,
    /// See [`ServerMetrics::thread_drops`].
    pub thread_drops: u64,
    /// See [`ServerMetrics::thread_restores`].
    pub thread_restores: u64,
    /// See [`ServerMetrics::messages_in`].
    pub messages_in: u64,
    /// See [`ServerMetrics::messages_out`].
    pub messages_out: u64,
}

impl From<ServerMetrics> for MetricsSnapshot {
    fn from(m: ServerMetrics) -> Self {
        MetricsSnapshot {
            joins: m.joins,
            graceful_leaves: m.graceful_leaves,
            failures_reported: m.failures_reported,
            repairs: m.repairs,
            thread_drops: m.thread_drops,
            thread_restores: m.thread_restores,
            messages_in: m.messages_in,
            messages_out: m.messages_out,
        }
    }
}

impl From<MetricsSnapshot> for ServerMetrics {
    fn from(m: MetricsSnapshot) -> Self {
        ServerMetrics {
            joins: m.joins,
            graceful_leaves: m.graceful_leaves,
            failures_reported: m.failures_reported,
            repairs: m.repairs,
            thread_drops: m.thread_drops,
            thread_restores: m.thread_restores,
            messages_in: m.messages_in,
            messages_out: m.messages_out,
        }
    }
}

impl CurtainServer {
    /// Captures a snapshot of the coordinator.
    #[must_use]
    pub fn snapshot(&self) -> ServerSnapshot {
        ServerSnapshot {
            config: self.config(),
            matrix: MatrixSnapshot::from(self.matrix()),
            next_id: self.next_node_id(),
            metrics: self.metrics().into(),
        }
    }

    /// Restores a coordinator from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`crate::OverlayError::InvalidConfig`] if the snapshot's
    /// configuration or matrix shape is invalid.
    pub fn restore(snapshot: ServerSnapshot) -> Result<Self, crate::OverlayError> {
        snapshot.config.validate()?;
        let matrix = ThreadMatrix::try_from(snapshot.matrix)?;
        if matrix.k() != snapshot.config.k {
            return Err(crate::OverlayError::InvalidConfig {
                k: matrix.k(),
                d: snapshot.config.d,
            });
        }
        Ok(CurtainServer::from_parts(
            snapshot.config,
            matrix,
            snapshot.next_id,
            snapshot.metrics.into(),
        ))
    }

    /// Serializes the snapshot to JSON.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors (effectively infallible for this type).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(&self.snapshot())
    }

    /// Restores a coordinator from JSON.
    ///
    /// # Errors
    ///
    /// Returns a boxed error on malformed JSON or invalid state.
    pub fn from_json(json: &str) -> Result<Self, Box<dyn std::error::Error + Send + Sync>> {
        let snapshot: ServerSnapshot = serde_json::from_str(json)?;
        Ok(CurtainServer::restore(snapshot)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn busy_server() -> CurtainServer {
        let mut s = CurtainServer::new(OverlayConfig::new(12, 3)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let ids: Vec<NodeId> = (0..30).map(|_| s.hello(&mut rng).node).collect();
        s.goodbye(ids[3]).unwrap();
        s.report_failure(ids[7]).unwrap();
        s.drop_thread(ids[10], &mut rng).unwrap();
        s
    }

    #[test]
    fn snapshot_round_trip_preserves_everything() {
        let s = busy_server();
        let restored = CurtainServer::restore(s.snapshot()).unwrap();
        assert_eq!(restored.matrix(), s.matrix());
        assert_eq!(restored.config(), s.config());
        assert_eq!(restored.metrics(), s.metrics());
        assert_eq!(restored.next_node_id(), s.next_node_id());
    }

    #[test]
    fn json_round_trip() {
        let s = busy_server();
        let json = s.to_json().unwrap();
        let restored = CurtainServer::from_json(&json).unwrap();
        assert_eq!(restored.matrix(), s.matrix());
        // Ids keep increasing after restore — no reuse.
        let mut rng = StdRng::seed_from_u64(2);
        let mut restored = restored;
        let new = restored.hello(&mut rng).node;
        assert!(s.matrix().position_of(new).is_none());
        assert_eq!(new.0, s.next_node_id());
    }

    #[test]
    fn restored_server_keeps_protocol_invariants() {
        let s = busy_server();
        let mut restored = CurtainServer::from_json(&s.to_json().unwrap()).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        // Pending failure can still be repaired after restore.
        let failed = restored.matrix().failed_nodes();
        assert_eq!(failed.len(), 1);
        restored.repair(failed[0]).unwrap();
        for _ in 0..10 {
            restored.hello(&mut rng);
        }
        restored.matrix().assert_invariants();
    }

    /// Recovery-parity check: the JSON checkpoint a `curtain-net`
    /// coordinator writes must rebuild a matrix *identical* to the
    /// original — same rows in the same order, the same parent holder for
    /// every (position, thread), and the same exact defect — because
    /// `Coordinator::recover` trusts this round trip to resurrect `M`.
    #[test]
    fn checkpoint_round_trip_preserves_rows_holders_and_defect() {
        let s = busy_server();
        let restored = CurtainServer::from_json(&s.to_json().unwrap()).unwrap();

        let (m0, m1) = (s.matrix(), restored.matrix());
        assert_eq!(m0.rows().len(), m1.rows().len());
        for (a, b) in m0.rows().iter().zip(m1.rows()) {
            assert_eq!(a.node(), b.node());
            assert_eq!(a.threads(), b.threads());
            assert_eq!(a.status(), b.status());
        }
        for pos in 0..m0.len() {
            assert_eq!(
                m0.parents_of_position(pos),
                m1.parents_of_position(pos),
                "holder mismatch at position {pos}"
            );
        }
        let d = s.config().d;
        let (d0, d1) = (crate::defect::exact(m0, d), crate::defect::exact(m1, d));
        assert_eq!(d0.total_defect(), d1.total_defect());
        assert_eq!(d0.defective_fraction(), d1.defective_fraction());
        m1.assert_invariants();
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(CurtainServer::from_json("{not json").is_err());
        assert!(CurtainServer::from_json("{}").is_err());
    }

    #[test]
    fn invalid_snapshot_rejected() {
        let s = busy_server();
        let mut snap = s.snapshot();
        snap.config.k = 6; // matrix has k = 12
        assert!(CurtainServer::restore(snap).is_err());
    }

    #[test]
    fn matrix_snapshot_rejects_bad_k() {
        let snap = MatrixSnapshot { k: 0, rows: vec![] };
        assert!(ThreadMatrix::try_from(snap).is_err());
    }
}
