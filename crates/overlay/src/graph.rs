//! The overlay DAG induced by `M`, and max-flow edge connectivity.
//!
//! According to the network-coding theorem the broadcast rate a node can
//! sustain equals its edge connectivity from the server (§4: *"it can
//! receive the broadcast at the rate equal to its edge connectivity from the
//! server"*), so connectivity is **the** quantity every experiment measures.

use std::collections::VecDeque;

use crate::matrix::ThreadMatrix;
use crate::types::{NodeId, NodeStatus, ThreadId};

/// A unit-capacity flow network with BFS (Edmonds–Karp) max-flow.
///
/// Reused by [`OverlayGraph`], the §6 random-graph variant, and the
/// tree-packing baseline in `curtain-analysis`. Capacities are small
/// integers; queries do not mutate the network (each call works on a scratch
/// copy of the capacities).
#[derive(Debug, Clone, Default)]
pub struct FlowNetwork {
    /// Per-vertex list of edge indices (both directions).
    adj: Vec<Vec<u32>>,
    /// Edge targets; edge `i ^ 1` is the reverse of edge `i`.
    to: Vec<u32>,
    /// Capacities, paired as (forward, reverse=0) unless explicitly added.
    cap: Vec<u32>,
}

impl FlowNetwork {
    /// Creates a network with `n` vertices and no edges.
    #[must_use]
    pub fn new(n: usize) -> Self {
        FlowNetwork { adj: vec![Vec::new(); n], to: Vec::new(), cap: Vec::new() }
    }

    /// Number of vertices.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of directed edges added via [`FlowNetwork::add_edge`].
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.to.len() / 2
    }

    /// Adds a directed edge `u → v` with capacity `cap`.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: u32) {
        assert!(u < self.adj.len() && v < self.adj.len(), "vertex out of range");
        let e = self.to.len() as u32;
        self.to.push(v as u32);
        self.cap.push(cap);
        self.adj[u].push(e);
        self.to.push(u as u32);
        self.cap.push(0);
        self.adj[v].push(e + 1);
    }

    /// Appends a new vertex, returning its index.
    pub fn add_vertex(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Maximum `s → t` flow. Vertices with `blocked[v] == true` cannot be
    /// traversed (they model failed nodes); `s` and `t` are exempt.
    ///
    /// # Panics
    ///
    /// Panics if `s`, `t`, or `blocked.len()` disagree with the vertex count.
    #[must_use]
    pub fn max_flow(&self, s: usize, t: usize, blocked: Option<&[bool]>) -> usize {
        let n = self.adj.len();
        assert!(s < n && t < n, "terminal out of range");
        if let Some(b) = blocked {
            assert_eq!(b.len(), n, "blocked mask length");
        }
        if s == t {
            return 0;
        }
        let mut cap = self.cap.clone();
        let mut flow = 0usize;
        let mut pred: Vec<u32> = vec![u32::MAX; n];
        loop {
            // BFS for an augmenting path in the residual graph.
            pred.fill(u32::MAX);
            let mut queue = VecDeque::new();
            queue.push_back(s);
            'bfs: while let Some(u) = queue.pop_front() {
                for &e in &self.adj[u] {
                    let v = self.to[e as usize] as usize;
                    if cap[e as usize] == 0 || pred[v] != u32::MAX || v == s {
                        continue;
                    }
                    if v != t {
                        if let Some(b) = blocked {
                            if b[v] {
                                continue;
                            }
                        }
                    }
                    pred[v] = e;
                    if v == t {
                        break 'bfs;
                    }
                    queue.push_back(v);
                }
            }
            if pred[t] == u32::MAX {
                return flow;
            }
            // Find the bottleneck and augment.
            let mut bottleneck = u32::MAX;
            let mut v = t;
            while v != s {
                let e = pred[v] as usize;
                bottleneck = bottleneck.min(cap[e]);
                v = self.to[e ^ 1] as usize;
            }
            let mut v = t;
            while v != s {
                let e = pred[v] as usize;
                cap[e] -= bottleneck;
                cap[e ^ 1] += bottleneck;
                v = self.to[e ^ 1] as usize;
            }
            flow += bottleneck as usize;
        }
    }

    /// BFS hop distances from `s`, skipping blocked vertices. `None` means
    /// unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `blocked.len()` disagree with the vertex count.
    #[must_use]
    pub fn distances_from(&self, s: usize, blocked: Option<&[bool]>) -> Vec<Option<usize>> {
        let n = self.adj.len();
        assert!(s < n, "source out of range");
        let mut dist = vec![None; n];
        dist[s] = Some(0);
        let mut queue = VecDeque::new();
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &e in &self.adj[u] {
                if self.cap[e as usize] == 0 {
                    continue; // reverse edge
                }
                let v = self.to[e as usize] as usize;
                if dist[v].is_some() {
                    continue;
                }
                if let Some(b) = blocked {
                    if b[v] {
                        continue;
                    }
                }
                dist[v] = Some(dist[u].unwrap() + 1);
                queue.push_back(v);
            }
        }
        dist
    }
}

/// The DAG induced by a [`ThreadMatrix`]: vertex 0 is the server, vertex
/// `i + 1` is row `i`; for every thread there is a unit edge between each
/// pair of consecutive holders.
///
/// Failed rows keep their vertex (so positions stay aligned) but are marked
/// blocked: their edges exist in the underlying matrix but carry no flow —
/// exactly the paper's failure semantics, where a failed node absorbs its
/// incoming streams until the repair splices it out.
#[derive(Debug, Clone)]
pub struct OverlayGraph {
    flow: FlowNetwork,
    blocked: Vec<bool>,
    /// Per thread: the vertex currently holding the hanging lower end.
    bottoms: Vec<usize>,
    /// NodeId per vertex (None for the server).
    node_of: Vec<Option<NodeId>>,
}

impl OverlayGraph {
    /// Vertex index of the server.
    pub const SERVER: usize = 0;

    /// Builds the graph for the current state of `matrix`.
    #[must_use]
    pub fn from_matrix(matrix: &ThreadMatrix) -> Self {
        let n = matrix.len() + 1;
        let mut flow = FlowNetwork::new(n);
        let mut blocked = vec![false; n];
        let mut node_of = vec![None; n];
        let mut bottoms = vec![Self::SERVER; matrix.k()];
        for (i, row) in matrix.rows().iter().enumerate() {
            let v = i + 1;
            node_of[v] = Some(row.node());
            blocked[v] = row.status() == NodeStatus::Failed;
            for &t in row.threads() {
                flow.add_edge(bottoms[t as usize], v, 1);
                bottoms[t as usize] = v;
            }
        }
        OverlayGraph { flow, blocked, bottoms, node_of }
    }

    /// Number of vertices (rows + server).
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.flow.vertex_count()
    }

    /// The node at a vertex (`None` for the server).
    #[must_use]
    pub fn node_at(&self, vertex: usize) -> Option<NodeId> {
        self.node_of[vertex]
    }

    /// True iff the vertex is a failed node.
    #[must_use]
    pub fn is_blocked(&self, vertex: usize) -> bool {
        self.blocked[vertex]
    }

    /// The vertex holding the lower hanging end of `thread`.
    ///
    /// # Panics
    ///
    /// Panics if the thread is out of range.
    #[must_use]
    pub fn bottom_of(&self, thread: ThreadId) -> usize {
        self.bottoms[thread as usize]
    }

    /// Edge connectivity from the server to the row at `position`
    /// (max-flow with failed vertices blocked). Returns 0 for failed nodes.
    #[must_use]
    pub fn connectivity_of_position(&self, position: usize) -> usize {
        let v = position + 1;
        if self.blocked[v] {
            return 0;
        }
        self.flow.max_flow(Self::SERVER, v, Some(&self.blocked))
    }

    /// Connectivity a *virtual* node would enjoy if it clipped the given
    /// threads right now — the quantity behind the defect counts `B_j`
    /// (§4: "the number of d-tuples of hanging threads that have
    /// edge-connectivity d − j from the server").
    ///
    /// Duplicate threads in the tuple are allowed and contribute separate
    /// unit edges (relevant only for baselines; the protocol never picks
    /// duplicates).
    #[must_use]
    pub fn tuple_connectivity(&self, threads: &[ThreadId]) -> usize {
        let mut flow = self.flow.clone();
        let sink = flow.add_vertex();
        for &t in threads {
            flow.add_edge(self.bottoms[t as usize], sink, 1);
        }
        let mut blocked = self.blocked.clone();
        blocked.push(false);
        flow.max_flow(Self::SERVER, sink, Some(&blocked))
    }

    /// Hop distance from the server for every vertex (`None` for failed or
    /// unreachable vertices) — the "delay" of §6.
    #[must_use]
    pub fn depths(&self) -> Vec<Option<usize>> {
        self.flow.distances_from(Self::SERVER, Some(&self.blocked))
    }

    /// The live directed edges `(from, to)` of the DAG: thread segments
    /// whose endpoints are both working (or the server). Multi-edges appear
    /// once per shared thread. Used by the tree-packing baseline.
    #[must_use]
    pub fn live_edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for v in 0..self.flow.vertex_count() {
            if self.blocked[v] {
                continue;
            }
            for &e in &self.flow.adj[v] {
                // Forward edges only (even indices carry the capacity).
                if e % 2 != 0 || self.flow.cap[e as usize] == 0 {
                    continue;
                }
                let to = self.flow.to[e as usize] as usize;
                if !self.blocked[to] {
                    out.push((v, to));
                }
            }
        }
        out
    }

    /// Connectivity of every row; `0` entries for failed rows.
    #[must_use]
    pub fn all_connectivities(&self) -> Vec<usize> {
        (0..self.vertex_count() - 1)
            .map(|p| self.connectivity_of_position(p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::NodeStatus;

    fn w() -> NodeStatus {
        NodeStatus::Working
    }

    #[test]
    fn flow_on_tiny_network() {
        // s -> a -> t, s -> b -> t : flow 2.
        let mut f = FlowNetwork::new(4);
        f.add_edge(0, 1, 1);
        f.add_edge(1, 3, 1);
        f.add_edge(0, 2, 1);
        f.add_edge(2, 3, 1);
        assert_eq!(f.max_flow(0, 3, None), 2);
    }

    #[test]
    fn flow_respects_bottleneck() {
        // s -> a (cap 5) -> t (cap 2).
        let mut f = FlowNetwork::new(3);
        f.add_edge(0, 1, 5);
        f.add_edge(1, 2, 2);
        assert_eq!(f.max_flow(0, 2, None), 2);
    }

    #[test]
    fn flow_uses_residual_paths() {
        // Classic case where a naive greedy needs the residual edge.
        let mut f = FlowNetwork::new(4);
        f.add_edge(0, 1, 1);
        f.add_edge(0, 2, 1);
        f.add_edge(1, 2, 1);
        f.add_edge(1, 3, 1);
        f.add_edge(2, 3, 1);
        assert_eq!(f.max_flow(0, 3, None), 2);
    }

    #[test]
    fn blocked_vertices_cut_flow() {
        let mut f = FlowNetwork::new(4);
        f.add_edge(0, 1, 1);
        f.add_edge(1, 3, 1);
        f.add_edge(0, 2, 1);
        f.add_edge(2, 3, 1);
        let blocked = vec![false, true, false, false];
        assert_eq!(f.max_flow(0, 3, Some(&blocked)), 1);
    }

    #[test]
    fn flow_s_equals_t_is_zero() {
        let f = FlowNetwork::new(2);
        assert_eq!(f.max_flow(1, 1, None), 0);
    }

    #[test]
    fn distances_simple_chain() {
        let mut f = FlowNetwork::new(3);
        f.add_edge(0, 1, 1);
        f.add_edge(1, 2, 1);
        let d = f.distances_from(0, None);
        assert_eq!(d, vec![Some(0), Some(1), Some(2)]);
    }

    fn matrix_abc() -> ThreadMatrix {
        // k = 4; three nodes.
        let mut m = ThreadMatrix::new(4);
        m.append(NodeId(0), vec![0, 1], w()); // parents: server, server
        m.append(NodeId(1), vec![1, 2], w()); // parents: n0 (t1), server (t2)
        m.append(NodeId(2), vec![0, 1], w()); // parents: n0 (t0), n1 (t1)
        m
    }

    #[test]
    fn overlay_graph_structure() {
        let g = OverlayGraph::from_matrix(&matrix_abc());
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.node_at(0), None);
        assert_eq!(g.node_at(3), Some(NodeId(2)));
        // Bottom holders: t0 -> n2 (v3), t1 -> n2 (v3), t2 -> n1 (v2), t3 -> server.
        assert_eq!(g.bottom_of(0), 3);
        assert_eq!(g.bottom_of(1), 3);
        assert_eq!(g.bottom_of(2), 2);
        assert_eq!(g.bottom_of(3), 0);
    }

    #[test]
    fn full_connectivity_without_failures() {
        let g = OverlayGraph::from_matrix(&matrix_abc());
        for p in 0..3 {
            assert_eq!(g.connectivity_of_position(p), 2, "row {p}");
        }
    }

    #[test]
    fn parent_failure_reduces_child_connectivity() {
        let mut m = matrix_abc();
        m.set_status(NodeId(0), NodeStatus::Failed);
        let g = OverlayGraph::from_matrix(&m);
        // n1 loses thread 1 (parent n0 failed): connectivity 1.
        assert_eq!(g.connectivity_of_position(1), 1);
        // n2's parents are n0 (t0, failed) and n1 (t1): n1 still delivers 1.
        assert_eq!(g.connectivity_of_position(2), 1);
        // The failed node itself reports 0.
        assert_eq!(g.connectivity_of_position(0), 0);
    }

    #[test]
    fn tuple_connectivity_fresh_network() {
        let m = ThreadMatrix::new(4);
        let g = OverlayGraph::from_matrix(&m);
        // All threads hang from the server: any tuple has full connectivity.
        assert_eq!(g.tuple_connectivity(&[0, 1]), 2);
        assert_eq!(g.tuple_connectivity(&[0, 1, 2, 3]), 4);
    }

    #[test]
    fn tuple_connectivity_behind_failure() {
        let mut m = ThreadMatrix::new(3);
        m.append(NodeId(0), vec![0, 1], w());
        m.set_status(NodeId(0), NodeStatus::Failed);
        let g = OverlayGraph::from_matrix(&m);
        // Threads 0 and 1 hang below the failed node: dead.
        assert_eq!(g.tuple_connectivity(&[0, 1]), 0);
        // Thread 2 still hangs from the server.
        assert_eq!(g.tuple_connectivity(&[1, 2]), 1);
        assert_eq!(g.tuple_connectivity(&[2]), 1);
    }

    #[test]
    fn depths_grow_down_the_curtain() {
        // Chain: k=1 impossible (d<=k); use k=2,d=2 so every node holds both.
        let mut m = ThreadMatrix::new(2);
        for i in 0..5 {
            m.append(NodeId(i), vec![0, 1], w());
        }
        let g = OverlayGraph::from_matrix(&m);
        let depths = g.depths();
        assert_eq!(depths[0], Some(0));
        for i in 0..5 {
            assert_eq!(depths[i + 1], Some(i + 1), "node {i}");
        }
    }

    #[test]
    fn all_connectivities_matches_individual() {
        let mut m = matrix_abc();
        m.set_status(NodeId(1), NodeStatus::Failed);
        let g = OverlayGraph::from_matrix(&m);
        let all = g.all_connectivities();
        for (p, &conn) in all.iter().enumerate().take(3) {
            assert_eq!(conn, g.connectivity_of_position(p));
        }
    }

    #[test]
    fn multi_edges_count_separately() {
        // Node 1 takes both of node 0's threads: two parallel edges.
        let mut m = ThreadMatrix::new(2);
        m.append(NodeId(0), vec![0, 1], w());
        m.append(NodeId(1), vec![0, 1], w());
        let g = OverlayGraph::from_matrix(&m);
        assert_eq!(g.connectivity_of_position(1), 2);
    }
}
