//! The §6 "union of trees" alternative: SplitStream-style interior-disjoint
//! multicast trees.
//!
//! §6 offers two ways to trade the curtain's linear delay for logarithmic:
//! a random-graph insertion (see [`crate::random_graph`]) or "a topology
//! such as that induced by the union of trees constructed in [10, 4]" —
//! Padmanabhan–Wang–Chou's resilient streaming and Castro et al.'s
//! SplitStream. This module builds that forest:
//!
//! * `t` trees, one per content stripe; every node is a member of every
//!   tree (in-degree `t`).
//! * Every node is *interior* (has children) in exactly **one** tree and a
//!   leaf in the others, so its out-degree is bounded by the fanout and a
//!   single failure damages only one stripe's subtree.
//! * Trees fill breadth-first, so every tree has depth `O(log N)` — with
//!   base `fanout/trees`, since only every `trees`-th descendant offers
//!   child slots in a given tree.

use std::collections::VecDeque;

/// Who feeds a node in one tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeParent {
    /// The server (tree root feed).
    Server,
    /// Another member, by dense index.
    Node(usize),
}

/// A forest of interior-disjoint multicast trees.
///
/// # Example
///
/// ```
/// use curtain_overlay::forest::ForestOverlay;
///
/// let mut f = ForestOverlay::new(3, 9); // 3 trees (stripes), fanout 9
/// for _ in 0..100 {
///     f.join();
/// }
/// // Logarithmic worst-case stripe depth (base fanout/trees = 3).
/// assert!(f.max_depth() <= 6);
/// ```
#[derive(Debug, Clone)]
pub struct ForestOverlay {
    trees: usize,
    fanout: usize,
    /// `parents[tree][node]`.
    parents: Vec<Vec<TreeParent>>,
    /// Per tree: interior nodes with spare child capacity, BFS order.
    free: Vec<VecDeque<(usize, usize)>>, // (node, remaining capacity)
    nodes: usize,
}

impl ForestOverlay {
    /// Creates an empty forest of `trees` trees with the given `fanout`.
    ///
    /// # Panics
    ///
    /// Panics if `trees == 0` or `fanout < trees` (with smaller fanout the
    /// interior-disjoint construction runs out of child slots).
    #[must_use]
    pub fn new(trees: usize, fanout: usize) -> Self {
        assert!(trees > 0, "need at least one tree");
        assert!(
            fanout >= trees,
            "fanout ({fanout}) must be at least the tree count ({trees})"
        );
        ForestOverlay {
            trees,
            fanout,
            parents: vec![Vec::new(); trees],
            free: vec![VecDeque::new(); trees],
            nodes: 0,
        }
    }

    /// Number of trees (stripes).
    #[must_use]
    pub fn trees(&self) -> usize {
        self.trees
    }

    /// Interior fanout bound.
    #[must_use]
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Members so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes
    }

    /// True iff nobody joined yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes == 0
    }

    /// Admits the next node; returns its index. The node becomes interior
    /// in tree `index % trees` and a leaf everywhere else.
    pub fn join(&mut self) -> usize {
        let idx = self.nodes;
        self.nodes += 1;
        let home = idx % self.trees;
        for t in 0..self.trees {
            let parent = match self.free[t].front_mut() {
                None => TreeParent::Server,
                Some((node, capacity)) => {
                    let p = TreeParent::Node(*node);
                    *capacity -= 1;
                    if *capacity == 0 {
                        self.free[t].pop_front();
                    }
                    p
                }
            };
            self.parents[t].push(parent);
        }
        // The node offers child slots only in its home tree.
        self.free[home].push_back((idx, self.fanout));
        idx
    }

    /// The parent of `node` in `tree`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn parent(&self, tree: usize, node: usize) -> TreeParent {
        self.parents[tree][node]
    }

    /// All edges as `(tree, parent, child)` triples.
    #[must_use]
    pub fn edges(&self) -> Vec<(usize, TreeParent, usize)> {
        let mut out = Vec::with_capacity(self.trees * self.nodes);
        for (t, tree) in self.parents.iter().enumerate() {
            for (child, &parent) in tree.iter().enumerate() {
                out.push((t, parent, child));
            }
        }
        out
    }

    /// Depth of `node` in `tree` (server = 0).
    #[must_use]
    pub fn depth_in_tree(&self, tree: usize, node: usize) -> usize {
        let mut depth = 1;
        let mut current = node;
        while let TreeParent::Node(p) = self.parents[tree][current] {
            depth += 1;
            current = p;
        }
        depth
    }

    /// Per-node content delay: a node needs all stripes, so its effective
    /// depth is the maximum over trees.
    #[must_use]
    pub fn content_depths(&self) -> Vec<usize> {
        (0..self.nodes)
            .map(|n| (0..self.trees).map(|t| self.depth_in_tree(t, n)).max().unwrap_or(0))
            .collect()
    }

    /// The worst content depth in the forest.
    #[must_use]
    pub fn max_depth(&self) -> usize {
        self.content_depths().into_iter().max().unwrap_or(0)
    }

    /// Out-degree of each node, summed across trees.
    #[must_use]
    pub fn out_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.nodes];
        for tree in &self.parents {
            for &parent in tree {
                if let TreeParent::Node(p) = parent {
                    deg[p] += 1;
                }
            }
        }
        deg
    }

    /// Checks the SplitStream invariants.
    ///
    /// # Panics
    ///
    /// Panics on violations.
    pub fn assert_invariants(&self) {
        // In-degree: exactly one parent per tree (by construction of the
        // parents vectors) — check the vectors are full length.
        for tree in &self.parents {
            assert_eq!(tree.len(), self.nodes, "tree parent vector incomplete");
        }
        // Out-degree bound and interior-disjointness.
        let mut interior_in: Vec<Vec<usize>> = vec![Vec::new(); self.nodes];
        let mut per_tree_children: Vec<std::collections::HashMap<usize, usize>> =
            vec![std::collections::HashMap::new(); self.trees];
        for (t, tree) in self.parents.iter().enumerate() {
            for &parent in tree {
                if let TreeParent::Node(p) = parent {
                    *per_tree_children[t].entry(p).or_insert(0) += 1;
                    if !interior_in[p].contains(&t) {
                        interior_in[p].push(t);
                    }
                }
            }
        }
        for (node, trees) in interior_in.iter().enumerate() {
            assert!(
                trees.len() <= 1,
                "node {node} is interior in {} trees",
                trees.len()
            );
            if let Some(&t) = trees.first() {
                assert_eq!(t, node % self.trees, "node {node} interior in foreign tree");
            }
        }
        for children in &per_tree_children {
            for (&node, &count) in children {
                assert!(
                    count <= self.fanout,
                    "node {node} has {count} children (> fanout)"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grown(trees: usize, fanout: usize, n: usize) -> ForestOverlay {
        let mut f = ForestOverlay::new(trees, fanout);
        for _ in 0..n {
            f.join();
        }
        f
    }

    #[test]
    fn invariants_hold_through_growth() {
        for n in [1usize, 5, 50, 500] {
            let f = grown(3, 4, n);
            f.assert_invariants();
            assert_eq!(f.len(), n);
        }
    }

    #[test]
    fn out_degree_bounded_by_fanout() {
        let f = grown(4, 4, 300);
        for (node, &deg) in f.out_degrees().iter().enumerate() {
            assert!(deg <= 4, "node {node} out-degree {deg}");
        }
    }

    #[test]
    fn depth_is_logarithmic() {
        // The interior skeleton branches at fanout/trees = 3, so 10x the
        // nodes adds ~log_3(10) ≈ 2.1 levels.
        let small = grown(3, 9, 100);
        let large = grown(3, 9, 1000);
        assert!(
            large.max_depth() <= small.max_depth() + 3,
            "depth jumped {} -> {}",
            small.max_depth(),
            large.max_depth()
        );
        assert!(large.max_depth() <= 10, "max depth {}", large.max_depth());
        // And it is far below the linear curtain depth N*d/k.
        assert!(large.max_depth() < 1000 / 10);
    }

    #[test]
    fn first_nodes_feed_from_server() {
        let f = grown(3, 3, 3);
        for t in 0..3 {
            // Tree t's interior root is node t.
            assert_eq!(f.parent(t, t), TreeParent::Server);
        }
    }

    #[test]
    fn every_node_has_a_parent_in_every_tree() {
        let f = grown(2, 3, 40);
        for t in 0..2 {
            for n in 0..40 {
                let _ = f.parent(t, n); // must not panic
                assert!(f.depth_in_tree(t, n) >= 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "fanout")]
    fn fanout_below_trees_rejected() {
        let _ = ForestOverlay::new(4, 3);
    }

    #[test]
    fn single_tree_is_a_plain_fanout_tree() {
        let f = grown(1, 2, 15);
        f.assert_invariants();
        // Complete binary tree of 15 nodes: depth 4.
        assert_eq!(f.max_depth(), 4);
    }
}
