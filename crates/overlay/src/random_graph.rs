//! The §6 low-delay variant: insert new nodes into random *edges*.
//!
//! The curtain keeps the topology acyclic (no throughput loss from delay
//! spread) but delay grows linearly in N. §6's alternative: *"each new user
//! selects d random edges in the existing network, and inserts itself at
//! these edges. Random graphs are expanders with high probability, so the
//! delay will be logarithmic."*
//!
//! We model the network as a multiset of directed edges; the server starts
//! with `k` *hanging* edges (lower end unattached — the thread pool). A new
//! node picks `d` random edges; picking edge `(u, w)` replaces it with
//! `(u, v)` and `(v, w)`, so `v` both receives from `u` and serves `w`
//! (`w = None` keeps the lower end hanging). Every insertion preserves the
//! edge-count invariant: hanging edges stay exactly `k`.

use rand::Rng;

use crate::graph::FlowNetwork;

/// Vertex index of the server in a [`RandomGraphOverlay`].
pub const SERVER: usize = 0;

/// One directed overlay edge; `lower == None` means the lower end hangs
/// free (a slot a newcomer can take).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Upper (sending) endpoint.
    pub upper: usize,
    /// Lower (receiving) endpoint, if attached.
    pub lower: Option<usize>,
}

/// The §6 random-graph overlay.
///
/// # Example
///
/// ```
/// use curtain_overlay::random_graph::RandomGraphOverlay;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(6);
/// let mut net = RandomGraphOverlay::new(8, 2);
/// for _ in 0..100 {
///     net.join(&mut rng);
/// }
/// // Expander-style topology: depth is logarithmic, not linear.
/// let max_depth = net.depths().into_iter().flatten().max().unwrap();
/// assert!(max_depth < 30);
/// ```
#[derive(Debug, Clone)]
pub struct RandomGraphOverlay {
    k: usize,
    d: usize,
    n_vertices: usize,
    edges: Vec<Edge>,
}

impl RandomGraphOverlay {
    /// Creates the initial state: the server with `k` hanging edges; new
    /// nodes will take `d` edges each.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0` or `d > k`.
    #[must_use]
    pub fn new(k: usize, d: usize) -> Self {
        assert!(d > 0, "d must be positive");
        assert!(d <= k, "d must not exceed k");
        let edges = (0..k).map(|_| Edge { upper: SERVER, lower: None }).collect();
        RandomGraphOverlay { k, d, n_vertices: 1, edges }
    }

    /// Server fan-out `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Per-node degree `d`.
    #[must_use]
    pub fn d(&self) -> usize {
        self.d
    }

    /// Number of client nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n_vertices - 1
    }

    /// True iff no client has joined.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n_vertices == 1
    }

    /// All edges, hanging ones included.
    #[must_use]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// A new node inserts itself into `d` distinct random edges; returns its
    /// vertex index.
    pub fn join<R: Rng + ?Sized>(&mut self, rng: &mut R) -> usize {
        let v = self.n_vertices;
        self.n_vertices += 1;
        let picks = rand::seq::index::sample(rng, self.edges.len(), self.d);
        let mut picked: Vec<usize> = picks.into_iter().collect();
        // Replace in place: (u, w) -> (u, v); push (v, w).
        picked.sort_unstable();
        for &e in &picked {
            let lower = self.edges[e].lower;
            self.edges[e].lower = Some(v);
            self.edges.push(Edge { upper: v, lower });
        }
        v
    }

    /// Builds a [`FlowNetwork`] over the attached edges (hanging edges carry
    /// no flow).
    #[must_use]
    pub fn flow_network(&self) -> FlowNetwork {
        let mut f = FlowNetwork::new(self.n_vertices);
        for e in &self.edges {
            if let Some(lower) = e.lower {
                f.add_edge(e.upper, lower, 1);
            }
        }
        f
    }

    /// Hop distance from the server per vertex (`None` = unreachable).
    #[must_use]
    pub fn depths(&self) -> Vec<Option<usize>> {
        self.flow_network().distances_from(SERVER, None)
    }

    /// Edge connectivity of a vertex from the server.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn connectivity(&self, v: usize) -> usize {
        self.flow_network().max_flow(SERVER, v, None)
    }

    /// Sanity checks: hanging edge count stays `k`; every client vertex has
    /// in-degree and out-degree `d` (out includes hanging stubs).
    ///
    /// # Panics
    ///
    /// Panics on violations.
    pub fn assert_invariants(&self) {
        let hanging = self.edges.iter().filter(|e| e.lower.is_none()).count();
        assert_eq!(hanging, self.k, "hanging edge pool must stay k");
        let mut indeg = vec![0usize; self.n_vertices];
        let mut outdeg = vec![0usize; self.n_vertices];
        for e in &self.edges {
            outdeg[e.upper] += 1;
            if let Some(l) = e.lower {
                indeg[l] += 1;
            }
        }
        assert_eq!(outdeg[SERVER], self.k, "server out-degree must stay k");
        for v in 1..self.n_vertices {
            assert_eq!(indeg[v], self.d, "vertex {v} in-degree");
            assert_eq!(outdeg[v], self.d, "vertex {v} out-degree");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn invariants_hold_through_growth() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = RandomGraphOverlay::new(10, 3);
        for _ in 0..300 {
            net.join(&mut rng);
            if net.len().is_multiple_of(50) {
                net.assert_invariants();
            }
        }
        net.assert_invariants();
        assert_eq!(net.len(), 300);
    }

    #[test]
    fn first_node_connects_to_server() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = RandomGraphOverlay::new(6, 2);
        let v = net.join(&mut rng);
        assert_eq!(net.connectivity(v), 2);
        assert_eq!(net.depths()[v], Some(1));
    }

    #[test]
    fn depth_is_logarithmic_not_linear() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 500;
        let mut net = RandomGraphOverlay::new(8, 2);
        for _ in 0..n {
            net.join(&mut rng);
        }
        let depths: Vec<usize> = net.depths().into_iter().flatten().collect();
        let max = *depths.iter().max().unwrap();
        // ~log2(500) ≈ 9; allow generous slack but far below linear (≈ n·d/k).
        assert!(max < 60, "max depth {max} not logarithmic");
    }

    #[test]
    fn everyone_reachable() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = RandomGraphOverlay::new(8, 3);
        for _ in 0..200 {
            net.join(&mut rng);
        }
        let depths = net.depths();
        assert!(depths.iter().all(Option::is_some), "disconnected vertex");
    }

    #[test]
    fn connectivity_bounded_by_d() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = RandomGraphOverlay::new(8, 3);
        let mut last = 0;
        for _ in 0..100 {
            last = net.join(&mut rng);
        }
        let c = net.connectivity(last);
        assert!(c <= 3);
        assert!(c >= 1);
    }

    #[test]
    #[should_panic(expected = "d must not exceed k")]
    fn d_greater_than_k_rejected() {
        let _ = RandomGraphOverlay::new(2, 3);
    }
}
