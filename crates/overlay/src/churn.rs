//! Randomized churn drivers for long-running experiments.
//!
//! Two processes are provided:
//!
//! * [`grow_with_failures`] — the exact §4 analysis process: nodes join
//!   sequentially, each *already failed* with probability `p` (the paper's
//!   reordered coin toss). No repairs; the defect drifts toward its
//!   steady state. Used by experiments E01, E03, E04.
//! * [`ChurnDriver`] — a protocol-level process with joins, graceful
//!   leaves, failures and delayed repairs, modelling an operating network.
//!   Used by the stress tests and E10.

use rand::{Rng, RngExt as _};

use crate::network::CurtainNetwork;
use crate::types::NodeId;

/// Runs the §4 arrival process: `n` sequential joins, each failed with
/// probability `p`. Returns the ids in arrival order.
pub fn grow_with_failures<R: Rng + ?Sized>(
    net: &mut CurtainNetwork,
    n: usize,
    p: f64,
    rng: &mut R,
) -> Vec<NodeId> {
    (0..n).map(|_| net.join_with_failure_prob(p, rng)).collect()
}

/// Per-step event probabilities for [`ChurnDriver`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Probability of a join per step.
    pub join_prob: f64,
    /// Probability of a graceful leave of a random working node per step.
    pub leave_prob: f64,
    /// Probability of a failure of a random working node per step.
    pub fail_prob: f64,
    /// Steps between failure and repair (the repair interval).
    pub repair_delay: usize,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig { join_prob: 0.5, leave_prob: 0.2, fail_prob: 0.05, repair_delay: 10 }
    }
}

/// Counts of what a churn run actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChurnStats {
    /// Joins executed.
    pub joins: u64,
    /// Graceful leaves executed.
    pub leaves: u64,
    /// Failures injected.
    pub failures: u64,
    /// Repairs executed.
    pub repairs: u64,
}

/// Drives a [`CurtainNetwork`] through randomized joins, leaves, failures
/// and delayed repairs.
///
/// # Example
///
/// ```
/// use curtain_overlay::churn::{ChurnConfig, ChurnDriver};
/// use curtain_overlay::{CurtainNetwork, OverlayConfig};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(5);
/// let mut net = CurtainNetwork::new(OverlayConfig::new(16, 3)).expect("valid config");
/// let mut driver = ChurnDriver::new(ChurnConfig::default());
/// for _ in 0..200 {
///     driver.step(&mut net, &mut rng);
/// }
/// assert!(driver.stats().joins > 0);
/// ```
#[derive(Debug, Clone)]
pub struct ChurnDriver {
    config: ChurnConfig,
    /// Failed nodes with the step at which they become repairable.
    pending_repairs: Vec<(NodeId, u64)>,
    step: u64,
    stats: ChurnStats,
}

impl ChurnDriver {
    /// Creates a driver.
    #[must_use]
    pub fn new(config: ChurnConfig) -> Self {
        ChurnDriver { config, pending_repairs: Vec::new(), step: 0, stats: ChurnStats::default() }
    }

    /// Statistics of what happened so far.
    #[must_use]
    pub fn stats(&self) -> ChurnStats {
        self.stats
    }

    /// Current step counter.
    #[must_use]
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Failed nodes whose repair is still pending.
    #[must_use]
    pub fn pending_repairs(&self) -> usize {
        self.pending_repairs.len()
    }

    /// Executes one step: due repairs first, then randomized events.
    pub fn step<R: Rng + ?Sized>(&mut self, net: &mut CurtainNetwork, rng: &mut R) {
        self.step += 1;
        // Execute due repairs.
        let due: Vec<NodeId> = self
            .pending_repairs
            .iter()
            .filter(|(_, at)| *at <= self.step)
            .map(|(n, _)| *n)
            .collect();
        self.pending_repairs.retain(|(_, at)| *at > self.step);
        for node in due {
            if net.repair(node).is_ok() {
                self.stats.repairs += 1;
            }
        }
        // Randomized events.
        if rng.random_bool(self.config.join_prob) {
            net.join(rng);
            self.stats.joins += 1;
        }
        if rng.random_bool(self.config.leave_prob) {
            if let Some(node) = pick_working(net, rng) {
                if net.leave(node).is_ok() {
                    self.stats.leaves += 1;
                }
            }
        }
        if rng.random_bool(self.config.fail_prob) {
            if let Some(node) = pick_working(net, rng) {
                if net.fail(node).is_ok() {
                    self.stats.failures += 1;
                    self.pending_repairs
                        .push((node, self.step + self.config.repair_delay as u64));
                }
            }
        }
    }

    /// Runs `steps` steps.
    pub fn run<R: Rng + ?Sized>(&mut self, net: &mut CurtainNetwork, steps: u64, rng: &mut R) {
        for _ in 0..steps {
            self.step(net, rng);
        }
    }
}

/// Picks a uniformly random working node, if any.
fn pick_working<R: Rng + ?Sized>(net: &CurtainNetwork, rng: &mut R) -> Option<NodeId> {
    let working: Vec<NodeId> = net
        .matrix()
        .rows()
        .iter()
        .filter(|r| r.status() == crate::types::NodeStatus::Working)
        .map(|r| r.node())
        .collect();
    if working.is_empty() {
        None
    } else {
        Some(working[rng.random_range(0..working.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::OverlayConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn grow_with_failures_tags_roughly_p() {
        let mut net = CurtainNetwork::new(OverlayConfig::new(16, 2)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 2000;
        grow_with_failures(&mut net, n, 0.1, &mut rng);
        let failed = net.failed_nodes().len() as f64 / n as f64;
        assert!((failed - 0.1).abs() < 0.03, "failed fraction {failed}");
    }

    #[test]
    fn churn_driver_maintains_invariants() {
        let mut net = CurtainNetwork::new(OverlayConfig::new(12, 3)).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut driver = ChurnDriver::new(ChurnConfig::default());
        driver.run(&mut net, 500, &mut rng);
        net.matrix().assert_invariants();
        let s = driver.stats();
        assert!(s.joins > 100);
        assert!(s.leaves > 0);
        assert!(s.failures > 0);
        assert!(s.repairs > 0);
        // Every pending repair refers to a currently failed node.
        for node in net.failed_nodes() {
            assert!(net.connectivity_of(node).is_none());
        }
    }

    #[test]
    fn repairs_eventually_drain() {
        let mut net = CurtainNetwork::new(OverlayConfig::new(12, 2)).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut driver = ChurnDriver::new(ChurnConfig {
            join_prob: 1.0,
            leave_prob: 0.0,
            fail_prob: 0.3,
            repair_delay: 5,
        });
        driver.run(&mut net, 200, &mut rng);
        // Stop failing; run repair-only steps.
        let mut drain = ChurnDriver {
            config: ChurnConfig { join_prob: 0.0, leave_prob: 0.0, fail_prob: 0.0, repair_delay: 5 },
            pending_repairs: driver.pending_repairs.clone(),
            step: driver.step,
            stats: driver.stats,
        };
        drain.run(&mut net, 20, &mut rng);
        assert_eq!(net.failed_nodes().len(), 0);
        assert_eq!(net.min_working_connectivity(), Some(2));
    }

    #[test]
    fn pick_working_on_empty_is_none() {
        let net = CurtainNetwork::new(OverlayConfig::new(4, 2)).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        assert!(pick_working(&net, &mut rng).is_none());
    }
}
