//! The server-side matrix `M`: the paper's central data structure.
//!
//! Each row corresponds to a node and lists the threads (columns) it holds;
//! the server is a virtual row of all `k` ones above the matrix. *"There is
//! an edge from node i to node j if row i appears before row j in the matrix
//! and there is a column containing a one in row i, a one in row j, and
//! zeroes in all the intervening rows."* (§3)
//!
//! Rows are tagged [`NodeStatus`] per §4's analysis device: a node may join
//! already marked as failed, modelling a failure within the repair interval.

use std::collections::HashMap;

use rand::Rng;

use crate::types::{Holder, NodeId, NodeStatus, ThreadId};

/// One row of `M`: a node, the (sorted, distinct) threads it holds, and its
/// working/failed tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    node: NodeId,
    threads: Vec<ThreadId>,
    status: NodeStatus,
}

impl Row {
    /// The node this row belongs to.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The threads (columns with a one), sorted ascending.
    #[must_use]
    pub fn threads(&self) -> &[ThreadId] {
        &self.threads
    }

    /// The working/failed tag.
    #[must_use]
    pub fn status(&self) -> NodeStatus {
        self.status
    }

    /// True iff the row holds the given thread.
    #[must_use]
    pub fn holds(&self, thread: ThreadId) -> bool {
        self.threads.binary_search(&thread).is_ok()
    }
}

/// The matrix `M` of §3: an ordered list of rows over `k` columns.
///
/// Mutations mirror the protocols: [`ThreadMatrix::insert`] (hello),
/// [`ThreadMatrix::remove`] (good-bye / repair), [`ThreadMatrix::set_status`]
/// (failure tagging), [`ThreadMatrix::remove_thread`] /
/// [`ThreadMatrix::add_thread`] (§5 congestion handling).
///
/// # Example
///
/// ```
/// use curtain_overlay::{NodeId, NodeStatus, ThreadMatrix};
///
/// let mut m = ThreadMatrix::new(8);
/// m.append(NodeId(0), vec![0, 3, 5], NodeStatus::Working);
/// m.append(NodeId(1), vec![3, 4, 7], NodeStatus::Working);
/// // Node 1's parent on thread 3 is node 0; on threads 4 and 7 the server.
/// let parents = m.parents_of_position(1);
/// assert_eq!(parents.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadMatrix {
    k: usize,
    rows: Vec<Row>,
    positions: HashMap<NodeId, usize>,
}

impl ThreadMatrix {
    /// Creates an empty matrix over `k` threads.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k` exceeds the [`ThreadId`] range.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(k <= ThreadId::MAX as usize, "k exceeds ThreadId range");
        ThreadMatrix { k, rows: Vec::new(), positions: HashMap::new() }
    }

    /// Number of threads (columns).
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of rows (current members, working and failed).
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff no node has joined.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows in matrix order (top to bottom).
    #[must_use]
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Row at a position.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn row(&self, position: usize) -> &Row {
        &self.rows[position]
    }

    /// Position of a node's row, if the node is a member.
    #[must_use]
    pub fn position_of(&self, node: NodeId) -> Option<usize> {
        self.positions.get(&node).copied()
    }

    /// Status of a node, if a member.
    #[must_use]
    pub fn status_of(&self, node: NodeId) -> Option<NodeStatus> {
        self.position_of(node).map(|p| self.rows[p].status)
    }

    /// Number of working rows.
    #[must_use]
    pub fn working_len(&self) -> usize {
        self.rows.iter().filter(|r| r.status == NodeStatus::Working).count()
    }

    /// Ids of all failed nodes, in matrix order.
    #[must_use]
    pub fn failed_nodes(&self) -> Vec<NodeId> {
        self.rows
            .iter()
            .filter(|r| r.status == NodeStatus::Failed)
            .map(Row::node)
            .collect()
    }

    /// Samples `d` distinct threads uniformly at random — the "picks d
    /// threads at random" of the hello protocol.
    ///
    /// # Panics
    ///
    /// Panics if `d > k`.
    #[must_use]
    pub fn sample_threads<R: Rng + ?Sized>(&self, d: usize, rng: &mut R) -> Vec<ThreadId> {
        assert!(d <= self.k, "cannot sample {d} threads out of {}", self.k);
        let idx = rand::seq::index::sample(rng, self.k, d);
        let mut threads: Vec<ThreadId> = idx.into_iter().map(|i| i as ThreadId).collect();
        threads.sort_unstable();
        threads
    }

    /// Inserts a row at `position` (0 = top).
    ///
    /// # Panics
    ///
    /// Panics if the node is already a member, `position > len()`, or
    /// `threads` is empty / out of range / contains duplicates.
    pub fn insert(
        &mut self,
        position: usize,
        node: NodeId,
        mut threads: Vec<ThreadId>,
        status: NodeStatus,
    ) {
        assert!(position <= self.rows.len(), "insert position out of range");
        assert!(!self.positions.contains_key(&node), "node {node} already a member");
        assert!(!threads.is_empty(), "a row needs at least one thread");
        threads.sort_unstable();
        assert!(threads.windows(2).all(|w| w[0] != w[1]), "duplicate threads in row");
        assert!((threads[threads.len() - 1] as usize) < self.k, "thread out of range");
        self.rows.insert(position, Row { node, threads, status });
        self.reindex_from(position);
    }

    /// Appends a row at the bottom (the [`crate::InsertPolicy::Append`] case).
    ///
    /// # Panics
    ///
    /// Same as [`ThreadMatrix::insert`].
    pub fn append(&mut self, node: NodeId, threads: Vec<ThreadId>, status: NodeStatus) {
        self.insert(self.rows.len(), node, threads, status);
    }

    /// Removes a node's row (good-bye splice / post-repair deletion) and
    /// returns it.
    ///
    /// # Panics
    ///
    /// Panics if the node is not a member.
    pub fn remove(&mut self, node: NodeId) -> Row {
        let pos = self.positions.remove(&node).expect("node is a member");
        let row = self.rows.remove(pos);
        self.reindex_from(pos);
        row
    }

    /// Sets a node's working/failed tag.
    ///
    /// # Panics
    ///
    /// Panics if the node is not a member.
    pub fn set_status(&mut self, node: NodeId, status: NodeStatus) {
        let pos = self.positions[&node];
        self.rows[pos].status = status;
    }

    /// Removes one thread from a node's row (§5 congestion drop: the node
    /// "picks a child and a parent and joins them directly").
    ///
    /// # Panics
    ///
    /// Panics if the node is not a member, does not hold the thread, or
    /// holds only one thread.
    pub fn remove_thread(&mut self, node: NodeId, thread: ThreadId) {
        let pos = self.positions[&node];
        let row = &mut self.rows[pos];
        assert!(row.threads.len() > 1, "cannot drop the last thread");
        let i = row.threads.binary_search(&thread).expect("node holds the thread");
        row.threads.remove(i);
    }

    /// Adds one thread to a node's row (§5 congestion recovery: the server
    /// "makes one of the zeroes … into a one at random").
    ///
    /// # Panics
    ///
    /// Panics if the node is not a member or already holds the thread.
    pub fn add_thread(&mut self, node: NodeId, thread: ThreadId) {
        assert!((thread as usize) < self.k, "thread out of range");
        let pos = self.positions[&node];
        let row = &mut self.rows[pos];
        let i = row.threads.binary_search(&thread).expect_err("node already holds the thread");
        row.threads.insert(i, thread);
    }

    /// The holder of the lower end of each thread — the "pool of slots, or
    /// unserved streams, to which a new node can connect" (§3). `Holder::Server`
    /// where no row holds the column.
    #[must_use]
    pub fn bottom_holders(&self) -> Vec<Holder> {
        let mut bottoms = vec![Holder::Server; self.k];
        for row in &self.rows {
            for &t in &row.threads {
                bottoms[t as usize] = Holder::Node(row.node);
            }
        }
        bottoms
    }

    /// Parents of the row at `position`: for each of its threads, the
    /// nearest holder above (the server if none).
    ///
    /// # Panics
    ///
    /// Panics if `position` is out of range.
    #[must_use]
    pub fn parents_of_position(&self, position: usize) -> Vec<(ThreadId, Holder)> {
        let row = &self.rows[position];
        row.threads
            .iter()
            .map(|&t| {
                let parent = self.rows[..position]
                    .iter()
                    .rev()
                    .find(|r| r.holds(t))
                    .map_or(Holder::Server, |r| Holder::Node(r.node));
                (t, parent)
            })
            .collect()
    }

    /// Children of the row at `position`: for each of its threads, the
    /// nearest holder below (`None` if the thread hangs free below it).
    ///
    /// # Panics
    ///
    /// Panics if `position` is out of range.
    #[must_use]
    pub fn children_of_position(&self, position: usize) -> Vec<(ThreadId, Option<NodeId>)> {
        let row = &self.rows[position];
        row.threads
            .iter()
            .map(|&t| {
                let child = self.rows[position + 1..]
                    .iter()
                    .find(|r| r.holds(t))
                    .map(Row::node);
                (t, child)
            })
            .collect()
    }

    /// Checks the structural invariants; used by tests and assertions.
    ///
    /// # Panics
    ///
    /// Panics (with a description) on any violation.
    pub fn assert_invariants(&self) {
        assert_eq!(self.positions.len(), self.rows.len(), "index size mismatch");
        for (i, row) in self.rows.iter().enumerate() {
            assert_eq!(self.positions.get(&row.node), Some(&i), "index out of date for {}", row.node);
            assert!(!row.threads.is_empty(), "empty row");
            assert!(row.threads.windows(2).all(|w| w[0] < w[1]), "unsorted/duplicate threads");
            assert!((*row.threads.last().unwrap() as usize) < self.k, "thread out of range");
        }
    }

    fn reindex_from(&mut self, position: usize) {
        for (i, row) in self.rows.iter().enumerate().skip(position) {
            self.positions.insert(row.node, i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{RngExt as _, SeedableRng};

    fn w() -> NodeStatus {
        NodeStatus::Working
    }

    #[test]
    fn append_and_positions() {
        let mut m = ThreadMatrix::new(4);
        m.append(NodeId(10), vec![0, 1], w());
        m.append(NodeId(20), vec![1, 2], w());
        assert_eq!(m.len(), 2);
        assert_eq!(m.position_of(NodeId(10)), Some(0));
        assert_eq!(m.position_of(NodeId(20)), Some(1));
        assert_eq!(m.position_of(NodeId(99)), None);
        m.assert_invariants();
    }

    #[test]
    fn insert_in_middle_reindexes() {
        let mut m = ThreadMatrix::new(4);
        m.append(NodeId(1), vec![0], w());
        m.append(NodeId(2), vec![1], w());
        m.insert(1, NodeId(3), vec![2], w());
        assert_eq!(m.position_of(NodeId(1)), Some(0));
        assert_eq!(m.position_of(NodeId(3)), Some(1));
        assert_eq!(m.position_of(NodeId(2)), Some(2));
        m.assert_invariants();
    }

    #[test]
    fn remove_reindexes() {
        let mut m = ThreadMatrix::new(4);
        for i in 0..5 {
            m.append(NodeId(i), vec![(i % 4) as ThreadId], w());
        }
        let row = m.remove(NodeId(2));
        assert_eq!(row.node(), NodeId(2));
        assert_eq!(m.len(), 4);
        assert_eq!(m.position_of(NodeId(3)), Some(2));
        assert_eq!(m.position_of(NodeId(4)), Some(3));
        m.assert_invariants();
    }

    #[test]
    fn parents_and_children() {
        let mut m = ThreadMatrix::new(8);
        m.append(NodeId(0), vec![0, 3, 5], w());
        m.append(NodeId(1), vec![3, 4, 7], w());
        m.append(NodeId(2), vec![0, 3, 4], w());
        // Node 2: thread 0 -> node 0, thread 3 -> node 1, thread 4 -> node 1.
        let parents = m.parents_of_position(2);
        assert_eq!(
            parents,
            vec![
                (0, Holder::Node(NodeId(0))),
                (3, Holder::Node(NodeId(1))),
                (4, Holder::Node(NodeId(1))),
            ]
        );
        // Node 0: children on 0 -> node 2, 3 -> node 1, 5 -> none.
        let children = m.children_of_position(0);
        assert_eq!(
            children,
            vec![(0, Some(NodeId(2))), (3, Some(NodeId(1))), (5, None)]
        );
        // Node 1's parents: 3 -> node 0; 4, 7 -> server.
        assert_eq!(
            m.parents_of_position(1),
            vec![
                (3, Holder::Node(NodeId(0))),
                (4, Holder::Server),
                (7, Holder::Server),
            ]
        );
    }

    #[test]
    fn bottom_holders_track_last_rows() {
        let mut m = ThreadMatrix::new(4);
        assert_eq!(m.bottom_holders(), vec![Holder::Server; 4]);
        m.append(NodeId(0), vec![0, 1], w());
        m.append(NodeId(1), vec![1, 2], w());
        assert_eq!(
            m.bottom_holders(),
            vec![
                Holder::Node(NodeId(0)),
                Holder::Node(NodeId(1)),
                Holder::Node(NodeId(1)),
                Holder::Server,
            ]
        );
    }

    #[test]
    fn thread_add_remove() {
        let mut m = ThreadMatrix::new(4);
        m.append(NodeId(0), vec![0, 2], w());
        m.remove_thread(NodeId(0), 2);
        assert_eq!(m.row(0).threads(), &[0]);
        m.add_thread(NodeId(0), 3);
        assert_eq!(m.row(0).threads(), &[0, 3]);
        m.assert_invariants();
    }

    #[test]
    #[should_panic(expected = "cannot drop the last thread")]
    fn cannot_drop_last_thread() {
        let mut m = ThreadMatrix::new(4);
        m.append(NodeId(0), vec![1], w());
        m.remove_thread(NodeId(0), 1);
    }

    #[test]
    #[should_panic(expected = "already a member")]
    fn duplicate_node_rejected() {
        let mut m = ThreadMatrix::new(4);
        m.append(NodeId(0), vec![0], w());
        m.append(NodeId(0), vec![1], w());
    }

    #[test]
    #[should_panic(expected = "duplicate threads")]
    fn duplicate_threads_rejected() {
        let mut m = ThreadMatrix::new(4);
        m.append(NodeId(0), vec![1, 1], w());
    }

    #[test]
    #[should_panic(expected = "thread out of range")]
    fn out_of_range_thread_rejected() {
        let mut m = ThreadMatrix::new(4);
        m.append(NodeId(0), vec![4], w());
    }

    #[test]
    fn sample_threads_distinct_and_in_range() {
        let m = ThreadMatrix::new(10);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let t = m.sample_threads(4, &mut rng);
            assert_eq!(t.len(), 4);
            assert!(t.windows(2).all(|w| w[0] < w[1]));
            assert!(t.iter().all(|&x| (x as usize) < 10));
        }
    }

    #[test]
    fn sample_threads_uniform_marginals() {
        // Each thread should be picked with probability d/k.
        let m = ThreadMatrix::new(8);
        let mut rng = StdRng::seed_from_u64(2);
        let trials = 20_000;
        let mut counts = [0u32; 8];
        for _ in 0..trials {
            for t in m.sample_threads(2, &mut rng) {
                counts[t as usize] += 1;
            }
        }
        let expect = trials as f64 * 2.0 / 8.0;
        for (t, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.1, "thread {t} count {c} deviates {dev:.3} from {expect}");
        }
    }

    #[test]
    fn status_updates() {
        let mut m = ThreadMatrix::new(4);
        m.append(NodeId(0), vec![0], w());
        assert_eq!(m.status_of(NodeId(0)), Some(NodeStatus::Working));
        m.set_status(NodeId(0), NodeStatus::Failed);
        assert_eq!(m.status_of(NodeId(0)), Some(NodeStatus::Failed));
        assert_eq!(m.failed_nodes(), vec![NodeId(0)]);
        assert_eq!(m.working_len(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random interleavings of insert/remove keep the index consistent.
        #[test]
        fn random_ops_preserve_invariants(seed: u64, ops in 1usize..60) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut m = ThreadMatrix::new(6);
            let mut next = 0u64;
            let mut members: Vec<NodeId> = Vec::new();
            for _ in 0..ops {
                let roll: f64 = rng.random();
                if members.is_empty() || roll < 0.6 {
                    let node = NodeId(next);
                    next += 1;
                    let threads = m.sample_threads(2, &mut rng);
                    let pos = rng.random_range(0..=m.len());
                    m.insert(pos, node, threads, NodeStatus::Working);
                    members.push(node);
                } else {
                    let i = rng.random_range(0..members.len());
                    let node = members.swap_remove(i);
                    m.remove(node);
                }
                m.assert_invariants();
            }
            prop_assert_eq!(m.len(), members.len());
        }
    }
}
