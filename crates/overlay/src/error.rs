//! Error type for overlay operations.

use std::fmt;

use crate::types::NodeId;

/// Errors produced by overlay protocol operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OverlayError {
    /// Configuration violates structural constraints.
    InvalidConfig {
        /// Offending `k`.
        k: usize,
        /// Offending `d`.
        d: usize,
    },
    /// The node is not (or no longer) a member of the network.
    UnknownNode(NodeId),
    /// The operation requires a working node but the node has failed
    /// (e.g. a failed node cannot say good-bye gracefully).
    NodeFailed(NodeId),
    /// The operation requires a failed node (e.g. `repair`) but the node is
    /// working.
    NodeNotFailed(NodeId),
    /// A congestion drop was requested but the node has only one thread
    /// left.
    NoThreadToDrop(NodeId),
    /// A congestion restore was requested but the node already holds all
    /// `k` threads.
    NoThreadToRestore(NodeId),
    /// A re-admission (resync) was requested for a node that is already a
    /// member.
    AlreadyMember(NodeId),
    /// A re-admission carried an unusable thread set (empty, duplicated,
    /// or out of range).
    InvalidThreads(NodeId),
}

impl fmt::Display for OverlayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OverlayError::InvalidConfig { k, d } => {
                write!(f, "invalid overlay config: k={k}, d={d}")
            }
            OverlayError::UnknownNode(n) => write!(f, "unknown node {n}"),
            OverlayError::NodeFailed(n) => write!(f, "node {n} has failed"),
            OverlayError::NodeNotFailed(n) => write!(f, "node {n} is not failed"),
            OverlayError::NoThreadToDrop(n) => write!(f, "node {n} has no thread to drop"),
            OverlayError::NoThreadToRestore(n) => {
                write!(f, "node {n} already holds every thread")
            }
            OverlayError::AlreadyMember(n) => write!(f, "node {n} is already a member"),
            OverlayError::InvalidThreads(n) => {
                write!(f, "node {n} reported an unusable thread set")
            }
        }
    }
}

impl std::error::Error for OverlayError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            OverlayError::InvalidConfig { k: 2, d: 5 }.to_string(),
            "invalid overlay config: k=2, d=5"
        );
        assert_eq!(OverlayError::UnknownNode(NodeId(4)).to_string(), "unknown node n4");
    }
}
