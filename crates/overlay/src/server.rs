//! The central coordinator: hello, good-bye, failure/repair, congestion.
//!
//! §3: *"when a new node wishes to join the network, it contacts the server.
//! The server generates a new row at random and asks the indicated parents
//! to begin sending streams to the new node. When an old node wishes to
//! leave … the server asks the old node's parents to redirect their streams
//! to the old node's children, and then deletes the old node's row."*
//!
//! Every operation returns the *plan* (which peers must be asked to do
//! what), and the server tallies per-operation message counts so experiment
//! E10 can report the coordination load.

use curtain_telemetry::{Event, SharedRecorder, SpliceCause};
use rand::{Rng, RngExt as _};

use crate::error::OverlayError;
use crate::graph::OverlayGraph;
use crate::matrix::ThreadMatrix;
use crate::types::{Holder, InsertPolicy, NodeId, NodeStatus, OverlayConfig, ThreadId};

/// What a joining node is told: its threads and who will serve each one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinGrant {
    /// The new node's id.
    pub node: NodeId,
    /// Row position assigned in `M`.
    pub position: usize,
    /// `(thread, parent)` pairs: who starts streaming to the new node.
    pub parents: Vec<(ThreadId, Holder)>,
}

/// One stream redirection the server asks a parent to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Redirect {
    /// The thread being spliced.
    pub thread: ThreadId,
    /// Who must now send the stream (the departing node's parent).
    pub new_parent: Holder,
    /// Who receives it (`None` = the thread is left hanging, returning to
    /// the slot pool).
    pub child: Option<NodeId>,
}

/// The full splice plan for a leave or repair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairPlan {
    /// The node spliced out.
    pub node: NodeId,
    /// Per-thread redirections (`d` of them for a standard node).
    pub redirects: Vec<Redirect>,
}

/// Message and operation counters for the coordination-load experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerMetrics {
    /// Completed hello protocols.
    pub joins: u64,
    /// Completed good-bye protocols.
    pub graceful_leaves: u64,
    /// Failure reports accepted.
    pub failures_reported: u64,
    /// Repairs executed.
    pub repairs: u64,
    /// Congestion thread drops.
    pub thread_drops: u64,
    /// Congestion thread restores.
    pub thread_restores: u64,
    /// Control messages received by the server (hellos, good-byes,
    /// complaints, congestion notices).
    pub messages_in: u64,
    /// Control messages sent by the server (grants, redirect requests).
    pub messages_out: u64,
}

impl ServerMetrics {
    /// Total control messages in either direction.
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.messages_in + self.messages_out
    }
}

/// The server/coordinator of a curtain overlay.
///
/// Owns the matrix `M` and implements the §3 protocols plus the §5
/// extensions (random-position insertion, congestion drop/restore).
///
/// # Example
///
/// ```
/// use curtain_overlay::{CurtainServer, OverlayConfig};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), curtain_overlay::OverlayError> {
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut server = CurtainServer::new(OverlayConfig::new(8, 2))?;
/// let grant = server.hello(&mut rng);
/// assert_eq!(grant.parents.len(), 2);
/// let plan = server.goodbye(grant.node)?;
/// assert_eq!(plan.redirects.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CurtainServer {
    config: OverlayConfig,
    matrix: ThreadMatrix,
    next_id: u64,
    metrics: ServerMetrics,
    recorder: SharedRecorder,
}

impl CurtainServer {
    /// Creates a server for the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::InvalidConfig`] on structural violations.
    pub fn new(config: OverlayConfig) -> Result<Self, OverlayError> {
        config.validate()?;
        Ok(CurtainServer {
            config,
            matrix: ThreadMatrix::new(config.k),
            next_id: 0,
            metrics: ServerMetrics::default(),
            recorder: SharedRecorder::null(),
        })
    }

    /// Installs a telemetry recorder; every protocol operation then emits
    /// [`Event`]s (hello, good-bye, complaints, splices, repair completions,
    /// per-thread defect deltas) through it.
    pub fn set_recorder(&mut self, recorder: SharedRecorder) {
        self.recorder = recorder;
    }

    /// The telemetry handle (null unless installed).
    #[must_use]
    pub fn recorder(&self) -> &SharedRecorder {
        &self.recorder
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> OverlayConfig {
        self.config
    }

    /// Read access to the matrix `M`.
    #[must_use]
    pub fn matrix(&self) -> &ThreadMatrix {
        &self.matrix
    }

    /// Accumulated metrics.
    #[must_use]
    pub fn metrics(&self) -> ServerMetrics {
        self.metrics
    }

    /// The next node id that will be assigned (monotone; never reused).
    #[must_use]
    pub fn next_node_id(&self) -> u64 {
        self.next_id
    }

    /// Reassembles a server from checkpointed parts (see
    /// [`crate::snapshot`]).
    pub(crate) fn from_parts(
        config: OverlayConfig,
        matrix: ThreadMatrix,
        next_id: u64,
        metrics: ServerMetrics,
    ) -> Self {
        // Snapshots do not carry a recorder; re-install one after restore.
        CurtainServer { config, matrix, next_id, metrics, recorder: SharedRecorder::null() }
    }

    /// Builds the overlay graph for the current state (convenience).
    #[must_use]
    pub fn graph(&self) -> OverlayGraph {
        OverlayGraph::from_matrix(&self.matrix)
    }

    /// Hello protocol: admits a new working node.
    pub fn hello<R: Rng + ?Sized>(&mut self, rng: &mut R) -> JoinGrant {
        self.admit(rng, NodeStatus::Working)
    }

    /// Hello protocol for a node with a non-default degree — §5's
    /// heterogeneous users ("some users could have DSL connections and
    /// others could have T1 connections"): a higher-bandwidth user clips
    /// more threads.
    ///
    /// # Panics
    ///
    /// Panics if `degree == 0` or `degree > k`.
    pub fn hello_with_degree<R: Rng + ?Sized>(&mut self, degree: usize, rng: &mut R) -> JoinGrant {
        self.admit_with_degree(degree, rng, NodeStatus::Working)
    }

    /// Admits a node with an explicit status tag — the §4 analysis device
    /// ("the node tosses a coin before joining and thereby joins the network
    /// as a failed node with probability p").
    pub fn admit<R: Rng + ?Sized>(&mut self, rng: &mut R, status: NodeStatus) -> JoinGrant {
        self.admit_with_degree(self.config.d, rng, status)
    }

    /// Admits a node with an explicit status tag and degree.
    ///
    /// # Panics
    ///
    /// Panics if `degree == 0` or `degree > k`.
    pub fn admit_with_degree<R: Rng + ?Sized>(
        &mut self,
        degree: usize,
        rng: &mut R,
        status: NodeStatus,
    ) -> JoinGrant {
        assert!(degree > 0, "degree must be positive");
        let threads = self.matrix.sample_threads(degree, rng);
        self.admit_with_threads(threads, rng, status)
    }

    /// Admits a node onto an *explicitly chosen* thread set — the
    /// registration step of a decentralized join (the gossip protocol of
    /// [`crate::gossip`] picks the threads by random walks; the server, or
    /// whatever remains of it, merely records the result, cf. §7: "the role
    /// of the server can be decreased still further").
    ///
    /// # Panics
    ///
    /// Panics if `threads` is empty, out of range, or has duplicates.
    pub fn admit_with_threads<R: Rng + ?Sized>(
        &mut self,
        threads: Vec<ThreadId>,
        rng: &mut R,
        status: NodeStatus,
    ) -> JoinGrant {
        let node = NodeId(self.next_id);
        self.next_id += 1;
        let position = match self.config.insert_policy {
            InsertPolicy::Append => self.matrix.len(),
            InsertPolicy::RandomPosition => rng.random_range(0..=self.matrix.len()),
        };
        let degree = threads.len();
        if self.recorder.is_enabled() {
            self.recorder.record(&Event::Hello {
                node: node.0,
                position: position as u64,
                degree: degree as u32,
            });
            if status == NodeStatus::Failed {
                // A node that joins already failed defects every thread it
                // holds from the moment of insertion.
                for &t in &threads {
                    self.recorder.record(&Event::ThreadDefect { thread: u32::from(t), delta: 1 });
                }
            }
        }
        self.matrix.insert(position, node, threads, status);
        let parents = self.matrix.parents_of_position(position);
        // 1 hello in; 1 grant + one notification per parent out.
        self.metrics.joins += 1;
        self.metrics.messages_in += 1;
        self.metrics.messages_out += 1 + parents.len() as u64;
        JoinGrant { node, position, parents }
    }

    /// Re-admits a node under its *existing* id — the amnesiac-recovery
    /// step of the resync protocol: a coordinator that lost its matrix
    /// learns a row back from the peer itself (its thread set), appends it
    /// at the bottom of `M`, and bumps `next_id` past the reclaimed id so
    /// future hellos never collide with survivors of the old epoch.
    ///
    /// The row's matrix position is not preserved (the old ordering died
    /// with the old coordinator); appended rows may disagree with the live
    /// stream topology until the complaint path reconciles them.
    ///
    /// # Errors
    ///
    /// * [`OverlayError::AlreadyMember`] if the id is already present.
    /// * [`OverlayError::InvalidThreads`] if `threads` is empty, has
    ///   duplicates, or references a thread `>= k`.
    pub fn readmit(
        &mut self,
        node: NodeId,
        mut threads: Vec<ThreadId>,
        status: NodeStatus,
    ) -> Result<usize, OverlayError> {
        if self.matrix.position_of(node).is_some() {
            return Err(OverlayError::AlreadyMember(node));
        }
        threads.sort_unstable();
        let valid = !threads.is_empty()
            && threads.windows(2).all(|w| w[0] != w[1])
            && (threads[threads.len() - 1] as usize) < self.config.k;
        if !valid {
            return Err(OverlayError::InvalidThreads(node));
        }
        let position = self.matrix.len();
        let degree = threads.len();
        if self.recorder.is_enabled() {
            self.recorder.record(&Event::Hello {
                node: node.0,
                position: position as u64,
                degree: degree as u32,
            });
        }
        self.matrix.insert(position, node, threads, status);
        self.next_id = self.next_id.max(node.0 + 1);
        self.metrics.joins += 1;
        self.metrics.messages_in += 1;
        self.metrics.messages_out += 1;
        Ok(position)
    }

    /// Good-bye protocol: gracefully removes a working node, returning the
    /// splice plan (each parent redirected to the corresponding child).
    ///
    /// # Errors
    ///
    /// * [`OverlayError::UnknownNode`] if the node is not a member.
    /// * [`OverlayError::NodeFailed`] if the node has failed (failed nodes
    ///   cannot execute the good-bye protocol; they must be repaired).
    pub fn goodbye(&mut self, node: NodeId) -> Result<RepairPlan, OverlayError> {
        match self.matrix.status_of(node) {
            None => return Err(OverlayError::UnknownNode(node)),
            Some(NodeStatus::Failed) => return Err(OverlayError::NodeFailed(node)),
            Some(NodeStatus::Working) => {}
        }
        let plan = self.splice_out(node);
        self.metrics.graceful_leaves += 1;
        self.metrics.messages_in += 1;
        self.metrics.messages_out += plan.redirects.len() as u64;
        if self.recorder.is_enabled() {
            self.recorder.record(&Event::GoodBye { node: node.0 });
            self.recorder.record(&Event::Splice {
                node: node.0,
                redirects: plan.redirects.len() as u32,
                cause: SpliceCause::Leave,
            });
        }
        Ok(plan)
    }

    /// Failure report: children of a dead node complain; the server tags the
    /// row as failed. Returns the number of distinct complaining children.
    ///
    /// # Errors
    ///
    /// * [`OverlayError::UnknownNode`] if the node is not a member.
    /// * [`OverlayError::NodeFailed`] if already reported.
    pub fn report_failure(&mut self, node: NodeId) -> Result<usize, OverlayError> {
        match self.matrix.status_of(node) {
            None => return Err(OverlayError::UnknownNode(node)),
            Some(NodeStatus::Failed) => return Err(OverlayError::NodeFailed(node)),
            Some(NodeStatus::Working) => {}
        }
        let position = self.matrix.position_of(node).expect("checked membership");
        let mut children: Vec<NodeId> = self
            .matrix
            .children_of_position(position)
            .into_iter()
            .filter_map(|(_, c)| c)
            .collect();
        children.sort_unstable();
        children.dedup();
        self.matrix.set_status(node, NodeStatus::Failed);
        self.metrics.failures_reported += 1;
        self.metrics.messages_in += children.len() as u64;
        if self.recorder.is_enabled() {
            self.recorder
                .record(&Event::Complain { node: node.0, complaints: children.len() as u32 });
            for &t in self.matrix.row(position).threads() {
                self.recorder.record(&Event::ThreadDefect { thread: u32::from(t), delta: 1 });
            }
        }
        Ok(children.len())
    }

    /// Repair: splices a failed node out of the matrix — "perform the steps
    /// that the leaving node was supposed to do in the good-bye protocol".
    ///
    /// # Errors
    ///
    /// * [`OverlayError::UnknownNode`] if the node is not a member.
    /// * [`OverlayError::NodeNotFailed`] if the node has not been reported.
    pub fn repair(&mut self, node: NodeId) -> Result<RepairPlan, OverlayError> {
        match self.matrix.status_of(node) {
            None => return Err(OverlayError::UnknownNode(node)),
            Some(NodeStatus::Working) => return Err(OverlayError::NodeNotFailed(node)),
            Some(NodeStatus::Failed) => {}
        }
        let held: Vec<ThreadId> = if self.recorder.is_enabled() {
            let position = self.matrix.position_of(node).expect("checked membership");
            self.matrix.row(position).threads().to_vec()
        } else {
            Vec::new()
        };
        let plan = self.splice_out(node);
        self.metrics.repairs += 1;
        self.metrics.messages_out += plan.redirects.len() as u64;
        if self.recorder.is_enabled() {
            self.recorder.record(&Event::Splice {
                node: node.0,
                redirects: plan.redirects.len() as u32,
                cause: SpliceCause::Repair,
            });
            for &t in &held {
                self.recorder.record(&Event::ThreadDefect { thread: u32::from(t), delta: -1 });
            }
            self.recorder.record(&Event::RepairComplete { node: node.0 });
        }
        Ok(plan)
    }

    /// §5 congestion relief: the node sheds one randomly chosen thread; its
    /// parent and child on that thread are joined directly.
    ///
    /// # Errors
    ///
    /// * [`OverlayError::UnknownNode`] / [`OverlayError::NodeFailed`] as usual.
    /// * [`OverlayError::NoThreadToDrop`] if the node holds only one thread.
    pub fn drop_thread<R: Rng + ?Sized>(
        &mut self,
        node: NodeId,
        rng: &mut R,
    ) -> Result<Redirect, OverlayError> {
        match self.matrix.status_of(node) {
            None => return Err(OverlayError::UnknownNode(node)),
            Some(NodeStatus::Failed) => return Err(OverlayError::NodeFailed(node)),
            Some(NodeStatus::Working) => {}
        }
        let position = self.matrix.position_of(node).expect("checked membership");
        let row_threads = self.matrix.row(position).threads().to_vec();
        if row_threads.len() <= 1 {
            return Err(OverlayError::NoThreadToDrop(node));
        }
        let thread = row_threads[rng.random_range(0..row_threads.len())];
        let parent = self
            .matrix
            .parents_of_position(position)
            .into_iter()
            .find(|(t, _)| *t == thread)
            .map(|(_, p)| p)
            .expect("node holds the thread");
        let child = self
            .matrix
            .children_of_position(position)
            .into_iter()
            .find(|(t, _)| *t == thread)
            .and_then(|(_, c)| c);
        self.matrix.remove_thread(node, thread);
        self.metrics.thread_drops += 1;
        self.metrics.messages_in += 1;
        self.metrics.messages_out += 1;
        Ok(Redirect { thread, new_parent: parent, child })
    }

    /// §5 congestion recovery: the server turns a random zero of the node's
    /// row into a one; the node reattaches on that thread below its
    /// position's predecessor. Returns the thread and the new parent.
    ///
    /// # Errors
    ///
    /// * [`OverlayError::UnknownNode`] / [`OverlayError::NodeFailed`] as usual.
    /// * [`OverlayError::NoThreadToRestore`] if the row is already all ones.
    pub fn restore_thread<R: Rng + ?Sized>(
        &mut self,
        node: NodeId,
        rng: &mut R,
    ) -> Result<(ThreadId, Holder), OverlayError> {
        match self.matrix.status_of(node) {
            None => return Err(OverlayError::UnknownNode(node)),
            Some(NodeStatus::Failed) => return Err(OverlayError::NodeFailed(node)),
            Some(NodeStatus::Working) => {}
        }
        let position = self.matrix.position_of(node).expect("checked membership");
        let held = self.matrix.row(position).threads().to_vec();
        let free: Vec<ThreadId> = (0..self.matrix.k() as ThreadId)
            .filter(|t| held.binary_search(t).is_err())
            .collect();
        if free.is_empty() {
            return Err(OverlayError::NoThreadToRestore(node));
        }
        let thread = free[rng.random_range(0..free.len())];
        self.matrix.add_thread(node, thread);
        let parent = self
            .matrix
            .parents_of_position(position)
            .into_iter()
            .find(|(t, _)| *t == thread)
            .map(|(_, p)| p)
            .expect("thread just added");
        self.metrics.thread_restores += 1;
        self.metrics.messages_in += 1;
        self.metrics.messages_out += 1;
        Ok((thread, parent))
    }

    /// Computes the splice plan and removes the row.
    fn splice_out(&mut self, node: NodeId) -> RepairPlan {
        let position = self.matrix.position_of(node).expect("caller checked membership");
        let parents = self.matrix.parents_of_position(position);
        let children = self.matrix.children_of_position(position);
        let redirects = parents
            .into_iter()
            .zip(children)
            .map(|((thread, parent), (thread2, child))| {
                debug_assert_eq!(thread, thread2);
                Redirect { thread, new_parent: parent, child }
            })
            .collect();
        self.matrix.remove(node);
        RepairPlan { node, redirects }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn server(k: usize, d: usize) -> CurtainServer {
        CurtainServer::new(OverlayConfig::new(k, d)).unwrap()
    }

    #[test]
    fn first_join_is_served_by_server() {
        let mut s = server(8, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let grant = s.hello(&mut rng);
        assert_eq!(grant.parents.len(), 3);
        assert!(grant.parents.iter().all(|(_, p)| *p == Holder::Server));
        assert_eq!(grant.position, 0);
    }

    #[test]
    fn goodbye_redirects_match_parents_and_children() {
        let mut s = server(4, 2);
        let mut rng = StdRng::seed_from_u64(2);
        // Deterministic layout: use explicit matrix ops through joins until
        // a node has both parents and children, then check the splice.
        let nodes: Vec<NodeId> = (0..10).map(|_| s.hello(&mut rng).node).collect();
        let mid = nodes[4];
        let pos = s.matrix().position_of(mid).unwrap();
        let parents = s.matrix().parents_of_position(pos);
        let children = s.matrix().children_of_position(pos);
        let plan = s.goodbye(mid).unwrap();
        assert_eq!(plan.redirects.len(), 2);
        for (r, ((t1, p), (t2, c))) in plan.redirects.iter().zip(parents.into_iter().zip(children)) {
            assert_eq!(r.thread, t1);
            assert_eq!(r.thread, t2);
            assert_eq!(r.new_parent, p);
            assert_eq!(r.child, c);
        }
        assert_eq!(s.matrix().position_of(mid), None);
    }

    #[test]
    fn goodbye_unknown_or_failed_rejected() {
        let mut s = server(4, 2);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(s.goodbye(NodeId(99)).unwrap_err(), OverlayError::UnknownNode(NodeId(99)));
        let n = s.hello(&mut rng).node;
        s.report_failure(n).unwrap();
        assert_eq!(s.goodbye(n).unwrap_err(), OverlayError::NodeFailed(n));
    }

    #[test]
    fn failure_then_repair_removes_row() {
        let mut s = server(4, 2);
        let mut rng = StdRng::seed_from_u64(4);
        let a = s.hello(&mut rng).node;
        let _b = s.hello(&mut rng).node;
        let complaints = s.report_failure(a).unwrap();
        // Node b may or may not be a's child depending on thread choice.
        assert!(complaints <= 2);
        assert_eq!(s.repair(a).unwrap().node, a);
        assert_eq!(s.matrix().position_of(a), None);
        assert_eq!(s.repair(a).unwrap_err(), OverlayError::UnknownNode(a));
    }

    #[test]
    fn repair_of_working_node_rejected() {
        let mut s = server(4, 2);
        let mut rng = StdRng::seed_from_u64(5);
        let a = s.hello(&mut rng).node;
        assert_eq!(s.repair(a).unwrap_err(), OverlayError::NodeNotFailed(a));
    }

    #[test]
    fn double_failure_report_rejected() {
        let mut s = server(4, 2);
        let mut rng = StdRng::seed_from_u64(6);
        let a = s.hello(&mut rng).node;
        s.report_failure(a).unwrap();
        assert_eq!(s.report_failure(a).unwrap_err(), OverlayError::NodeFailed(a));
    }

    #[test]
    fn drop_and_restore_thread() {
        let mut s = server(6, 3);
        let mut rng = StdRng::seed_from_u64(7);
        let a = s.hello(&mut rng).node;
        let redirect = s.drop_thread(a, &mut rng).unwrap();
        assert_eq!(redirect.new_parent, Holder::Server);
        assert_eq!(s.matrix().row(0).threads().len(), 2);
        let (t, parent) = s.restore_thread(a, &mut rng).unwrap();
        assert!(!s.matrix().row(0).threads().is_empty());
        assert!(s.matrix().row(0).holds(t));
        assert_eq!(parent, Holder::Server);
        assert_eq!(s.matrix().row(0).threads().len(), 3);
    }

    #[test]
    fn drop_last_thread_rejected() {
        let mut s = server(4, 1);
        let mut rng = StdRng::seed_from_u64(8);
        let a = s.hello(&mut rng).node;
        assert_eq!(s.drop_thread(a, &mut rng).unwrap_err(), OverlayError::NoThreadToDrop(a));
    }

    #[test]
    fn restore_with_full_row_rejected() {
        let mut s = server(3, 3);
        let mut rng = StdRng::seed_from_u64(9);
        let a = s.hello(&mut rng).node;
        assert_eq!(
            s.restore_thread(a, &mut rng).unwrap_err(),
            OverlayError::NoThreadToRestore(a)
        );
    }

    #[test]
    fn metrics_accumulate() {
        let mut s = server(8, 2);
        let mut rng = StdRng::seed_from_u64(10);
        let a = s.hello(&mut rng).node;
        let b = s.hello(&mut rng).node;
        s.goodbye(a).unwrap();
        s.report_failure(b).unwrap();
        s.repair(b).unwrap();
        let m = s.metrics();
        assert_eq!(m.joins, 2);
        assert_eq!(m.graceful_leaves, 1);
        assert_eq!(m.failures_reported, 1);
        assert_eq!(m.repairs, 1);
        assert!(m.messages_out >= 2 * (1 + 2) + 2 + 2);
    }

    #[test]
    fn protocol_events_trace_lifecycle_and_defect_deltas() {
        use curtain_telemetry::{Event, MemorySink, SharedRecorder, SpliceCause};

        let mut s = server(8, 2);
        let sink = MemorySink::new();
        s.set_recorder(SharedRecorder::new(sink.clone()));
        let mut rng = StdRng::seed_from_u64(21);
        let a = s.hello(&mut rng).node;
        let b = s.hello(&mut rng).node;
        s.goodbye(a).unwrap();
        s.report_failure(b).unwrap();
        s.repair(b).unwrap();

        let events: Vec<Event> = sink.events().into_iter().map(|(_, e)| e).collect();
        // Two hellos, then good-bye + leave-splice, then complaint + d
        // defect increments, then repair-splice + d decrements + completion.
        assert!(matches!(events[0], Event::Hello { node, degree: 2, .. } if node == a.0));
        assert!(matches!(events[1], Event::Hello { node, degree: 2, .. } if node == b.0));
        assert_eq!(events[2], Event::GoodBye { node: a.0 });
        assert!(matches!(
            events[3],
            Event::Splice { node, cause: SpliceCause::Leave, .. } if node == a.0
        ));
        assert!(matches!(events[4], Event::Complain { node, .. } if node == b.0));
        assert!(matches!(
            events[events.len() - 1],
            Event::RepairComplete { node } if node == b.0
        ));
        // Per-thread defect deltas must cancel once the repair completes.
        let mut net_delta = 0i64;
        let mut increments = 0;
        for e in &events {
            if let Event::ThreadDefect { delta, .. } = e {
                net_delta += delta;
                if *delta > 0 {
                    increments += 1;
                }
            }
        }
        assert_eq!(increments, 2, "one increment per thread held by b");
        assert_eq!(net_delta, 0);
    }

    #[test]
    fn failed_join_defects_its_threads_immediately() {
        use curtain_telemetry::{Event, MemorySink, SharedRecorder};

        let mut s = server(8, 3);
        let sink = MemorySink::new();
        s.set_recorder(SharedRecorder::new(sink.clone()));
        let mut rng = StdRng::seed_from_u64(22);
        s.admit(&mut rng, NodeStatus::Failed);
        let increments = sink
            .events()
            .iter()
            .filter(|(_, e)| matches!(e, Event::ThreadDefect { delta: 1, .. }))
            .count();
        assert_eq!(increments, 3);
    }

    #[test]
    fn random_position_policy_inserts_anywhere() {
        let cfg = OverlayConfig::new(8, 2).with_insert_policy(InsertPolicy::RandomPosition);
        let mut s = CurtainServer::new(cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen_non_tail = false;
        for _ in 0..50 {
            let g = s.admit(&mut rng, NodeStatus::Working);
            if g.position + 1 < s.matrix().len() {
                seen_non_tail = true;
            }
        }
        assert!(seen_non_tail, "random insertion never hit the interior");
        s.matrix().assert_invariants();
    }

    #[test]
    fn readmit_restores_row_and_bumps_next_id() {
        let mut s = server(8, 2);
        let mut rng = StdRng::seed_from_u64(30);
        s.hello(&mut rng); // node 0 occupies the top
        // A survivor of a previous epoch resyncs with id 17.
        let pos = s.readmit(NodeId(17), vec![5, 1], NodeStatus::Working).unwrap();
        assert_eq!(pos, 1, "resynced rows append at the bottom");
        assert_eq!(s.matrix().row(pos).threads(), &[1, 5], "threads sorted on insert");
        assert_eq!(s.next_node_id(), 18, "next_id jumps past the reclaimed id");
        let fresh = s.hello(&mut rng).node;
        assert_eq!(fresh, NodeId(18), "no id reuse after resync");
        s.matrix().assert_invariants();
    }

    #[test]
    fn readmit_rejects_members_and_bad_threads() {
        let mut s = server(4, 2);
        let mut rng = StdRng::seed_from_u64(31);
        let a = s.hello(&mut rng).node;
        assert_eq!(
            s.readmit(a, vec![0, 1], NodeStatus::Working).unwrap_err(),
            OverlayError::AlreadyMember(a)
        );
        for bad in [vec![], vec![2, 2], vec![0, 4]] {
            assert_eq!(
                s.readmit(NodeId(9), bad, NodeStatus::Working).unwrap_err(),
                OverlayError::InvalidThreads(NodeId(9))
            );
        }
        assert_eq!(s.matrix().len(), 1, "rejected resyncs leave M untouched");
    }

    #[test]
    fn splice_preserves_connectivity_of_others() {
        // Build, splice a middle node, and check everyone else still has d.
        let mut s = server(10, 3);
        let mut rng = StdRng::seed_from_u64(12);
        let nodes: Vec<NodeId> = (0..30).map(|_| s.hello(&mut rng).node).collect();
        s.goodbye(nodes[10]).unwrap();
        s.goodbye(nodes[20]).unwrap();
        let g = s.graph();
        for p in 0..s.matrix().len() {
            assert_eq!(g.connectivity_of_position(p), 3, "row {p}");
        }
    }
}
