//! Decentralized joins via gossip random walks.
//!
//! §3 notes that the central hello protocol is an *abstraction*: "it is
//! possible also to have a distributed protocol, as in [12], which uses a
//! gossip mechanism for a newly arriving node to find its parents", and §7
//! adds that "the role of the server can be decreased still further or even
//! eliminated".
//!
//! This module implements that variant. A newcomer knows one *bootstrap*
//! member. For each of its `d` slots it launches a random walk over the
//! membership graph (neighbors = overlay parents ∪ children); when the walk
//! ends on a member currently holding the hanging end of one or more
//! threads, the newcomer clips a random one of them. Longer walks mix
//! better: the resulting thread choice converges to the centralized uniform
//! pick, which is exactly what experiment E15 measures.

use std::collections::HashMap;

use rand::{Rng, RngExt as _};

use crate::network::CurtainNetwork;
use crate::types::{Holder, NodeId, NodeStatus, ThreadId};

/// Parameters of a gossip join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GossipConfig {
    /// Steps per random walk. Longer = better mixed ≈ more uniform.
    pub walk_length: usize,
    /// Attempts to find a slot before falling back to a uniform pick (the
    /// newcomer asks the server/tracker as a last resort, as BitTorrent
    /// clients do).
    pub max_attempts: usize,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig { walk_length: 16, max_attempts: 64 }
    }
}

/// Outcome statistics of one gossip join.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GossipJoinStats {
    /// Total random-walk steps taken.
    pub walk_steps: u64,
    /// Slots found via gossip.
    pub gossip_slots: usize,
    /// Slots that fell back to the tracker (uniform pick).
    pub fallback_slots: usize,
}

/// The membership graph used by the walks: every member plus the server
/// (its direct children know it), with overlay parent/child adjacency.
fn membership_graph(net: &CurtainNetwork) -> (Vec<Holder>, HashMap<Holder, Vec<Holder>>) {
    let matrix = net.matrix();
    let members: Vec<Holder> = matrix
        .rows()
        .iter()
        .map(|r| Holder::Node(r.node()))
        .collect();
    let mut adj: HashMap<Holder, Vec<Holder>> = HashMap::new();
    for (pos, row) in matrix.rows().iter().enumerate() {
        let me = Holder::Node(row.node());
        for (_, parent) in matrix.parents_of_position(pos) {
            adj.entry(me).or_default().push(parent);
            adj.entry(parent).or_default().push(me);
        }
    }
    (members, adj)
}

/// Hanging threads per holder (`bottom_holders` inverted; includes the
/// server's own free threads).
fn hanging_by_holder(net: &CurtainNetwork) -> HashMap<Holder, Vec<ThreadId>> {
    let mut map: HashMap<Holder, Vec<ThreadId>> = HashMap::new();
    for (t, holder) in net.matrix().bottom_holders().into_iter().enumerate() {
        map.entry(holder).or_default().push(t as ThreadId);
    }
    map
}

/// Joins a new working node by gossip; returns its id and the walk
/// statistics.
///
/// The first member (empty network) necessarily takes server threads. The
/// degree used is the network's configured `d`.
pub fn gossip_join<R: Rng + ?Sized>(
    net: &mut CurtainNetwork,
    config: GossipConfig,
    rng: &mut R,
) -> (NodeId, GossipJoinStats) {
    let d = net.config().d;
    let mut stats = GossipJoinStats::default();
    let mut chosen: Vec<ThreadId> = Vec::with_capacity(d);

    let (members, adj) = membership_graph(net);
    let hanging = hanging_by_holder(net);

    if !members.is_empty() {
        // Bootstrap: one known member, e.g. the most recent joiner.
        let bootstrap = *members.last().expect("non-empty");
        for _slot in 0..d {
            let mut found = None;
            'attempts: for _ in 0..config.max_attempts {
                // One random walk.
                let mut here = bootstrap;
                for _ in 0..config.walk_length {
                    stats.walk_steps += 1;
                    if let Some(neigh) = adj.get(&here) {
                        if !neigh.is_empty() {
                            here = neigh[rng.random_range(0..neigh.len())];
                        }
                    }
                }
                // Does the endpoint hold a hanging thread we haven't taken?
                if let Some(slots) = hanging.get(&here) {
                    let free: Vec<ThreadId> = slots
                        .iter()
                        .copied()
                        .filter(|t| !chosen.contains(t))
                        .collect();
                    if !free.is_empty() {
                        found = Some(free[rng.random_range(0..free.len())]);
                        break 'attempts;
                    }
                }
            }
            match found {
                Some(t) => {
                    stats.gossip_slots += 1;
                    chosen.push(t);
                }
                None => {
                    stats.fallback_slots += 1;
                }
            }
        }
    }

    // Server-held hanging threads are reachable only via the tracker
    // fallback (no member to walk to), as are exhausted walks.
    let mut free: Vec<ThreadId> = (0..net.config().k as ThreadId)
        .filter(|t| !chosen.contains(t))
        .collect();
    while chosen.len() < d {
        let i = rng.random_range(0..free.len());
        chosen.push(free.swap_remove(i));
    }
    chosen.sort_unstable();

    let grant = net
        .server_mut()
        .admit_with_threads(chosen, rng, NodeStatus::Working);
    (grant.node, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::OverlayConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(k: usize, d: usize) -> CurtainNetwork {
        CurtainNetwork::new(OverlayConfig::new(k, d)).unwrap()
    }

    #[test]
    fn first_join_uses_fallback() {
        let mut n = net(8, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let (id, stats) = gossip_join(&mut n, GossipConfig::default(), &mut rng);
        assert_eq!(n.len(), 1);
        assert_eq!(stats.gossip_slots, 0);
        assert_eq!(n.connectivity_of(id), Some(3));
    }

    #[test]
    fn grown_gossip_network_has_full_connectivity() {
        let mut n = net(12, 3);
        let mut rng = StdRng::seed_from_u64(2);
        let ids: Vec<NodeId> = (0..60)
            .map(|_| gossip_join(&mut n, GossipConfig::default(), &mut rng).0)
            .collect();
        n.matrix().assert_invariants();
        for id in ids {
            assert_eq!(n.connectivity_of(id), Some(3));
        }
    }

    #[test]
    fn gossip_finds_most_slots_without_the_tracker() {
        let mut n = net(8, 2);
        let mut rng = StdRng::seed_from_u64(3);
        // Warm up so members hold the hanging ends.
        for _ in 0..20 {
            gossip_join(&mut n, GossipConfig::default(), &mut rng);
        }
        let mut gossip = 0;
        let mut fallback = 0;
        for _ in 0..50 {
            let (_, s) = gossip_join(&mut n, GossipConfig::default(), &mut rng);
            gossip += s.gossip_slots;
            fallback += s.fallback_slots;
        }
        assert!(
            gossip > 4 * fallback,
            "gossip should find most slots: {gossip} vs fallback {fallback}"
        );
    }

    #[test]
    fn longer_walks_approach_uniform_thread_usage() {
        // Frequency of each thread across many joins should be ~d/k for
        // well-mixed walks.
        let trials = 1200;
        let k = 8;
        let d = 2;
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = vec![0u32; k];
        let mut n = net(k, d);
        let cfg = GossipConfig { walk_length: 24, max_attempts: 64 };
        for _ in 0..trials {
            let (id, _) = gossip_join(&mut n, cfg, &mut rng);
            let pos = n.matrix().position_of(id).unwrap();
            for &t in n.matrix().row(pos).threads() {
                counts[t as usize] += 1;
            }
            // Keep the network from growing unboundedly.
            if n.len() > 60 {
                let victim = n.node_ids()[0];
                n.leave(victim).unwrap();
            }
        }
        let expect = (trials * d) as f64 / k as f64;
        for (t, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.25, "thread {t}: {c} vs {expect} ({dev:.2})");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut n = net(8, 2);
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..30 {
                gossip_join(&mut n, GossipConfig::default(), &mut rng);
            }
            n.matrix().clone()
        };
        assert_eq!(run(5), run(5));
    }
}
