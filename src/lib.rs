//! # coded-curtain
//!
//! A full reproduction of *"Building Scalable and Robust Peer-to-Peer Overlay
//! Networks for Broadcasting using Network Coding"* (Jain, Lovász, Chou —
//! PODC 2005) as a production-quality Rust workspace.
//!
//! The paper proposes the **curtain overlay**: a server hangs `k`
//! unit-bandwidth *threads*; every joining peer clips `d` random threads
//! together, receives the streams from the previous holders, recodes them
//! with random linear network coding, and passes them on. A tiny central
//! matrix `M` mirrors the topology and drives hello / good-bye / repair
//! protocols. The paper proves that failures are *locally contained* (a
//! node's expected connectivity loss stays ≈ `p·d`, Theorem 4) until the
//! network has grown exponentially in `k/d³` (Theorem 5).
//!
//! This facade crate re-exports the workspace layers:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`gf`] | `curtain-gf` | GF(2⁸)/GF(2¹⁶), matrices, Reed–Solomon |
//! | [`rlnc`] | `curtain-rlnc` | practical network coding codec |
//! | [`codec`] | `curtain-codec` | pluggable broadcast codecs: whole-object RLNC, overlapping classes, sliding window |
//! | [`overlay`] | `curtain-overlay` | the paper's curtain protocol + analysis hooks |
//! | [`simnet`] | `curtain-simnet` | deterministic discrete-event network simulator |
//! | [`broadcast`] | `curtain-broadcast` | end-to-end sessions, strategies, attacks |
//! | [`analysis`] | `curtain-analysis` | closed-form drift/bounds from the paper |
//! | [`net`] | `curtain-net` | the protocol over real TCP sockets (coordinator, source, peers) |
//! | [`telemetry`] | `curtain-telemetry` | event traces, metrics, JSONL sinks, replay |
//!
//! # Quickstart
//!
//! ```
//! use coded_curtain::overlay::{CurtainNetwork, OverlayConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // A curtain with k = 32 threads, each node clipping d = 4.
//! let mut rng = StdRng::seed_from_u64(7);
//! let mut net = CurtainNetwork::new(OverlayConfig::new(32, 4)).expect("valid config");
//! for _ in 0..100 {
//!     net.join(&mut rng);
//! }
//! // Every working node has full connectivity d from the server.
//! let worst = (0..net.len())
//!     .filter_map(|i| net.connectivity_of_index(i))
//!     .min()
//!     .unwrap();
//! assert_eq!(worst, 4);
//! ```
//!
//! See `examples/` for realistic scenarios and `crates/bench/src/bin/` for
//! the experiment harnesses reproducing every claim of the paper
//! (documented in `EXPERIMENTS.md`).

#![forbid(unsafe_code)]

pub use curtain_analysis as analysis;
pub use curtain_broadcast as broadcast;
pub use curtain_codec as codec;
pub use curtain_gf as gf;
pub use curtain_net as net;
pub use curtain_overlay as overlay;
pub use curtain_rlnc as rlnc;
pub use curtain_simnet as simnet;
pub use curtain_telemetry as telemetry;
