//! Long-running churn: the overlay invariants and connectivity guarantees
//! must survive thousands of interleaved joins, leaves, failures, repairs,
//! and congestion events.

use coded_curtain::overlay::churn::{ChurnConfig, ChurnDriver};
use coded_curtain::overlay::{CurtainNetwork, InsertPolicy, NodeStatus, OverlayConfig, OverlayError};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

#[test]
fn heavy_churn_preserves_matrix_invariants() {
    for policy in [InsertPolicy::Append, InsertPolicy::RandomPosition] {
        let cfg = OverlayConfig::new(16, 3).with_insert_policy(policy);
        let mut net = CurtainNetwork::new(cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut driver = ChurnDriver::new(ChurnConfig {
            join_prob: 0.7,
            leave_prob: 0.3,
            fail_prob: 0.1,
            repair_delay: 7,
        });
        driver.run(&mut net, 2_000, &mut rng);
        net.matrix().assert_invariants();
        assert!(driver.stats().joins > 1000);
        assert!(driver.stats().repairs > 0);
    }
}

#[test]
fn connectivity_always_full_after_repair_drain() {
    let mut net = CurtainNetwork::new(OverlayConfig::new(12, 2)).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let mut driver = ChurnDriver::new(ChurnConfig {
        join_prob: 0.9,
        leave_prob: 0.2,
        fail_prob: 0.2,
        repair_delay: 5,
    });
    for round in 0..20 {
        driver.run(&mut net, 50, &mut rng);
        // Drain all outstanding failures, then everyone must be back at d.
        net.repair_all();
        assert_eq!(
            net.min_working_connectivity(),
            Some(2),
            "round {round}: repair did not restore connectivity"
        );
    }
}

#[test]
fn working_connectivity_loss_stays_near_pd_under_steady_churn() {
    // A protocol-level cousin of Theorem 4: with failures repaired after a
    // fixed interval, the standing fraction of failed rows is small and the
    // mean connectivity loss of working nodes stays bounded.
    let mut net = CurtainNetwork::new(OverlayConfig::new(24, 3)).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    // Build up.
    for _ in 0..300 {
        net.join(&mut rng);
    }
    let mut driver = ChurnDriver::new(ChurnConfig {
        join_prob: 0.3,
        leave_prob: 0.3,
        fail_prob: 0.05,
        repair_delay: 20,
    });
    let mut losses = Vec::new();
    for _ in 0..40 {
        driver.run(&mut net, 25, &mut rng);
        losses.push(net.mean_working_connectivity_loss().unwrap());
    }
    let mean_loss = losses.iter().sum::<f64>() / losses.len() as f64;
    // Standing failed fraction ≈ fail_prob * repair_delay / N ≈ 1/300 each
    // step... empirically tiny; the point is it must not grow over time.
    let early = losses[..10].iter().sum::<f64>() / 10.0;
    let late = losses[30..].iter().sum::<f64>() / 10.0;
    assert!(mean_loss < 0.5, "mean loss {mean_loss} too large");
    assert!(
        late < early + 0.25,
        "loss grew over time: early {early:.3} late {late:.3}"
    );
}

#[test]
fn congestion_drop_restore_cycles_are_stable() {
    let mut net = CurtainNetwork::new(OverlayConfig::new(16, 4)).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let ids: Vec<_> = (0..50).map(|_| net.join(&mut rng)).collect();
    // Random congestion events: drop a thread, later restore one.
    let mut dropped: Vec<_> = Vec::new();
    for step in 0..500 {
        let id = ids[rng.random_range(0..ids.len())];
        if step % 2 == 0 {
            if net.server_mut().drop_thread(id, &mut rng).is_ok() {
                dropped.push(id);
            }
        } else if let Some(id) = dropped.pop() {
            let _ = net.server_mut().restore_thread(id, &mut rng);
        }
        if step % 100 == 0 {
            net.matrix().assert_invariants();
        }
    }
    net.matrix().assert_invariants();
    // Connectivity of each node equals its current thread count (no
    // failures present).
    let graph = net.graph();
    for (pos, row) in net.matrix().rows().iter().enumerate() {
        assert_eq!(
            graph.connectivity_of_position(pos),
            row.threads().len(),
            "node at {pos}"
        );
    }
}

#[test]
fn error_paths_are_stable_under_churn() {
    let mut net = CurtainNetwork::new(OverlayConfig::new(8, 2)).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let a = net.join(&mut rng);
    let b = net.join(&mut rng);
    net.fail(a).unwrap();
    // Failed node cannot leave gracefully.
    assert_eq!(net.leave(a), Err(OverlayError::NodeFailed(a)));
    // Working node cannot be repaired.
    assert_eq!(net.repair(b), Err(OverlayError::NodeNotFailed(b)));
    // Double-fail rejected.
    assert_eq!(net.fail(a), Err(OverlayError::NodeFailed(a)));
    net.repair(a).unwrap();
    // After repair the node is gone entirely.
    assert_eq!(net.fail(a), Err(OverlayError::UnknownNode(a)));
    assert_eq!(net.matrix().status_of(b), Some(NodeStatus::Working));
}

#[test]
fn massive_network_smoke() {
    // 5000 joins with interleaved leaves: the bookkeeping must stay exact.
    let mut net = CurtainNetwork::new(OverlayConfig::new(64, 4)).unwrap();
    let mut rng = StdRng::seed_from_u64(6);
    let mut members = Vec::new();
    for i in 0..5000 {
        members.push(net.join(&mut rng));
        if i % 3 == 2 {
            let idx = rng.random_range(0..members.len());
            let id = members.swap_remove(idx);
            net.leave(id).unwrap();
        }
    }
    assert_eq!(net.len(), members.len());
    net.matrix().assert_invariants();
    // Spot-check connectivity of a few nodes.
    for &id in members.iter().step_by(members.len() / 7) {
        assert_eq!(net.connectivity_of(id), Some(4));
    }
}
