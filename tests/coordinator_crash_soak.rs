//! Kill-the-coordinator soak: a real-TCP swarm survives the control
//! plane crashing and restarting mid-churn — in both recovery modes.
//!
//! * **WAL replay** — the coordinator restarts from its write-ahead log
//!   and must resurrect the *exact* pre-crash matrix (zero resyncs).
//! * **Amnesiac (WAL lost)** — the log is deleted before the restart;
//!   the coordinator comes back empty and must rebuild `M` from the
//!   peers' `Resync` uploads triggered by "unknown child" complaints.
//!
//! In both modes every survivor completes, no repair ever gives up, and
//! the recovered matrix passes the row invariants (every row exactly `d`
//! distinct threads, holders consistent).
//!
//! Knobs:
//!
//! * `CURTAIN_CRASH_PEERS` — initial swarm size (default 6)
//! * `CURTAIN_CRASH_TRACE` — if set, each test dumps its telemetry trace
//!   as JSONL to `<value>-<mode>.jsonl` (CI greps these)

use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use curtain_net::repair::RepairPolicy;
use curtain_net::{Coordinator, Peer, PeerConfig, Source, WalOptions};
use curtain_overlay::{NodeId, OverlayConfig, ThreadId};
use curtain_telemetry::{MemorySink, SharedRecorder};

const PACE: Duration = Duration::from_micros(500);
const K: usize = 4;
const D: usize = 2;
const COMPLETE_TIMEOUT: Duration = Duration::from_secs(60);

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn content(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 173 % 251) as u8).collect()
}

/// Generous deadline: a complaint must survive the whole coordinator
/// outage (kill → recover → resync) without giving up.
fn crash_policy() -> RepairPolicy {
    RepairPolicy {
        initial_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(200),
        deadline: Duration::from_secs(30),
        window: Duration::from_secs(10),
        window_budget: 1000,
        stall_timeout: Duration::from_millis(1500),
        ..RepairPolicy::default()
    }
}

fn join(coordinator_addr: std::net::SocketAddr, sink: &MemorySink) -> Peer {
    Peer::join_with(
        coordinator_addr,
        PeerConfig {
            pace: PACE,
            recorder: SharedRecorder::wall_clock(sink.clone()),
            repair: crash_policy(),
            ..PeerConfig::default()
        },
    )
    .expect("join")
}

fn wal_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("curtain-crash-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("wal dir");
    dir.join(name)
}

fn dump_trace(sink: &MemorySink, mode: &str) {
    let Ok(prefix) = std::env::var("CURTAIN_CRASH_TRACE") else { return };
    if prefix.is_empty() {
        return;
    }
    let path = format!("{prefix}-{mode}.jsonl");
    let mut out = String::new();
    for (at, event) in sink.events() {
        event.write_jsonl(at, &mut out);
        out.push('\n');
    }
    let mut file = std::fs::File::create(&path).expect("trace file");
    file.write_all(out.as_bytes()).expect("trace write");
    println!("crash-soak trace ({mode}): {} events -> {path}", sink.events().len());
}

/// Picks a member that currently *parents* another peer (has at least
/// one active child subscription) — crashing it forces real complaints.
/// With six members holding `6·d = 12` (row, thread) slots over `k = 4`
/// threads, some thread has ≥ 2 rows, so such a relation always exists
/// once the data plane is connected.
fn pick_node_parent(peers: &[Peer]) -> NodeId {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Some(p) = peers.iter().find(|p| p.active_children() > 0) {
            return p.node_id();
        }
        assert!(Instant::now() < deadline, "no peer ever acquired a child subscription");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The recovered matrix must satisfy the paper's row invariants (every
/// row exactly `d` distinct threads — holder consistency is asserted
/// inside the coordinator on every mutation and replay), and every row
/// must belong to a live peer — except up to `max_dead` rows for peers
/// that died while the coordinator was down (their splice happens
/// lazily, at the next complaint).
fn assert_recovered_matrix(rows: &[(u64, Vec<ThreadId>)], survivors: &[NodeId], max_dead: usize) {
    let mut dead = 0usize;
    for (node, row_threads) in rows {
        let mut threads = row_threads.clone();
        threads.sort_unstable();
        threads.dedup();
        assert_eq!(
            threads.len(),
            D,
            "row {node} holds {row_threads:?}, not exactly d = {D} distinct threads"
        );
        assert!(
            threads.iter().all(|&t| (t as usize) < K),
            "row {node} holds an out-of-range thread: {row_threads:?}"
        );
        if !survivors.contains(&NodeId(*node)) {
            dead += 1;
        }
    }
    assert!(dead <= max_dead, "{dead} rows belong to dead peers (allowed {max_dead})");
}

fn wait_all_complete(peers: &[Peer]) {
    let deadline = Instant::now() + COMPLETE_TIMEOUT;
    for p in peers {
        let left = deadline.saturating_duration_since(Instant::now());
        assert!(
            p.wait_complete(left),
            "peer {} stuck at rank {} after the recovery",
            p.node_id(),
            p.rank()
        );
    }
}

fn wait_progress(peers: &[Peer]) {
    let deadline = Instant::now() + Duration::from_secs(20);
    for p in peers {
        while p.rank() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(p.rank() > 0, "peer {} made no progress", p.node_id());
    }
}

/// Mode 1: the WAL survives the crash. Recovery is pure replay — the
/// rebuilt matrix is *identical* to the pre-crash one, zero resyncs —
/// and the swarm (including a parent crash during the outage, and a
/// fresh joiner afterwards) finishes with zero give-ups.
#[test]
fn coordinator_crash_with_wal_recovers_by_pure_replay() {
    let n = env_usize("CURTAIN_CRASH_PEERS", 6).max(4);
    let path = wal_path("with-wal.wal");
    let sink = MemorySink::new();
    let recorder = SharedRecorder::wall_clock(sink.clone());
    let config = OverlayConfig::new(K, D);

    let coordinator =
        Coordinator::start_durable(config, 0xDEAD, recorder.clone(), &WalOptions::new(&path))
            .unwrap();
    let addr = coordinator.addr();
    let data = content(32 * 1024);
    let source = Source::start_with_shape(addr, &data, 32, 256, PACE).unwrap();

    let mut peers: Vec<Peer> = (0..n).map(|_| join(addr, &sink)).collect();
    wait_progress(&peers);

    // ---- the crash ----
    let victim = pick_node_parent(&peers);
    let pre_rows = coordinator.matrix_rows();
    coordinator.kill();
    // While the control plane is dark, a *parent* peer dies: its
    // children complain into a dead socket and must keep retrying
    // through the outage.
    let at = peers.iter().position(|p| p.node_id() == victim).expect("victim is ours");
    peers.swap_remove(at).crash();
    std::thread::sleep(Duration::from_millis(300));

    let recovered =
        Coordinator::recover_at(addr, WalOptions::new(&path), config, 0xBEEF, recorder).unwrap();
    assert_eq!(recovered.addr(), addr);

    // Pure replay: the resurrected matrix is row-for-row the pre-crash
    // one (the victim's row included — its splice comes later, from the
    // complaints now landing).
    assert_eq!(recovered.matrix_rows(), pre_rows, "WAL replay must reproduce M exactly");

    // The recovered control plane keeps serving: a fresh joiner and all
    // survivors complete.
    peers.push(join(addr, &sink));
    wait_all_complete(&peers);
    for p in &peers {
        assert_eq!(p.decoded_content().unwrap(), data, "peer {} decoded garbage", p.node_id());
    }

    let survivors: Vec<NodeId> = peers.iter().map(Peer::node_id).collect();
    assert_recovered_matrix(&recovered.matrix_rows(), &survivors, 1);

    drop(peers);
    drop(source);
    recovered.shutdown();
    dump_trace(&sink, "with-wal");

    let kinds: Vec<String> = sink.events().iter().map(|(_, e)| e.kind().to_string()).collect();
    assert!(kinds.contains(&"coordinator_down".to_string()));
    assert!(kinds.contains(&"coordinator_recovered".to_string()));
    assert!(
        !kinds.contains(&"repair_gave_up".to_string()),
        "a repair gave up during the crash soak"
    );
    let counters = sink.metrics().snapshot().counters;
    assert_eq!(
        counters.get("resynced_rows").copied().unwrap_or(0),
        0,
        "WAL replay must need zero resyncs"
    );
    assert!(counters.get("repairs").copied().unwrap_or(0) >= 1, "no repair ever ran");
    let _ = std::fs::remove_file(&path);
}

/// Mode 2: the WAL is *lost* with the crash. The coordinator restarts
/// empty and must rebuild `M` from the peers themselves: complaints hit
/// "unknown child", each orphan uploads its thread→parent view via
/// `Resync`, and the re-registered source anchors the redirects.
#[test]
fn coordinator_crash_without_wal_recovers_by_peer_resync() {
    let n = env_usize("CURTAIN_CRASH_PEERS", 6).max(4);
    let path = wal_path("amnesiac.wal");
    let sink = MemorySink::new();
    let recorder = SharedRecorder::wall_clock(sink.clone());
    let config = OverlayConfig::new(K, D);

    let coordinator =
        Coordinator::start_durable(config, 0xFEED, recorder.clone(), &WalOptions::new(&path))
            .unwrap();
    let addr = coordinator.addr();
    let data = content(32 * 1024);
    let source = Source::start_with_shape(addr, &data, 32, 256, PACE).unwrap();

    let mut peers: Vec<Peer> = (0..n).map(|_| join(addr, &sink)).collect();
    wait_progress(&peers);

    // ---- the crash, with total state loss ----
    let victim = pick_node_parent(&peers);
    coordinator.kill();
    std::fs::remove_file(&path).expect("delete WAL");
    let at = peers.iter().position(|p| p.node_id() == victim).expect("victim is ours");
    peers.swap_remove(at).crash();
    std::thread::sleep(Duration::from_millis(300));

    let recovered =
        Coordinator::recover_at(addr, WalOptions::new(&path), config, 0xFACE, recorder).unwrap();
    assert_eq!(recovered.members(), 0, "an amnesiac coordinator starts empty");
    // The source re-anchors itself first — redirects to `Holder::Server`
    // need a registered source address.
    source.reregister().expect("source re-registration");

    // The victim's children resync themselves back into M and finish.
    peers.push(join(addr, &sink));
    wait_all_complete(&peers);
    for p in &peers {
        assert_eq!(p.decoded_content().unwrap(), data, "peer {} decoded garbage", p.node_id());
    }

    let survivors: Vec<NodeId> = peers.iter().map(Peer::node_id).collect();
    // Resync only re-learns rows of peers that had to complain, so the
    // matrix is a *subset* of the survivors — and contains no dead rows:
    // the victim cannot resync from the grave.
    assert_recovered_matrix(&recovered.matrix_rows(), &survivors, 0);
    assert!(recovered.members() >= 1, "nobody resynced into the empty matrix");

    drop(peers);
    drop(source);
    recovered.shutdown();
    dump_trace(&sink, "resync");

    let kinds: Vec<String> = sink.events().iter().map(|(_, e)| e.kind().to_string()).collect();
    assert!(kinds.contains(&"coordinator_down".to_string()));
    assert!(kinds.contains(&"coordinator_recovered".to_string()));
    assert!(kinds.contains(&"peer_resync".to_string()), "no peer ever resynced");
    assert!(
        !kinds.contains(&"repair_gave_up".to_string()),
        "a repair gave up during the amnesiac crash soak"
    );
    let counters = sink.metrics().snapshot().counters;
    assert!(
        counters.get("resynced_rows").copied().unwrap_or(0) >= 1,
        "amnesiac recovery rebuilt nothing via resync"
    );
    let _ = std::fs::remove_file(&path);
}
