//! End-to-end integration: overlay growth → simulated broadcast → decode,
//! across every strategy and both topology families.

use coded_curtain::broadcast::{Session, SessionConfig, Strategy, TopologySpec};
use coded_curtain::overlay::random_graph::RandomGraphOverlay;
use coded_curtain::overlay::{CurtainNetwork, OverlayConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn curtain(k: usize, d: usize, n: usize, seed: u64) -> CurtainNetwork {
    let mut net = CurtainNetwork::new(OverlayConfig::new(k, d)).expect("valid config");
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..n {
        net.join(&mut rng);
    }
    net
}

#[test]
fn all_strategies_complete_on_healthy_curtain() {
    let net = curtain(12, 3, 60, 1);
    let topo = TopologySpec::from_curtain(&net);
    for strategy in [Strategy::Rlnc, Strategy::Routing, Strategy::SourceErasure] {
        let cfg = SessionConfig::new(strategy, 24, 64).with_max_ticks(6000);
        let report = Session::run(&topo, &cfg, 2);
        assert_eq!(
            report.completion_fraction(),
            1.0,
            "{strategy:?} failed to complete"
        );
        assert_eq!(report.corruption_fraction(), 0.0, "{strategy:?} corrupted data");
    }
}

#[test]
fn rlnc_works_on_random_graph_topology() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut rg = RandomGraphOverlay::new(12, 3);
    for _ in 0..60 {
        rg.join(&mut rng);
    }
    let topo = TopologySpec::from_random_graph(&rg);
    let cfg = SessionConfig::new(Strategy::Rlnc, 24, 64).with_max_ticks(6000);
    let report = Session::run(&topo, &cfg, 4);
    assert_eq!(report.completion_fraction(), 1.0);
}

#[test]
fn random_graph_completes_faster_than_equally_sized_curtain() {
    // §6: logarithmic vs linear delay. Compare p95 completion on a deep
    // curtain (small k forces depth) vs a random graph insertion overlay.
    let n = 120;
    let net = curtain(6, 2, n, 5);
    let curtain_topo = TopologySpec::from_curtain(&net);
    let mut rng = StdRng::seed_from_u64(6);
    let mut rg = RandomGraphOverlay::new(6, 2);
    for _ in 0..n {
        rg.join(&mut rng);
    }
    let rg_topo = TopologySpec::from_random_graph(&rg);

    let cfg = SessionConfig::new(Strategy::Rlnc, 12, 32).with_max_ticks(8000);
    let t_curtain = Session::run(&curtain_topo, &cfg, 7)
        .completion_percentile(95.0)
        .expect("curtain completes");
    let t_rg = Session::run(&rg_topo, &cfg, 7)
        .completion_percentile(95.0)
        .expect("random graph completes");
    assert!(
        t_rg < t_curtain,
        "random-graph p95 {t_rg} should beat curtain p95 {t_curtain}"
    );
}

#[test]
fn repair_restores_broadcast_after_failures() {
    let mut net = curtain(10, 3, 50, 8);
    let ids = net.node_ids();
    // Fail a handful of early nodes.
    for &id in &ids[2..6] {
        net.fail(id).unwrap();
    }
    let degraded = {
        let topo = TopologySpec::from_curtain(&net);
        Session::run(
            &topo,
            &SessionConfig::new(Strategy::Rlnc, 16, 32).with_max_ticks(2000),
            9,
        )
    };
    // Repair everyone and re-run: everything must be back to perfect.
    net.repair_all();
    let healed = {
        let topo = TopologySpec::from_curtain(&net);
        Session::run(
            &topo,
            &SessionConfig::new(Strategy::Rlnc, 16, 32).with_max_ticks(2000),
            9,
        )
    };
    assert_eq!(healed.completion_fraction(), 1.0);
    assert!(healed.completion_fraction() >= degraded.completion_fraction());
    assert_eq!(net.min_working_connectivity(), Some(3));
}

#[test]
fn graceful_leaves_never_hurt_broadcast() {
    let mut net = curtain(10, 2, 60, 10);
    let ids = net.node_ids();
    for &id in ids.iter().step_by(4) {
        net.leave(id).unwrap();
    }
    let topo = TopologySpec::from_curtain(&net);
    let report = Session::run(
        &topo,
        &SessionConfig::new(Strategy::Rlnc, 16, 32).with_max_ticks(2000),
        11,
    );
    assert_eq!(report.completion_fraction(), 1.0);
}

#[test]
fn wire_format_round_trips_through_a_session_sized_packet() {
    // The on-the-wire representation survives realistic sizes.
    use coded_curtain::rlnc::{CodedPacket, Encoder};
    let data: Vec<Vec<u8>> = (0..128).map(|i| vec![i as u8; 1400]).collect();
    let enc = Encoder::new(0, data).unwrap();
    let mut rng = StdRng::seed_from_u64(12);
    let p = enc.encode(&mut rng);
    let wire = p.to_wire();
    assert_eq!(wire.len(), 10 + 128 + 1400);
    assert_eq!(CodedPacket::from_wire(&wire).unwrap(), p);
}

#[test]
fn full_pipeline_object_transfer_matches_bytes() {
    // Content -> generations -> encode -> recode -> decode -> reassemble.
    use coded_curtain::rlnc::{Content, ObjectDecoder, ObjectEncoder, Recoder};
    let mut rng = StdRng::seed_from_u64(13);
    let original: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
    let content = Content::split(&original, 16, 256);
    let mut enc = ObjectEncoder::new(content.clone());
    let mut relay: Vec<Recoder> = content
        .generations()
        .iter()
        .map(|g| Recoder::new(g.id(), g.size(), g.symbol_len()))
        .collect();
    let mut dec = ObjectDecoder::new(&content);
    let mut guard = 0;
    while !dec.is_complete() {
        let p = enc.next_packet(&mut rng);
        let gen = p.generation() as usize;
        relay[gen].push(p).unwrap();
        if let Some(out) = relay[gen].recode(&mut rng) {
            dec.push(out).unwrap();
        }
        guard += 1;
        assert!(guard < 100_000, "transfer did not converge");
    }
    assert_eq!(dec.reassemble().unwrap(), original);
}

/// A sliding-window source still completes a *file* transfer over real
/// TCP: every subscriber stream starts at base 0, the per-generation
/// quota (2·g frames) is emitted before the window slides past a
/// generation, and relays re-stamp the window base downstream without
/// ever regressing it. Reliable transport means no frame is lost, so
/// each peer hears enough of every generation to decode the whole
/// object even though the source never revisits retired generations.
#[test]
fn windowed_source_completes_over_reliable_tcp() {
    use curtain_net::{Coordinator, Peer, PendingSource};
    use std::time::Duration;

    const PACE: Duration = Duration::from_micros(150);
    let coordinator = Coordinator::start(OverlayConfig::new(4, 2)).unwrap();
    let data: Vec<u8> = (0..24 * 1024).map(|i| (i * 37 % 251) as u8).collect();
    // 24 KiB over 8×256 B generations = 12 generations, window of 3:
    // the window must actually slide for this to exercise anything.
    let source = PendingSource::bind_with_shape(&data, 8, 256, PACE)
        .unwrap()
        .windowed(3)
        .register(coordinator.addr())
        .unwrap();
    assert!(source.generations() > 3, "window must be smaller than the object");

    let peers: Vec<Peer> = (0..3).map(|_| Peer::join(coordinator.addr()).unwrap()).collect();
    for (i, peer) in peers.iter().enumerate() {
        assert!(
            peer.wait_complete(Duration::from_secs(30)),
            "peer {i} stuck at rank {}",
            peer.rank()
        );
        assert_eq!(peer.decoded_content().unwrap(), data, "peer {i} decoded garbage");
    }
}
