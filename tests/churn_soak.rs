//! Fault-injection soak: a real-TCP swarm survives sustained churn —
//! crashes, partitions, hard cuts, delay, and mid-frame truncation — with
//! every survivor completing and **zero** `RepairGaveUp` events.
//!
//! Knobs (all environment variables, read at test start):
//!
//! * `CURTAIN_SOAK_PEERS`  — initial swarm size (default 6)
//! * `CURTAIN_SOAK_CHURN`  — churn events to inject (default 10, min 10)
//! * `CURTAIN_SOAK_TRACE`  — if set, dump the full telemetry event trace
//!   as JSONL to this path (CI greps it for `repair_gave_up`)
//!
//! Run locally with e.g.:
//!
//! ```text
//! CURTAIN_SOAK_CHURN=20 cargo test --release --test churn_soak -- --nocapture
//! ```

use std::io::Write as _;
use std::time::{Duration, Instant};

use curtain_net::faults::{Fault, FaultProxy};
use curtain_net::repair::RepairPolicy;
use curtain_net::{Coordinator, Peer, PeerConfig, PendingSource, Source};
use curtain_overlay::OverlayConfig;
use curtain_telemetry::{MemorySink, SharedRecorder};

const PACE: Duration = Duration::from_micros(200);

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn content(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 131 % 251) as u8).collect()
}

fn soak_policy() -> RepairPolicy {
    RepairPolicy {
        initial_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(200),
        deadline: Duration::from_secs(20),
        window: Duration::from_secs(10),
        window_budget: 128,
        stall_timeout: Duration::from_millis(900),
        ..RepairPolicy::default()
    }
}

/// Bind the source, front its data port with a fault proxy, and register
/// the *proxy* address, so every Hello/Redirect hands out the proxied
/// path. (The coordinator rejects re-registration at a different
/// address, so the proxy must be advertised from the start.)
fn proxied_source(
    coordinator: &Coordinator,
    data: &[u8],
    generation_size: usize,
    packet_len: usize,
) -> (Source, FaultProxy) {
    let pending = PendingSource::bind_with_shape(data, generation_size, packet_len, PACE).unwrap();
    let proxy = FaultProxy::start(pending.data_addr()).unwrap();
    let source = pending.register_as(coordinator.addr(), proxy.addr()).unwrap();
    (source, proxy)
}

fn join(coordinator: &Coordinator, sink: &MemorySink) -> Peer {
    Peer::join_with(
        coordinator.addr(),
        PeerConfig {
            pace: PACE,
            recorder: SharedRecorder::wall_clock(sink.clone()),
            repair: soak_policy(),
            ..PeerConfig::default()
        },
    )
    .expect("join")
}

fn dump_trace(sink: &MemorySink) {
    let Ok(path) = std::env::var("CURTAIN_SOAK_TRACE") else { return };
    if path.is_empty() {
        return;
    }
    let mut out = String::new();
    for (at, event) in sink.events() {
        event.write_jsonl(at, &mut out);
        out.push('\n');
    }
    let mut file = std::fs::File::create(&path).expect("trace file");
    file.write_all(out.as_bytes()).expect("trace write");
    println!("soak trace: {} events -> {path}", sink.events().len());
}

/// The soak proper: ≥10 injected churn events, all survivors complete,
/// zero repair give-ups anywhere in the swarm.
#[test]
fn churn_soak_survivors_complete_with_zero_gave_ups() {
    let initial_peers = env_usize("CURTAIN_SOAK_PEERS", 6);
    let churn = env_usize("CURTAIN_SOAK_CHURN", 10).max(10);

    let sink = MemorySink::new();
    let coordinator = Coordinator::start_traced(
        OverlayConfig::new(4, 2),
        0x50AC,
        SharedRecorder::wall_clock(sink.clone()),
    )
    .unwrap();
    let data = content(32 * 1024);
    let (_source, proxy) = proxied_source(&coordinator, &data, 32, 256);

    let mut peers: Vec<Peer> = (0..initial_peers).map(|_| join(&coordinator, &sink)).collect();
    let mut crashed = 0usize;

    for i in 0..churn {
        // A fresh joiner before each event keeps part of the swarm
        // mid-download while the fault lands.
        peers.push(join(&coordinator, &sink));
        match i % 5 {
            0 => {
                // Crash a peer (non-ergodic departure: sockets just die).
                let victim = peers.swap_remove(i % peers.len());
                victim.crash();
                crashed += 1;
            }
            1 => {
                // Hard-close every connection through the source proxy.
                proxy.cut();
            }
            2 => {
                // Partition: links stay open, bytes stop flowing.
                proxy.set_fault(Fault::Blackhole);
                std::thread::sleep(Duration::from_millis(1100));
                proxy.set_fault(Fault::None);
            }
            3 => {
                // Slow network, then mid-frame truncation on reconnect.
                proxy.set_fault(Fault::Delay(Duration::from_millis(10)));
                std::thread::sleep(Duration::from_millis(200));
                proxy.set_fault(Fault::Truncate(1500));
                proxy.cut();
                std::thread::sleep(Duration::from_millis(300));
                proxy.set_fault(Fault::None);
                proxy.cut(); // retire pumps still holding truncate budgets
            }
            _ => {
                // Crash the *newest* joiner mid-download.
                let victim = peers.pop().unwrap();
                victim.crash();
                crashed += 1;
            }
        }
        std::thread::sleep(Duration::from_millis(250));
    }
    // Heal the world and let the survivors finish.
    proxy.set_fault(Fault::None);
    proxy.cut();

    let deadline = Instant::now() + Duration::from_secs(90);
    for (idx, peer) in peers.iter().enumerate() {
        let left = deadline.saturating_duration_since(Instant::now());
        assert!(
            peer.wait_complete(left),
            "survivor {idx} ({:?}) incomplete after churn: rank {}",
            peer.node_id(),
            peer.rank()
        );
        assert_eq!(peer.decoded_content().unwrap(), data, "survivor {idx} decoded garbage");
    }
    let survivors = peers.len();
    for p in peers.drain(..) {
        p.leave();
    }

    dump_trace(&sink);
    let metrics = sink.metrics().snapshot();
    let repairs = metrics.counters.get("repairs").copied().unwrap_or(0);
    let gave_up = metrics.counters.get("repair_gave_up").copied().unwrap_or(0);
    let gave_up_events =
        sink.events().iter().filter(|(_, e)| e.kind() == "repair_gave_up").count();
    println!(
        "soak: {churn} churn events ({crashed} crashes), {survivors} survivors, \
         {repairs} repairs, {gave_up} give-ups"
    );
    assert!(churn >= 10);
    assert_eq!(gave_up, 0, "repair gave up {gave_up} times during soak");
    assert_eq!(gave_up_events, 0, "RepairGaveUp events present in trace");
    assert!(repairs >= 1, "soak injected faults but no repair ever ran");
}

/// Regression for the old `MAX_REPAIRS = 32` lifetime cap: a peer must
/// survive **more than 32 successful repairs** over its lifetime. Under
/// the capped code the upstream threads die permanently at repair #33
/// (and under the old fatal-complaint code, at the first hiccup).
#[test]
fn peer_survives_more_than_32_lifetime_repairs() {
    let sink = MemorySink::new();
    let coordinator = Coordinator::start_seeded(OverlayConfig::new(4, 2), 0x33).unwrap();
    let data = content(8 * 1024);
    let packet_len = data.len().div_ceil(16);
    let (_source, proxy) = proxied_source(&coordinator, &data, 16, packet_len);

    let policy = RepairPolicy {
        initial_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(50),
        deadline: Duration::from_secs(10),
        window: Duration::from_secs(1),
        window_budget: 1000,
        stall_timeout: Duration::from_secs(30), // isolate the EOF path
        ..RepairPolicy::default()
    };
    let peer = Peer::join_with(
        coordinator.addr(),
        PeerConfig {
            pace: PACE,
            recorder: SharedRecorder::wall_clock(sink.clone()),
            repair: policy,
            ..PeerConfig::default()
        },
    )
    .unwrap();
    assert!(peer.wait_complete(Duration::from_secs(15)), "initial download failed");

    let repairs_now = |sink: &MemorySink| {
        sink.metrics().snapshot().counters.get("repairs").copied().unwrap_or(0)
    };
    // Cut the upstream link repeatedly; every cut forces each of the
    // peer's threads through a full complaint/repair/resubscribe cycle.
    let mut cuts = 0u32;
    while repairs_now(&sink) <= 40 {
        assert!(cuts < 100, "repairs stopped accumulating after {} cuts", cuts);
        let before = repairs_now(&sink);
        proxy.cut();
        cuts += 1;
        let deadline = Instant::now() + Duration::from_secs(5);
        while repairs_now(&sink) == before && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        // Small settle so the resubscribe lands before the next cut.
        std::thread::sleep(Duration::from_millis(30));
    }

    let total = repairs_now(&sink);
    let gave_up = sink.metrics().snapshot().counters.get("repair_gave_up").copied().unwrap_or(0);
    println!("lifetime repairs: {total} across {cuts} cuts, {gave_up} give-ups");
    assert!(total > 32, "needed > 32 lifetime repairs, got {total}");
    assert_eq!(gave_up, 0, "repair gave up under paced churn");
    // The peer is still a fully functional member afterwards.
    assert!(peer.is_complete());
    assert_eq!(peer.decoded_content().unwrap(), data);
    peer.leave();
}
