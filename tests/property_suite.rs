//! Cross-crate property tests: algebraic identities and protocol
//! invariants checked over randomized inputs.

use coded_curtain::overlay::churn::{ChurnConfig, ChurnDriver};
use coded_curtain::overlay::{
    CurtainNetwork, CurtainServer, FlowNetwork, NodeStatus, OverlayConfig,
};
use coded_curtain::rlnc::generic::{GenericDecoder, GenericPacket};
use coded_curtain::rlnc::{Decoder, Encoder};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Brute-force min-cut: minimum, over all source-side vertex subsets
/// containing `s` and excluding `t`, of the capacity crossing the cut.
fn brute_force_min_cut(n: usize, edges: &[(usize, usize, u32)], s: usize, t: usize) -> u32 {
    let mut best = u32::MAX;
    for mask in 0u32..(1 << n) {
        if mask & (1 << s) == 0 || mask & (1 << t) != 0 {
            continue;
        }
        let crossing: u32 = edges
            .iter()
            .filter(|&&(u, v, _)| mask & (1 << u) != 0 && mask & (1 << v) == 0)
            .map(|&(_, _, c)| c)
            .sum();
        best = best.min(crossing);
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Max-flow equals the brute-forced min-cut on small random digraphs
    /// (the max-flow/min-cut theorem, checked against our Edmonds–Karp).
    #[test]
    fn max_flow_equals_min_cut(
        n in 3usize..7,
        raw_edges in proptest::collection::vec((0usize..7, 0usize..7, 1u32..4), 1..14),
    ) {
        let edges: Vec<(usize, usize, u32)> = raw_edges
            .into_iter()
            .filter(|&(u, v, _)| u < n && v < n && u != v)
            .collect();
        let mut f = FlowNetwork::new(n);
        for &(u, v, c) in &edges {
            f.add_edge(u, v, c);
        }
        let flow = f.max_flow(0, n - 1, None);
        let cut = brute_force_min_cut(n, &edges, 0, n - 1);
        prop_assert_eq!(flow as u32, cut);
    }

    /// The byte-specialized decoder and the field-generic decoder agree on
    /// innovation decisions and recovery for identical packet streams.
    #[test]
    fn specialized_and_generic_decoders_agree(seed: u64, g in 1usize..8, s in 1usize..16) {
        use curtain_gf::Gf256;
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<Vec<u8>> = (0..g)
            .map(|i| (0..s).map(|j| (i * 37 + j * 11) as u8).collect())
            .collect();
        let enc = Encoder::new(0, data.clone()).unwrap();
        let mut fast = Decoder::new(0, g, s);
        let mut generic = GenericDecoder::<Gf256>::new(g, s);
        let mut guard = 0;
        while !fast.is_complete() {
            let p = enc.encode(&mut rng);
            let gp = GenericPacket {
                coefficients: p.coefficients().iter().map(|&c| Gf256::new(c)).collect(),
                payload: p.payload().iter().map(|&b| Gf256::new(b)).collect(),
            };
            let innovative_fast = fast.push(p).unwrap();
            let innovative_generic = generic.push(&gp);
            prop_assert_eq!(innovative_fast, innovative_generic);
            prop_assert_eq!(fast.rank(), generic.rank());
            guard += 1;
            prop_assert!(guard < 100 * g, "did not converge");
        }
        let got_fast = fast.recover().unwrap();
        let got_generic: Vec<Vec<u8>> = generic
            .recover()
            .unwrap()
            .into_iter()
            .map(|row| row.into_iter().map(|x| x.value()).collect())
            .collect();
        prop_assert_eq!(&got_fast, &data);
        prop_assert_eq!(got_generic, data);
    }

    /// Failing a node never *increases* anyone's connectivity, and repair
    /// restores exactly the pre-failure values.
    #[test]
    fn failure_is_monotone_and_repair_exact(seed: u64, n in 5usize..25) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = CurtainNetwork::new(OverlayConfig::new(10, 2)).unwrap();
        for _ in 0..n {
            net.join(&mut rng);
        }
        let ids = net.node_ids();
        let before: Vec<usize> = (0..n).map(|i| net.connectivity_of_index(i).unwrap()).collect();
        use rand::RngExt as _;
        let victim = ids[rng.random_range(0..ids.len())];
        net.fail(victim).unwrap();
        for (i, &id) in ids.iter().enumerate() {
            if id == victim {
                continue;
            }
            let after = net.connectivity_of(id).unwrap();
            prop_assert!(after <= before[i], "connectivity rose after a failure");
        }
        net.repair(victim).unwrap();
        for (i, &id) in ids.iter().enumerate() {
            if id == victim {
                continue;
            }
            prop_assert_eq!(net.connectivity_of(id).unwrap(), before[i]);
        }
    }

    /// Parents/children listings are mutually consistent at every position.
    #[test]
    fn parent_child_duality(seed: u64, n in 2usize..30) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = CurtainNetwork::new(OverlayConfig::new(8, 3)).unwrap();
        for _ in 0..n {
            net.join(&mut rng);
        }
        let m = net.matrix();
        for pos in 0..m.len() {
            let me = m.row(pos).node();
            for (thread, child) in m.children_of_position(pos) {
                let Some(child) = child else { continue };
                let cpos = m.position_of(child).unwrap();
                let (t, parent) = m
                    .parents_of_position(cpos)
                    .into_iter()
                    .find(|(t, _)| *t == thread)
                    .expect("child holds the thread");
                prop_assert_eq!(t, thread);
                prop_assert_eq!(parent, coded_curtain::overlay::Holder::Node(me));
            }
        }
    }

    /// Coordinator snapshots survive arbitrary churn and restore exactly.
    #[test]
    fn snapshot_round_trip_under_churn(seed: u64, steps in 1u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = CurtainNetwork::new(OverlayConfig::new(12, 2)).unwrap();
        let mut driver = ChurnDriver::new(ChurnConfig::default());
        driver.run(&mut net, steps, &mut rng);
        let json = net.server().to_json().unwrap();
        let restored = CurtainServer::from_json(&json).unwrap();
        prop_assert_eq!(restored.matrix(), net.server().matrix());
        prop_assert_eq!(restored.next_node_id(), net.server().next_node_id());
    }

    /// The defect sampler is an unbiased estimator: on networks small
    /// enough to enumerate, sampling converges to the exact value.
    #[test]
    fn defect_sampler_unbiased(seed: u64, n in 1usize..15) {
        use coded_curtain::overlay::defect;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = CurtainNetwork::new(OverlayConfig::new(6, 2)).unwrap();
        for _ in 0..n {
            net.join_with_failure_prob(0.3, &mut rng);
        }
        let exact = defect::exact(net.matrix(), 2);
        let sampled = defect::sample(net.matrix(), 2, 4000, &mut rng);
        let diff = (exact.total_defect_fraction() - sampled.total_defect_fraction()).abs();
        prop_assert!(diff < 0.08, "sampler off by {diff}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Forest invariants hold for arbitrary shapes, and every node's
    /// in-degree equals the tree count while out-degree stays within the
    /// fanout.
    #[test]
    fn forest_invariants(trees in 1usize..5, extra_fanout in 0usize..6, n in 1usize..200) {
        use coded_curtain::overlay::forest::ForestOverlay;
        let fanout = trees + extra_fanout;
        let mut f = ForestOverlay::new(trees, fanout);
        for _ in 0..n {
            f.join();
        }
        f.assert_invariants();
        for &deg in &f.out_degrees() {
            prop_assert!(deg <= fanout);
        }
        for node in 0..n {
            for t in 0..trees {
                prop_assert!(f.depth_in_tree(t, node) >= 1);
            }
        }
    }

    /// Gossip-built and centrally-built overlays both give full
    /// connectivity in the failure-free case.
    #[test]
    fn gossip_networks_reach_full_connectivity(seed: u64, n in 1usize..40) {
        use coded_curtain::overlay::gossip::{gossip_join, GossipConfig};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = CurtainNetwork::new(OverlayConfig::new(10, 2)).unwrap();
        for _ in 0..n {
            gossip_join(&mut net, GossipConfig::default(), &mut rng);
        }
        net.matrix().assert_invariants();
        prop_assert_eq!(net.min_working_connectivity(), Some(2));
    }
}

/// A non-proptest sanity pair: connectivity equals thread count when no
/// failures exist (every stream flows), for heterogeneous degrees too.
#[test]
fn connectivity_equals_degree_in_healthy_networks() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut server = CurtainServer::new(OverlayConfig::new(24, 4)).unwrap();
    for i in 0..60 {
        let degree = 1 + (i % 6);
        server.hello_with_degree(degree, &mut rng);
    }
    let graph = server.graph();
    for (pos, row) in server.matrix().rows().iter().enumerate() {
        assert_eq!(
            graph.connectivity_of_position(pos),
            row.threads().len(),
            "node at position {pos}"
        );
    }
}

/// Every protocol error path keeps the matrix untouched (error atomicity).
#[test]
fn protocol_errors_do_not_mutate_state() {
    let mut rng = StdRng::seed_from_u64(2);
    let mut server = CurtainServer::new(OverlayConfig::new(8, 2)).unwrap();
    let a = server.hello(&mut rng).node;
    server.report_failure(a).unwrap();
    let snapshot = server.matrix().clone();
    let bogus = coded_curtain::overlay::NodeId(999);
    assert!(server.goodbye(bogus).is_err());
    assert!(server.goodbye(a).is_err()); // failed node
    assert!(server.report_failure(a).is_err()); // double report
    assert!(server.repair(bogus).is_err());
    assert!(server.drop_thread(a, &mut rng).is_err()); // failed node
    assert!(server.restore_thread(a, &mut rng).is_err());
    assert_eq!(server.matrix(), &snapshot, "error paths must be side-effect free");
    assert_eq!(server.matrix().status_of(a), Some(NodeStatus::Failed));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Overlapping-class codec invariants over random shapes and loss:
    /// rank climbs exactly once per innovative packet (shared packets are
    /// never double-counted across the classes that carry them), bounded
    /// by the object's true degrees of freedom; and once enough
    /// innovative packets arrive the decode is byte-exact. The innovative
    /// total at completion *equals* the dof count even though the classes
    /// jointly span more than `classes × g` packet slots.
    #[test]
    fn overlap_codec_never_double_counts_rank(
        seed: u64,
        g in 4usize..12,
        s in 1usize..24,
        overlap_sel in 0usize..4,
        classes in 2usize..5,
        loss_pm in 0u32..400,
    ) {
        use coded_curtain::codec::{CodecConfig, CodecKind};
        use rand::RngCore as _;

        let overlap = overlap_sel.min(g / 2);
        let len = classes * g * s;
        let content: Vec<u8> = (0..len).map(|i| (i * 131 % 251) as u8).collect();
        let cfg = CodecConfig::new(CodecKind::Overlap, g, s).with_overlap(overlap);
        let mut src = cfg.source(&content);
        let mut sink = cfg.sink(content.len());
        let mut rng = StdRng::seed_from_u64(seed);
        let total = sink.progress().total_packets;
        let mut innovative_total = 0u64;
        let mut guard = 0u64;
        while !sink.is_complete() {
            let p = src.encode(&mut rng).expect("source never runs dry");
            guard += 1;
            prop_assert!(guard < 400 * total, "transfer did not converge");
            if u64::from(loss_pm) * (u64::MAX / 1000) > rng.next_u64() {
                continue; // lost on the channel
            }
            let before = sink.progress().rank;
            let innovative = sink.ingest(p).expect("well-formed packet rejected");
            let after = sink.progress().rank;
            if innovative {
                innovative_total += 1;
                // A class-locally innovative packet may still be globally
                // redundant through the shared columns, so the global
                // estimate may hold still — but it must never regress.
                prop_assert!(after >= before, "innovative packet lowered rank");
            } else {
                prop_assert_eq!(after, before, "redundant packet moved rank");
            }
            prop_assert!(after <= total, "rank {} exceeds dof count {}", after, total);
        }
        // Every degree of freedom took at least one innovative packet, and
        // the packets shared between neighbouring classes were counted
        // once, not once per class (rank capped at `total` throughout).
        prop_assert!(innovative_total >= total);
        prop_assert_eq!(sink.progress().rank, total);
        prop_assert_eq!(sink.decoded().expect("complete"), content);
    }
}
