//! Distributed causal tracing over real TCP: every process writes its
//! own JSONL trace, `stitch` merges them, and the report must show
//! complete source→peer hop chains, closed repair span trees, and live
//! `/metrics` + `/health` endpoints — the tentpole acceptance test.

use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use curtain_net::repair::RepairPolicy;
use curtain_net::{Coordinator, Peer, PeerConfig, PendingSource, Source};
use curtain_overlay::OverlayConfig;
use curtain_telemetry::replay::read_trace;
use curtain_telemetry::stitch::{stitch, StitchReport};
use curtain_telemetry::{json, ExposeServer, JsonlSink, SharedRecorder, TracedEvent};

const PACE: Duration = Duration::from_micros(150);
const DECODE_TIMEOUT: Duration = Duration::from_secs(20);

fn content(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 193 + 11) as u8).collect()
}

/// One process's observability kit: a byte-backed JSONL sink plus a
/// wall-clock recorder over it — exactly what `--trace` wires up in the
/// binaries, minus the file.
fn observer() -> (SharedRecorder, JsonlSink<Vec<u8>>) {
    let sink = JsonlSink::new(Vec::new());
    (SharedRecorder::wall_clock(sink.clone()), sink)
}

fn traced_peer_config(recorder: SharedRecorder) -> PeerConfig {
    PeerConfig {
        pace: PACE,
        recorder,
        trace: true,
        repair: RepairPolicy {
            initial_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(100),
            stall_timeout: Duration::from_millis(800),
            ..RepairPolicy::default()
        },
    }
}

/// Merges every process's JSONL bytes and stitches the result, as
/// `lab trace` would after collecting the files.
fn stitched(sinks: &[&JsonlSink<Vec<u8>>]) -> StitchReport {
    let mut events: Vec<TracedEvent> = Vec::new();
    for sink in sinks {
        let bytes = sink.bytes();
        events.extend(read_trace(BufReader::new(&bytes[..])).expect("well-formed JSONL"));
    }
    stitch(&events)
}

fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect exposition endpoint");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").as_bytes())
        .expect("send request");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
    (head.to_string(), body.to_string())
}

/// Fully traced broadcast: source stamps root contexts, peers forward
/// child spans, and the stitched report proves every traced arrival
/// chains back to the source — while /metrics and /health answer live.
#[test]
fn traced_broadcast_stitches_complete_chains() {
    let (coord_recorder, coord_sink) = observer();
    let coordinator =
        Coordinator::start_traced(OverlayConfig::new(4, 2), 0xC0DE, coord_recorder.clone())
            .unwrap();
    let expose = ExposeServer::bind(
        "127.0.0.1:0",
        coord_sink.metrics().clone(),
        coordinator.health_handle(),
    )
    .unwrap();

    let data = content(4096);
    let (source_recorder, source_sink) = observer();
    let source: Source = PendingSource::bind(&data, 16, PACE)
        .unwrap()
        .observed(source_recorder.clone(), true)
        .register(coordinator.addr())
        .unwrap();
    assert_eq!(source.generations(), 1);

    let mut peer_sinks = Vec::new();
    let peers: Vec<Peer> = (0..3)
        .map(|_| {
            let (recorder, sink) = observer();
            peer_sinks.push(sink);
            Peer::join_with(coordinator.addr(), traced_peer_config(recorder)).unwrap()
        })
        .collect();
    for (i, peer) in peers.iter().enumerate() {
        assert!(peer.wait_complete(DECODE_TIMEOUT), "peer {i} stuck at rank {}", peer.rank());
        assert_eq!(peer.decoded_content().unwrap(), data);
    }

    // Exposition liveness while the swarm is still up.
    let (head, metrics_body) = http_get(expose.addr(), "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(metrics_body.contains("coordinator_members 3"), "{metrics_body}");
    let (head, health_body) = http_get(expose.addr(), "/health");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let health = json::parse_document(health_body.trim()).expect(&health_body);
    assert_eq!(health.get("role").and_then(|v| v.as_str()), Some("coordinator"));
    assert_eq!(health.get("matrix_rows").and_then(json::JsonValue::as_i64), Some(3));
    assert_eq!(health.get("ok").and_then(json::JsonValue::as_bool), Some(true));

    // A peer's own endpoint: decode rank and buffer-pool stats.
    let peer_expose = ExposeServer::bind(
        "127.0.0.1:0",
        peer_sinks[0].metrics().clone(),
        peers[0].health_handle(),
    )
    .unwrap();
    let (head, body) = http_get(peer_expose.addr(), "/health");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let health = json::parse_document(body.trim()).expect(&body);
    assert_eq!(health.get("role").and_then(|v| v.as_str()), Some("peer"));
    assert_eq!(health.get("complete").and_then(json::JsonValue::as_bool), Some(true));
    assert_eq!(health.get("rank").and_then(json::JsonValue::as_i64), Some(16));
    assert!(health.get("buf_pool").is_some(), "{body}");
    peer_expose.shutdown();

    for peer in peers {
        peer.leave();
    }
    coord_recorder.flush().unwrap();
    source_recorder.flush().unwrap();

    let sinks: Vec<&JsonlSink<Vec<u8>>> =
        std::iter::once(&coord_sink).chain(std::iter::once(&source_sink)).chain(&peer_sinks).collect();
    let report = stitched(&sinks);
    assert!(report.total_arrivals() > 0, "no traced arrivals recorded");
    assert!(
        report.all_chains_complete(),
        "{} of {} arrivals incomplete:\n{}",
        report.total_arrivals() - report.total_complete(),
        report.total_arrivals(),
        report.render_text()
    );
    assert_eq!(report.orphan_span_ends, 0, "{}", report.render_text());
    // The first hop of every chain leaves the source.
    assert!(
        report.edges.keys().any(|(from, _)| *from == curtain_telemetry::trace::SOURCE_NODE),
        "no source edge:\n{}",
        report.render_text()
    );
    expose.shutdown();
}

/// Crash a parent: the survivor's complaint rides its trace context to
/// the coordinator, whose splice lands in the same span tree, and the
/// stitched report shows the closed repair episode end to end. The
/// crashed peer itself is untraced — mixed swarms must interoperate.
#[test]
fn crashed_parent_yields_closed_repair_episode() {
    let (coord_recorder, coord_sink) = observer();
    let coordinator =
        Coordinator::start_traced(OverlayConfig::new(4, 2), 0xC0DE, coord_recorder.clone())
            .unwrap();
    let data = content(6144);
    let (source_recorder, source_sink) = observer();
    let _source: Source = PendingSource::bind(&data, 24, PACE)
        .unwrap()
        .observed(source_recorder.clone(), true)
        .register(coordinator.addr())
        .unwrap();

    // The victim joins first so later joiners hang below it. It runs
    // *untraced*: its frames carry no context, proving old-style peers
    // interoperate inside a traced swarm.
    let victim = Peer::join_paced(coordinator.addr(), PACE).unwrap();
    let mut peer_sinks = Vec::new();
    let survivors: Vec<Peer> = (0..4)
        .map(|_| {
            let (recorder, sink) = observer();
            peer_sinks.push(sink);
            Peer::join_with(coordinator.addr(), traced_peer_config(recorder)).unwrap()
        })
        .collect();
    std::thread::sleep(Duration::from_millis(300));
    victim.crash();

    for (i, peer) in survivors.iter().enumerate() {
        assert!(
            peer.wait_complete(DECODE_TIMEOUT),
            "survivor {i} stuck at rank {} after crash",
            peer.rank()
        );
        assert_eq!(peer.decoded_content().unwrap(), data);
    }
    // Give in-flight episodes a moment to close their span trees.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while survivors.iter().any(|p| p.active_repair_episodes() > 0)
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(10));
    }
    for peer in &survivors {
        assert_eq!(peer.active_repair_episodes(), 0, "episode gauge never drained");
    }

    let repairs: u64 = peer_sinks
        .iter()
        .map(|s| s.metrics().snapshot().counters.get("repairs").copied().unwrap_or(0))
        .sum();
    for peer in survivors {
        peer.leave();
    }
    coord_recorder.flush().unwrap();
    source_recorder.flush().unwrap();

    let sinks: Vec<&JsonlSink<Vec<u8>>> =
        std::iter::once(&coord_sink).chain(std::iter::once(&source_sink)).chain(&peer_sinks).collect();
    let report = stitched(&sinks);
    assert!(report.all_chains_complete(), "{}", report.render_text());
    assert!(
        report.all_repair_episodes_closed(),
        "open repair span tree:\n{}",
        report.render_text()
    );
    if repairs > 0 {
        let episodes: Vec<_> = report.repair_episodes().collect();
        assert!(!episodes.is_empty(), "repairs ran but no episode stitched");
        assert!(
            episodes.iter().any(|e| e.ok == Some(true)),
            "no successful repair episode:\n{}",
            report.render_text()
        );
        assert!(
            episodes
                .iter()
                .any(|e| e.steps.iter().any(|s| s.name == "complain")),
            "repair episode missing complain step:\n{}",
            report.render_text()
        );
        // A splice at the coordinator means the complaint's context made
        // it across the process boundary into the same span tree.
        if coordinator.repairs() > 0 {
            assert!(
                episodes.iter().any(|e| e
                    .steps
                    .iter()
                    .any(|s| s.name == "splice"
                        && s.node == curtain_telemetry::trace::COORDINATOR_NODE)),
                "splice not stitched into a repair episode:\n{}",
                report.render_text()
            );
            assert!(
                episodes.iter().any(|e| e.steps.iter().any(|s| s.name == "repair_complete")),
                "repair_complete missing:\n{}",
                report.render_text()
            );
        }
    }
}

/// Backward compatibility both ways: an untraced peer decodes from a
/// traced source (flagged frames are readable), and a traced peer
/// decodes from an untraced source (no contexts → an empty but
/// vacuously complete stitched report).
#[test]
fn mixed_tracing_interoperates() {
    // Traced source, untraced peer.
    let coordinator = Coordinator::start_seeded(OverlayConfig::new(4, 2), 31).unwrap();
    let data = content(4096);
    let (source_recorder, _source_sink) = observer();
    let _source: Source = PendingSource::bind(&data, 16, PACE)
        .unwrap()
        .observed(source_recorder, true)
        .register(coordinator.addr())
        .unwrap();
    let plain = Peer::join_paced(coordinator.addr(), PACE).unwrap();
    assert!(plain.wait_complete(DECODE_TIMEOUT), "untraced peer choked on traced frames");
    assert_eq!(plain.decoded_content().unwrap(), data);
    plain.leave();

    // Untraced source, traced peer.
    let coordinator = Coordinator::start_seeded(OverlayConfig::new(4, 2), 32).unwrap();
    let _source = Source::start(coordinator.addr(), &data, 16, PACE).unwrap();
    let (recorder, sink) = observer();
    let traced = Peer::join_with(coordinator.addr(), traced_peer_config(recorder.clone())).unwrap();
    assert!(traced.wait_complete(DECODE_TIMEOUT), "traced peer stuck on untraced source");
    assert_eq!(traced.decoded_content().unwrap(), data);
    traced.leave();
    recorder.flush().unwrap();
    let report = stitched(&[&sink]);
    assert_eq!(report.total_arrivals(), 0, "phantom contexts:\n{}", report.render_text());
    assert!(report.all_chains_complete()); // vacuously
}
