//! The telemetry layer must tell the repair story in protocol order: a
//! failed node is complained about, then spliced out, then reported
//! repaired — and the thread-defect deltas it caused must cancel once the
//! repair lands.

use coded_curtain::overlay::churn::{ChurnConfig, ChurnDriver};
use coded_curtain::overlay::{CurtainNetwork, OverlayConfig};
use coded_curtain::telemetry::{Event, MemorySink, SharedRecorder, SpliceCause};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs a seeded churn workload with a memory recorder attached and
/// returns the event stream (in record order) plus the drained network.
fn churned_trace(seed: u64, steps: u64) -> Vec<Event> {
    let sink = MemorySink::new();
    let mut net = CurtainNetwork::new(OverlayConfig::new(12, 2)).unwrap();
    net.set_recorder(SharedRecorder::new(sink.clone()));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut driver = ChurnDriver::new(ChurnConfig {
        join_prob: 0.6,
        leave_prob: 0.2,
        fail_prob: 0.15,
        repair_delay: 5,
    });
    driver.run(&mut net, steps, &mut rng);
    assert!(driver.stats().repairs > 0, "churn run produced no repairs");
    // Drain outstanding failures so every complaint has its repair.
    net.repair_all();
    net.matrix().assert_invariants();
    sink.events().into_iter().map(|(_, e)| e).collect()
}

#[test]
fn complain_precedes_splice_precedes_repair_complete() {
    let events = churned_trace(0xCAFE, 600);

    // For every failed node, the three repair-path events must appear in
    // protocol order.
    let mut checked = 0;
    for (i, event) in events.iter().enumerate() {
        let Event::Complain { node, .. } = event else { continue };
        let splice_at = events
            .iter()
            .position(|e| {
                matches!(e, Event::Splice { node: n, cause: SpliceCause::Repair, .. } if n == node)
            })
            .unwrap_or_else(|| panic!("no repair splice for complained-about node {node}"));
        let complete_at = events
            .iter()
            .position(|e| matches!(e, Event::RepairComplete { node: n } if n == node))
            .unwrap_or_else(|| panic!("no repair_complete for complained-about node {node}"));
        assert!(
            i < splice_at && splice_at < complete_at,
            "node {node}: complain@{i}, splice@{splice_at}, complete@{complete_at}"
        );
        checked += 1;
    }
    assert!(checked > 0, "no complaints in a churn run with repairs");
}

#[test]
fn thread_defect_deltas_cancel_after_full_drain() {
    let events = churned_trace(0xBEEF, 600);
    let net_delta: i64 = events
        .iter()
        .filter_map(|e| match e {
            Event::ThreadDefect { delta, .. } => Some(*delta),
            _ => None,
        })
        .sum();
    assert_eq!(net_delta, 0, "unmatched thread-defect deltas after repair_all");
}

#[test]
fn lifecycle_events_balance_membership() {
    let sink = MemorySink::new();
    let mut net = CurtainNetwork::new(OverlayConfig::new(8, 2)).unwrap();
    net.set_recorder(SharedRecorder::new(sink.clone()));
    let mut rng = StdRng::seed_from_u64(7);
    let ids: Vec<_> = (0..20).map(|_| net.join(&mut rng)).collect();
    for id in &ids[..5] {
        net.leave(*id).unwrap();
    }
    let events = sink.events();
    let hellos = events.iter().filter(|(_, e)| matches!(e, Event::Hello { .. })).count();
    let byes = events.iter().filter(|(_, e)| matches!(e, Event::GoodBye { .. })).count();
    assert_eq!(hellos, 20);
    assert_eq!(byes, 5);
    assert_eq!(net.len(), hellos - byes);
}
