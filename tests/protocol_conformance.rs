//! Protocol-level conformance with the paper's §3 semantics, including a
//! statistical check of Lemma 1 (graceful leaves preserve the distribution
//! of `M`).

use coded_curtain::overlay::{
    CurtainNetwork, CurtainServer, Holder, InsertPolicy, NodeStatus, OverlayConfig,
};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

#[test]
fn join_grant_lists_actual_stream_sources() {
    let mut server = CurtainServer::new(OverlayConfig::new(8, 3)).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..30 {
        let grant = server.hello(&mut rng);
        // The grant's parents must be exactly the bottom holders of the
        // chosen threads *before* this row (i.e., its in-edges now).
        let pos = server.matrix().position_of(grant.node).unwrap();
        assert_eq!(server.matrix().parents_of_position(pos), grant.parents);
        assert_eq!(grant.parents.len(), 3);
    }
}

#[test]
fn splice_redirects_parents_to_children_exactly() {
    let mut server = CurtainServer::new(OverlayConfig::new(6, 2)).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let ids: Vec<_> = (0..20).map(|_| server.hello(&mut rng).node).collect();
    let victim = ids[8];
    let pos = server.matrix().position_of(victim).unwrap();
    let parents_before = server.matrix().parents_of_position(pos);
    let children_before = server.matrix().children_of_position(pos);
    let plan = server.goodbye(victim).unwrap();
    // Redirects pair each thread's parent with its child.
    for ((redirect, (t_p, parent)), (t_c, child)) in
        plan.redirects.iter().zip(parents_before).zip(children_before)
    {
        assert_eq!(redirect.thread, t_p);
        assert_eq!(redirect.thread, t_c);
        assert_eq!(redirect.new_parent, parent);
        assert_eq!(redirect.child, child);
    }
    // After the splice, each former child's parent on that thread is the
    // victim's former parent on that thread.
    for r in &plan.redirects {
        let Some(child) = r.child else { continue };
        let cpos = server.matrix().position_of(child).unwrap();
        let cparents = server.matrix().parents_of_position(cpos);
        let (_, new_parent) = cparents
            .into_iter()
            .find(|(t, _)| *t == r.thread)
            .expect("child still holds the thread");
        assert_eq!(new_parent, r.new_parent, "thread {}", r.thread);
    }
}

#[test]
fn hanging_threads_equal_k_in_expectation_terms() {
    // Structural: the bottom holders always form a complete k-vector (the
    // "pool of slots" never shrinks or grows).
    let mut net = CurtainNetwork::new(OverlayConfig::new(10, 2)).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..50 {
        net.join(&mut rng);
    }
    assert_eq!(net.matrix().bottom_holders().len(), 10);
    let ids = net.node_ids();
    for &id in ids.iter().take(10) {
        net.leave(id).unwrap();
    }
    assert_eq!(net.matrix().bottom_holders().len(), 10);
}

/// Lemma 1: after a graceful leave, `M` is distributed as if the node had
/// never joined. We verify a consequence: grow to N+1 then remove a
/// uniformly random member vs grow to N directly — the per-thread
/// bottom-holder *depth* distribution must match statistically.
#[test]
fn lemma1_graceful_leave_preserves_distribution() {
    let k = 8;
    let d = 2;
    let n = 30;
    let trials = 3000;
    let mut rng = StdRng::seed_from_u64(4);

    // Statistic: number of distinct bottom holders (server counts once).
    let stat = |net: &CurtainNetwork| -> usize {
        let mut holders: Vec<_> = net
            .matrix()
            .bottom_holders()
            .into_iter()
            .filter_map(Holder::node)
            .collect();
        holders.sort_unstable();
        holders.dedup();
        holders.len()
    };

    let mut sum_direct = 0usize;
    let mut sum_leave = 0usize;
    for _ in 0..trials {
        // Direct growth to n.
        let mut a = CurtainNetwork::new(OverlayConfig::new(k, d)).unwrap();
        for _ in 0..n {
            a.join(&mut rng);
        }
        sum_direct += stat(&a);
        // Growth to n+1, then a uniformly random graceful leave.
        let mut b = CurtainNetwork::new(OverlayConfig::new(k, d)).unwrap();
        let ids: Vec<_> = (0..=n).map(|_| b.join(&mut rng)).collect();
        let leaver = ids[rng.random_range(0..ids.len())];
        b.leave(leaver).unwrap();
        sum_leave += stat(&b);
    }
    let mean_direct = sum_direct as f64 / trials as f64;
    let mean_leave = sum_leave as f64 / trials as f64;
    let rel = (mean_direct - mean_leave).abs() / mean_direct;
    assert!(
        rel < 0.03,
        "Lemma 1 violated? direct {mean_direct:.3} vs leave {mean_leave:.3} ({rel:.3} rel)"
    );
}

#[test]
fn message_counts_match_protocol_shape() {
    let mut server = CurtainServer::new(OverlayConfig::new(8, 3)).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let a = server.hello(&mut rng).node;
    let m1 = server.metrics();
    // Hello: 1 in, 1 grant + d parent notifications out.
    assert_eq!(m1.messages_in, 1);
    assert_eq!(m1.messages_out, 1 + 3);
    server.goodbye(a).unwrap();
    let m2 = server.metrics();
    // Good-bye: 1 in, d redirects out.
    assert_eq!(m2.messages_in, 2);
    assert_eq!(m2.messages_out, 1 + 3 + 3);
}

#[test]
fn failure_complaints_come_from_children_only() {
    let mut server = CurtainServer::new(OverlayConfig::new(4, 2)).unwrap();
    let mut rng = StdRng::seed_from_u64(6);
    let ids: Vec<_> = (0..12).map(|_| server.hello(&mut rng).node).collect();
    // The last node has no children; failing it yields zero complaints.
    let last = *ids.last().unwrap();
    let complaints = server.report_failure(last).unwrap();
    assert_eq!(complaints, 0);
    // An early node in a k=4 curtain almost surely has children.
    let first = ids[0];
    let complaints = server.report_failure(first).unwrap();
    let pos = server.matrix().position_of(first).unwrap();
    let distinct_children: std::collections::HashSet<_> = server
        .matrix()
        .children_of_position(pos)
        .into_iter()
        .filter_map(|(_, c)| c)
        .collect();
    assert_eq!(complaints, distinct_children.len());
}

#[test]
fn random_position_inserts_are_uniform() {
    // Chi-squared-ish sanity: inserting 2000 rows at random positions into
    // a 100-row matrix should hit all quartiles roughly equally.
    let cfg = OverlayConfig::new(8, 2).with_insert_policy(InsertPolicy::RandomPosition);
    let mut rng = StdRng::seed_from_u64(7);
    let mut quartiles = [0u32; 4];
    let mut server = CurtainServer::new(cfg).unwrap();
    for _ in 0..100 {
        server.admit(&mut rng, NodeStatus::Working);
    }
    for _ in 0..2000 {
        let len_before = server.matrix().len();
        let grant = server.admit(&mut rng, NodeStatus::Working);
        let q = (grant.position * 4 / (len_before + 1)).min(3);
        quartiles[q] += 1;
    }
    for (q, &c) in quartiles.iter().enumerate() {
        assert!(
            (c as f64 - 500.0).abs() < 120.0,
            "quartile {q} count {c} far from uniform"
        );
    }
}
