//! Failover soak: a real-TCP swarm survives the primary coordinator
//! dying mid-churn because a *warm standby* takes over — no shared
//! filesystem, no operator.
//!
//! The standby bootstraps over the control port (`SnapshotFetch`), tails
//! streamed WAL records (`WalTail`) into its own log, and when the
//! primary stops answering it promotes itself **at the primary's
//! address**: surviving peers keep dialing the same coordinator and
//! never notice the handover beyond a transient complaint retry. The
//! promoted coordinator fences its id allocator past everything the
//! shipped history contains and runs a proactive resync sweep over every
//! known peer.
//!
//! Assertions: the standby promotes at the old address with the exact
//! shipped matrix, every survivor (plus a parent-crash orphan and a
//! fresh post-failover joiner) completes byte-identically, and no repair
//! ever gives up.
//!
//! Knobs:
//!
//! * `CURTAIN_FAILOVER_PEERS` — initial swarm size (default 6)
//! * `CURTAIN_FAILOVER_TRACE` — if set, dumps the telemetry trace as
//!   JSONL to `<value>.jsonl` (CI greps it for `standby_promoted` and
//!   the absence of `repair_gave_up`)

use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use curtain_net::repair::RepairPolicy;
use curtain_net::{Coordinator, Peer, PeerConfig, Source, Standby, StandbyOptions, WalOptions};
use curtain_overlay::{NodeId, OverlayConfig};
use curtain_telemetry::{MemorySink, SharedRecorder};

const PACE: Duration = Duration::from_micros(500);
const K: usize = 4;
const D: usize = 2;
const COMPLETE_TIMEOUT: Duration = Duration::from_secs(60);

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn content(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 179 % 251) as u8).collect()
}

/// Generous deadline: a complaint must survive the whole failover window
/// (primary dark → detector fires → standby promotes) without giving up.
fn failover_policy() -> RepairPolicy {
    RepairPolicy {
        initial_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(200),
        deadline: Duration::from_secs(30),
        window: Duration::from_secs(10),
        window_budget: 1000,
        stall_timeout: Duration::from_millis(1500),
        ..RepairPolicy::default()
    }
}

fn join(coordinator_addr: std::net::SocketAddr, sink: &MemorySink) -> Peer {
    Peer::join_with(
        coordinator_addr,
        PeerConfig {
            pace: PACE,
            recorder: SharedRecorder::wall_clock(sink.clone()),
            repair: failover_policy(),
            ..PeerConfig::default()
        },
    )
    .expect("join")
}

fn wal_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("curtain-failover-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("wal dir");
    dir.join(name)
}

fn dump_trace(sink: &MemorySink) {
    let Ok(prefix) = std::env::var("CURTAIN_FAILOVER_TRACE") else { return };
    if prefix.is_empty() {
        return;
    }
    let path = format!("{prefix}.jsonl");
    let mut out = String::new();
    for (at, event) in sink.events() {
        event.write_jsonl(at, &mut out);
        out.push('\n');
    }
    let mut file = std::fs::File::create(&path).expect("trace file");
    file.write_all(out.as_bytes()).expect("trace write");
    println!("failover-soak trace: {} events -> {path}", sink.events().len());
}

/// Picks a member that currently *parents* another peer — crashing it
/// during the control-plane outage forces complaints that must retry
/// straight through the failover.
fn pick_node_parent(peers: &[Peer]) -> NodeId {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Some(p) = peers.iter().find(|p| p.active_children() > 0) {
            return p.node_id();
        }
        assert!(Instant::now() < deadline, "no peer ever acquired a child subscription");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn wait_progress(peers: &[Peer]) {
    let deadline = Instant::now() + Duration::from_secs(20);
    for p in peers {
        while p.rank() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(p.rank() > 0, "peer {} made no progress", p.node_id());
    }
}

fn wait_all_complete(peers: &[Peer]) {
    let deadline = Instant::now() + COMPLETE_TIMEOUT;
    for p in peers {
        let left = deadline.saturating_duration_since(Instant::now());
        assert!(
            p.wait_complete(left),
            "peer {} stuck at rank {} after the failover",
            p.node_id(),
            p.rank()
        );
    }
}

/// The tentpole drill: primary dies mid-churn (taking a parent peer with
/// it for good measure), the warm standby auto-promotes at the same
/// address, and the swarm finishes as if nothing happened.
#[test]
fn standby_takes_over_mid_churn_without_data_loss() {
    let n = env_usize("CURTAIN_FAILOVER_PEERS", 6).max(4);
    let primary_path = wal_path("primary.wal");
    let standby_path = wal_path("standby.wal");
    let sink = MemorySink::new();
    let recorder = SharedRecorder::wall_clock(sink.clone());
    let config = OverlayConfig::new(K, D);

    let primary = Coordinator::start_durable(
        config,
        0xF411,
        recorder.clone(),
        &WalOptions::new(&primary_path),
    )
    .unwrap();
    let addr = primary.addr();
    let data = content(32 * 1024);
    let source = Source::start_with_shape(addr, &data, 32, 256, PACE).unwrap();

    let mut peers: Vec<Peer> = (0..n).map(|_| join(addr, &sink)).collect();

    // The standby starts *after* the swarm formed: its bootstrap must
    // ship the whole existing matrix, not just tail new mutations.
    let mut standby = Standby::start(
        StandbyOptions::new(addr, WalOptions::new(&standby_path), config)
            .with_poll_interval(Duration::from_millis(25))
            .with_fail_threshold(3),
        recorder.clone(),
    );
    wait_progress(&peers);

    // Register + n hellos must all be shipped before the plug is pulled.
    let wanted = 1 + n as u64;
    let catch_up = Instant::now() + Duration::from_secs(15);
    while standby.last_seq() < wanted && Instant::now() < catch_up {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(standby.last_seq() >= wanted, "standby never caught up with the primary");

    // ---- the failover ----
    let victim = pick_node_parent(&peers);
    let pre_rows = primary.matrix_rows();
    primary.kill();
    // While the control plane is dark, a *parent* peer dies too: its
    // children complain into a dead socket and must retry through the
    // promotion.
    let at = peers.iter().position(|p| p.node_id() == victim).expect("victim is ours");
    peers.swap_remove(at).crash();

    assert!(standby.wait_promoted(Duration::from_secs(20)), "standby never promoted");
    let promoted = standby.take_promoted().expect("promotion result").expect("promotion");
    assert_eq!(promoted.addr(), addr, "the standby must inherit the primary's address");
    // The shipped history carries the full pre-crash matrix. The
    // promoted coordinator's proactive sweep may already have probed the
    // victim's corpse and spliced its row — every other row must match
    // exactly, and nothing may appear that the primary never granted.
    let after = promoted.matrix_rows();
    assert!(
        after.iter().all(|row| pre_rows.contains(row)),
        "promoted matrix invented rows: {after:?} vs shipped {pre_rows:?}"
    );
    let missing: Vec<_> = pre_rows.iter().filter(|row| !after.contains(row)).collect();
    assert!(
        missing.iter().all(|(node, _)| *node == victim.0),
        "rows lost beyond the crashed victim {victim}: {missing:?}"
    );

    // The promoted control plane serves: a fresh joiner gets a fenced id
    // above everything the primary ever granted, and everyone completes.
    let joiner = join(addr, &sink);
    assert!(
        pre_rows.iter().all(|&(node, _)| joiner.node_id().0 > node),
        "fenced id allocator must outbid every shipped grant"
    );
    peers.push(joiner);
    wait_all_complete(&peers);
    for p in &peers {
        assert_eq!(p.decoded_content().unwrap(), data, "peer {} decoded garbage", p.node_id());
    }

    drop(peers);
    drop(source);
    promoted.shutdown();
    dump_trace(&sink);

    let kinds: Vec<String> = sink.events().iter().map(|(_, e)| e.kind().to_string()).collect();
    assert!(kinds.contains(&"standby_promoted".to_string()), "no promotion event");
    assert!(
        !kinds.contains(&"repair_gave_up".to_string()),
        "a repair gave up during the failover soak"
    );
    assert!(
        !kinds.contains(&"coordinator_degraded".to_string()),
        "the WAL degraded during the soak"
    );
    let counters = sink.metrics().snapshot().counters;
    assert_eq!(counters.get("standby_promotions").copied().unwrap_or(0), 1);
    assert!(counters.get("sweep_probes").copied().unwrap_or(0) >= 1, "no sweep ever probed");
    let _ = std::fs::remove_file(&primary_path);
    let _ = std::fs::remove_file(&standby_path);
}
