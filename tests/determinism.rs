//! Reproducibility: every randomized component is a pure function of its
//! seed. These tests pin that property across the whole stack.

use coded_curtain::broadcast::{Session, SessionConfig, Strategy, TopologySpec};
use coded_curtain::overlay::churn::{ChurnConfig, ChurnDriver};
use coded_curtain::overlay::defect;
use coded_curtain::overlay::{CurtainNetwork, OverlayConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn grown(seed: u64) -> CurtainNetwork {
    let mut net = CurtainNetwork::new(OverlayConfig::new(12, 3)).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..80 {
        net.join_with_failure_prob(0.05, &mut rng);
    }
    net
}

#[test]
fn overlay_growth_is_seed_deterministic() {
    let a = grown(1);
    let b = grown(1);
    assert_eq!(a.matrix(), b.matrix());
    let c = grown(2);
    assert_ne!(a.matrix(), c.matrix());
}

#[test]
fn churn_trajectories_are_seed_deterministic() {
    let run = |seed| {
        let mut net = CurtainNetwork::new(OverlayConfig::new(10, 2)).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut driver = ChurnDriver::new(ChurnConfig::default());
        driver.run(&mut net, 500, &mut rng);
        (net.matrix().clone(), driver.stats())
    };
    assert_eq!(run(3), run(3));
    assert_ne!(run(3).0, run(4).0);
}

#[test]
fn defect_sampling_is_seed_deterministic() {
    let net = grown(5);
    let sample = |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        defect::sample(net.matrix(), 3, 500, &mut rng).histogram
    };
    assert_eq!(sample(6), sample(6));
}

#[test]
fn sessions_are_fully_deterministic() {
    let net = grown(7);
    let topo = TopologySpec::from_curtain(&net);
    for strategy in [Strategy::Rlnc, Strategy::Routing] {
        let cfg = SessionConfig::new(strategy, 12, 48)
            .with_loss(0.05)
            .with_max_ticks(3000);
        let a = Session::run(&topo, &cfg, 8);
        let b = Session::run(&topo, &cfg, 8);
        assert_eq!(a.completed_at, b.completed_at, "{strategy:?}");
        assert_eq!(a.progress, b.progress, "{strategy:?}");
        assert_eq!(a.net, b.net, "{strategy:?}");
        let c = Session::run(&topo, &cfg, 9);
        assert!(
            a.completed_at != c.completed_at || a.net != c.net,
            "{strategy:?}: different seeds gave identical traces"
        );
    }
}

#[test]
fn codec_streams_are_seed_deterministic() {
    use coded_curtain::rlnc::Encoder;
    let data: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8; 64]).collect();
    let enc = Encoder::new(0, data).unwrap();
    let stream = |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..20).map(|_| enc.encode(&mut rng)).collect::<Vec<_>>()
    };
    assert_eq!(stream(10), stream(10));
    assert_ne!(stream(10), stream(11));
}
