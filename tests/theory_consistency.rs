//! Small-scale checks that the measured system obeys the paper's theorems
//! (the full parameter sweeps live in the experiment binaries; these are
//! the fast, always-on versions).

use coded_curtain::analysis::drift::DriftParams;
use coded_curtain::overlay::churn::grow_with_failures;
use coded_curtain::overlay::{defect, CurtainNetwork, NodeStatus, OverlayConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Theorem 4 (shape): the steady-state defect fraction is O(p·d) — within
/// a small constant of the analytic root a₁, and far below collapse.
#[test]
fn theorem4_steady_state_defect_is_near_pd() {
    let (k, d, p) = (24usize, 2usize, 0.02f64);
    let mut rng = StdRng::seed_from_u64(1);
    let mut net = CurtainNetwork::new(OverlayConfig::new(k, d)).unwrap();
    grow_with_failures(&mut net, 400, p, &mut rng);
    // Average the defect over several measurement points as the process
    // continues.
    let mut acc = 0.0;
    let points = 10;
    for _ in 0..points {
        grow_with_failures(&mut net, 40, p, &mut rng);
        let est = defect::sample(net.matrix(), d, 400, &mut rng);
        acc += est.total_defect_fraction();
    }
    let measured = acc / points as f64;
    let params = DriftParams::new(p, d, k);
    let a1 = params.theorem4_bound().expect("stable regime");
    // Shape check: same order of magnitude as p·d, nowhere near collapse.
    assert!(
        measured < 6.0 * a1.max(p * d as f64),
        "defect {measured:.4} far above theory a1 {a1:.4}"
    );
    assert!(measured < 0.3, "defect {measured:.4} drifting toward collapse");
}

/// Lemma 6: one arrival changes the *exact* total defect by at most
/// (d²/k)·A.
#[test]
fn lemma6_single_step_bound_holds_exactly() {
    let (k, d) = (10usize, 2usize);
    let a = defect::binomial(k as u64, d as u64) as i64;
    let cap = ((d * d) as f64 / k as f64 * a as f64).ceil() as i64;
    let mut rng = StdRng::seed_from_u64(2);
    let mut net = CurtainNetwork::new(OverlayConfig::new(k, d)).unwrap();
    let mut before = defect::exact(net.matrix(), d).total_defect() as i64;
    for i in 0..120 {
        net.join_with_failure_prob(0.3, &mut rng);
        let after = defect::exact(net.matrix(), d).total_defect() as i64;
        assert!(
            (after - before).abs() <= cap,
            "step {i}: |ΔB| = {} > {cap}",
            (after - before).abs()
        );
        before = after;
    }
}

/// Lemma 7 (direction): conditioned on a working arrival, the exact defect
/// never increases.
#[test]
fn lemma7_working_arrivals_never_increase_defect() {
    let (k, d) = (8usize, 2usize);
    let mut rng = StdRng::seed_from_u64(3);
    let mut net = CurtainNetwork::new(OverlayConfig::new(k, d)).unwrap();
    // Seed some defect with failed arrivals.
    for _ in 0..6 {
        net.join_failed(&mut rng);
    }
    let mut before = defect::exact(net.matrix(), d).total_defect();
    for _ in 0..60 {
        net.join(&mut rng); // working arrival
        let after = defect::exact(net.matrix(), d).total_defect();
        assert!(after <= before, "working arrival increased B: {before} -> {after}");
        before = after;
    }
}

/// The network-coding connection: a node's achievable rate equals its
/// max-flow connectivity, and the defect of its tuple equals d − flow.
#[test]
fn tuple_connectivity_equals_arrival_connectivity() {
    let (k, d) = (12usize, 3usize);
    let mut rng = StdRng::seed_from_u64(4);
    let mut net = CurtainNetwork::new(OverlayConfig::new(k, d)).unwrap();
    grow_with_failures(&mut net, 60, 0.1, &mut rng);
    for _ in 0..20 {
        // Probe: what a virtual arrival would get...
        let tuple = net.matrix().sample_threads(d, &mut rng);
        let graph = net.graph();
        let predicted = graph.tuple_connectivity(&tuple);
        // ...must equal what an actual arrival on those threads gets:
        // append the row to a copy of M and recompute.
        let mut m = net.matrix().clone();
        let position = m.len();
        m.insert(
            position,
            coded_curtain::overlay::NodeId(u64::MAX - 1),
            tuple.clone(),
            NodeStatus::Working,
        );
        let actual = coded_curtain::overlay::OverlayGraph::from_matrix(&m)
            .connectivity_of_position(position);
        assert_eq!(predicted, actual, "tuple {tuple:?}");
    }
}
